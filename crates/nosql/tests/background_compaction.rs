//! Background-compaction tier: flushes only *schedule* merges; the merge
//! itself runs on the compaction pool, off the commit path.
//!
//! The headline regression here is the write stall: before the pool, a
//! flush that tipped a table over its compaction threshold ran the merge
//! inline inside `commit_writes`, so one slow disk operation froze every
//! writer. The stall-gate test pins a compaction mid-flight on a
//! fault-injected "slow" delete and proves a put still completes.

use sc_nosql::{OpenOptions, SharedDb};
use sc_storage::Vfs;
use std::collections::BTreeMap;

fn setup(db: &SharedDb) {
    db.execute_cql("CREATE KEYSPACE p").unwrap();
    db.execute_cql("CREATE TABLE p.t (id int, v int, PRIMARY KEY (id))")
        .unwrap();
}

fn read_all(db: &SharedDb) -> BTreeMap<i64, i64> {
    let r = db.execute_cql("SELECT id, v FROM p.t").unwrap();
    r.iter()
        .map(|row| (row.get_int("id").unwrap(), row.get_int("v").unwrap()))
        .collect()
}

/// The write-stall proof: a compaction is parked mid-flight on a stalled
/// (fault-injected, arbitrarily slow) input delete, and a put on the same
/// table still commits and reads back — the commit path no longer waits
/// for maintenance I/O.
#[test]
fn put_completes_while_slow_compaction_is_in_flight() {
    let (vfs, handle) = Vfs::with_faults(Vfs::memory(), 0x57A11);
    let db = SharedDb::open(
        OpenOptions::default()
            .vfs(vfs)
            .compaction_threshold(3)
            .compaction_threads(1),
    )
    .unwrap();
    setup(&db);

    // Compaction (and nothing else) deletes SSTable files; park it there.
    handle.stall_deletes("/sst-");
    for round in 0..3i64 {
        for id in 0..8i64 {
            db.execute_cql(&format!(
                "INSERT INTO p.t (id, v) VALUES ({id}, {})",
                round * 100 + id
            ))
            .unwrap();
        }
        db.flush_all().unwrap();
    }
    // The third flush tips the table over the threshold and schedules a
    // background merge, which writes its output and then parks on the gate.
    handle.wait_for_stalled_delete();

    // The put must complete while the merge is still pinned mid-flight.
    db.execute_cql("INSERT INTO p.t (id, v) VALUES (999, 999)")
        .unwrap();
    assert!(
        handle.stalled_deletes() >= 1,
        "compaction finished before the put — the stall proves nothing"
    );
    assert_eq!(
        db.execute_cql("SELECT v FROM p.t WHERE id = 999")
            .unwrap()
            .iter()
            .next()
            .map(|row| row.get_int("v").unwrap()),
        Some(999),
        "the acked put must be readable while compaction is stalled"
    );

    handle.release_deletes();
    db.drain_compactions();
    let mut expected: BTreeMap<i64, i64> = (0..8).map(|id| (id, 200 + id)).collect();
    expected.insert(999, 999);
    assert_eq!(read_all(&db), expected, "merge lost or resurrected rows");
}

/// The pool actually merges: churning one small key range through many
/// flushes must leave a bounded number of SSTables once the queue drains,
/// and the newest values must survive every merge.
#[test]
fn background_pool_bounds_sstable_count() {
    let vfs = Vfs::memory();
    let db = SharedDb::open(
        OpenOptions::default()
            .vfs(vfs.clone())
            .compaction_threshold(3)
            .compaction_threads(2),
    )
    .unwrap();
    setup(&db);
    for round in 0..12i64 {
        for id in 0..8i64 {
            db.execute_cql(&format!(
                "INSERT INTO p.t (id, v) VALUES ({id}, {})",
                round * 100 + id
            ))
            .unwrap();
        }
        db.flush_all().unwrap();
    }
    db.drain_compactions();
    let ssts = vfs.list("p/t/sst-").unwrap();
    assert!(
        ssts.len() < 8,
        "12 flushes left {} SSTables — the pool is not merging: {ssts:?}",
        ssts.len()
    );
    let expected: BTreeMap<i64, i64> = (0..8).map(|id| (id, 1100 + id)).collect();
    assert_eq!(read_all(&db), expected);
}

/// The full maintenance gauntlet: tiny memtables keep flushes (and the
/// background merges they schedule) churning while writers overwrite every
/// key — and a pinned snapshot must keep returning its exact baseline the
/// whole time, because compaction honors the snapshot GC floor. Runs under
/// `SC_NOSQL_YIELD` in the CI concurrency tier, which perturbs the
/// flush-publish/drain and compactor handoff points.
#[test]
fn snapshot_reads_stay_stable_under_background_compaction() {
    let db = SharedDb::open(
        OpenOptions::default()
            .memtable_flush_bytes(512)
            .compaction_threshold(3)
            .compaction_threads(2),
    )
    .unwrap();
    setup(&db);
    for id in 0..16i64 {
        db.execute_cql(&format!("INSERT INTO p.t (id, v) VALUES ({id}, 1)"))
            .unwrap();
    }
    db.flush_all().unwrap();
    let snap = db.snapshot();
    let baseline = {
        let r = snap.execute_cql("SELECT id, v FROM p.t").unwrap();
        r.iter()
            .map(|row| (row.get_int("id").unwrap(), row.get_int("v").unwrap()))
            .collect::<Vec<_>>()
    };
    assert_eq!(baseline.len(), 16);

    std::thread::scope(|s| {
        for w in 0..2i64 {
            let db = &db;
            s.spawn(move || {
                let mut session = db.session();
                session.execute_cql("USE p").unwrap();
                for round in 0..30i64 {
                    for k in 0..8i64 {
                        let id = w * 8 + k;
                        session
                            .execute_cql(&format!(
                                "INSERT INTO t (id, v) VALUES ({id}, {})",
                                round + 2
                            ))
                            .unwrap();
                    }
                }
            });
        }
        let snap = &snap;
        let baseline = &baseline;
        s.spawn(move || {
            for _ in 0..40 {
                let again: Vec<(i64, i64)> = snap
                    .execute_cql("SELECT id, v FROM p.t")
                    .unwrap()
                    .iter()
                    .map(|row| (row.get_int("id").unwrap(), row.get_int("v").unwrap()))
                    .collect();
                assert_eq!(&again, baseline, "snapshot drifted under compaction");
                std::thread::yield_now();
            }
        });
    });

    drop(snap);
    db.drain_compactions();
    let expected: BTreeMap<i64, i64> = (0..16).map(|id| (id, 31)).collect();
    assert_eq!(read_all(&db), expected);
}

/// Dropping the engine with work still queued must finish the queue, not
/// abandon it: every queued merge runs before the pool joins, so a reopen
/// sees the merged layout.
#[test]
fn close_drains_queued_compactions() {
    let vfs = Vfs::memory();
    {
        let db = SharedDb::open(
            OpenOptions::default()
                .vfs(vfs.clone())
                .compaction_threshold(3)
                .compaction_threads(1),
        )
        .unwrap();
        setup(&db);
        for round in 0..6i64 {
            for id in 0..4i64 {
                db.execute_cql(&format!(
                    "INSERT INTO p.t (id, v) VALUES ({id}, {})",
                    round * 10 + id
                ))
                .unwrap();
            }
            db.flush_all().unwrap();
        }
        // No drain: Drop must do it.
    }
    let ssts = vfs.list("p/t/sst-").unwrap();
    assert!(ssts.len() < 6, "drop abandoned queued merges: {ssts:?}");
    let db = SharedDb::open(OpenOptions::default().vfs(vfs).recover(true)).unwrap();
    let expected: BTreeMap<i64, i64> = (0..4).map(|id| (id, 50 + id)).collect();
    assert_eq!(read_all(&db), expected);
}
