//! End-to-end instrumentation test on a **disk-backed** engine: flush and
//! compaction spans must record non-zero durations and byte counts, and the
//! commit-log / memtable / read-path counters must track the workload.
//!
//! Runs as its own integration-test binary so the process-global registry
//! only sees this file's traffic; deltas are still used where cargo runs
//! the two tests here in parallel threads.

use sc_nosql::{Db, OpenOptions};
use sc_obs::Registry;
use sc_storage::Vfs;

fn disk_db(tag: &str) -> (Db, std::path::PathBuf) {
    let dir = std::env::temp_dir().join(format!("sc-nosql-obs-{tag}-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    let vfs = Vfs::disk(&dir).expect("temp dir is writable");
    let db = Db::open(
        OpenOptions::default()
            .vfs(vfs)
            // Tiny thresholds so a modest workload exercises many flushes
            // and at least one tiered compaction.
            .memtable_flush_bytes(512)
            .compaction_threshold(3),
    )
    .expect("fresh disk engine opens");
    (db, dir)
}

fn workload(db: &mut Db, rows: usize) {
    db.execute_cql("CREATE KEYSPACE obsks").expect("ddl");
    db.execute_cql("CREATE TABLE obsks.t (id int, v text, PRIMARY KEY (id))")
        .expect("ddl");
    for i in 0..rows {
        db.execute_cql(&format!(
            "INSERT INTO obsks.t (id, v) VALUES ({i}, 'value-{i}-padding-padding-padding')"
        ))
        .expect("insert");
    }
    for i in (0..rows).step_by(7) {
        db.execute_cql(&format!("SELECT v FROM obsks.t WHERE id = {i}"))
            .expect("select");
    }
}

#[test]
fn disk_backed_flush_and_compaction_spans_record_time_and_bytes() {
    let before = Registry::global().snapshot();
    let (mut db, dir) = disk_db("spans");
    workload(&mut db, 400);
    let after = Registry::global().snapshot();
    std::fs::remove_dir_all(&dir).expect("cleanup");

    let delta =
        |name: &str| after.counter(name).unwrap_or(0) - before.counter(name).map_or(0, |v| v);
    let hist = |name: &str| after.histogram(name).cloned().unwrap_or_default();
    let hist_before = |name: &str| before.histogram(name).cloned().unwrap_or_default();

    // The tiny thresholds force many flushes and at least one merge run.
    let flush_ns = hist("nosql.flush.duration_ns");
    let flush_before = hist_before("nosql.flush.duration_ns");
    assert!(
        flush_ns.count > flush_before.count,
        "workload must flush at least once"
    );
    assert!(
        flush_ns.sum > flush_before.sum,
        "flush durations are non-zero"
    );
    assert!(flush_ns.min > 0, "every flush duration is non-zero ns");
    let flush_bytes = hist("nosql.flush.bytes");
    assert!(flush_bytes.sum > hist_before("nosql.flush.bytes").sum);
    assert!(flush_bytes.min > 0, "every flush wrote bytes");

    let compaction_ns = hist("nosql.compaction.duration_ns");
    assert!(
        compaction_ns.count > hist_before("nosql.compaction.duration_ns").count,
        "threshold 3 must have triggered compaction"
    );
    assert!(
        compaction_ns.min > 0,
        "every compaction duration is non-zero ns"
    );
    assert!(delta("nosql.compaction.bytes_in") > 0, "merges read bytes");
    assert!(
        delta("nosql.compaction.bytes_out") > 0,
        "merges wrote bytes"
    );
    // Tiered merging rewrites overlapping runs: input >= output.
    assert!(delta("nosql.compaction.bytes_in") >= delta("nosql.compaction.bytes_out"));

    // Write- and read-path counters track the workload.
    assert!(delta("nosql.memtable.puts") >= 400);
    assert!(delta("nosql.commitlog.appends") >= 400);
    assert!(delta("nosql.commitlog.append_bytes") > 0);
    assert!(delta("nosql.read.point_queries") >= 400 / 7);
    // The workload ran on a disk VFS, so storage.vfs.* saw real file I/O.
    assert!(delta("storage.vfs.append_ops") > 0);
    assert!(delta("storage.vfs.append_bytes") > 0);

    // Span events for flush and compaction landed in the ring buffer.
    let events = sc_obs::drain_events();
    assert!(events
        .iter()
        .any(|e| e.name == "nosql.flush" && e.duration_ns > 0 && e.bytes > 0));
    assert!(events
        .iter()
        .any(|e| e.name == "nosql.compaction" && e.duration_ns > 0));
}

#[test]
fn block_cache_counters_track_cold_and_warm_reads() {
    let before = Registry::global().snapshot();
    let (mut db, dir) = disk_db("cache");
    workload(&mut db, 300);
    db.flush_all().expect("flush");
    // Cold pass: every queried block misses the cache once, then warm
    // passes are served from it.
    for _pass in 0..3 {
        for i in (0..300).step_by(5) {
            db.execute_cql(&format!("SELECT v FROM obsks.t WHERE id = {i}"))
                .expect("select");
        }
    }
    let stats = db.block_cache_stats();
    let after = Registry::global().snapshot();
    std::fs::remove_dir_all(&dir).expect("cleanup");

    let delta = |name: &str| after.counter(name).unwrap_or(0) - before.counter(name).unwrap_or(0);
    // The engine-level stats and the global counters tell the same story:
    // cold misses happened, warm hits dominate.
    assert!(stats.misses > 0, "cold pass must miss");
    assert!(stats.hits > stats.misses, "two warm passes must out-hit");
    assert!(delta("nosql.block_cache.miss") >= stats.misses);
    assert!(delta("nosql.block_cache.hit") >= stats.hits);
    // Present-key reads found their rows through the filters.
    assert!(delta("nosql.bloom.hit") > 0);
    let blocks = after
        .histogram("nosql.read.blocks_per_get")
        .cloned()
        .unwrap_or_default();
    assert!(blocks.count > 0, "blocks-per-get histogram recorded");
}

#[test]
fn recovery_span_and_replay_counter_record_a_reopen() {
    let before = Registry::global().snapshot();
    let (mut db, dir) = disk_db("recovery");
    // Big flush threshold: rows stay in the commit log, so reopening must
    // replay them.
    db.execute_cql("CREATE KEYSPACE rec").expect("ddl");
    db.execute_cql("CREATE TABLE rec.t (id int, v text, PRIMARY KEY (id))")
        .expect("ddl");
    for i in 0..10 {
        db.execute_cql(&format!("INSERT INTO rec.t (id, v) VALUES ({i}, 'x')"))
            .expect("insert");
    }
    let vfs = Vfs::disk(&dir).expect("reopen vfs");
    let reopened = Db::open(OpenOptions::default().vfs(vfs).recover(true)).expect("recovery");
    drop(reopened);
    let after = Registry::global().snapshot();
    std::fs::remove_dir_all(&dir).expect("cleanup");

    let replayed = after
        .counter("nosql.recovery.replayed_records")
        .unwrap_or(0)
        - before
            .counter("nosql.recovery.replayed_records")
            .unwrap_or(0);
    assert!(
        replayed >= 10,
        "reopen must replay the logged rows, got {replayed}"
    );
    let rec_ns = after
        .histogram("nosql.recovery.duration_ns")
        .cloned()
        .unwrap_or_default();
    let rec_before = before
        .histogram("nosql.recovery.duration_ns")
        .cloned()
        .unwrap_or_default();
    assert!(rec_ns.count > rec_before.count, "recovery span recorded");
    assert!(rec_ns.sum > rec_before.sum, "recovery duration is non-zero");
}
