//! Car-park occupancy feed (XML), one of the intro's fused sources.

use crate::names;
use crate::rng::Rng;
use sc_ingest::cube_def::TimeField;
use sc_ingest::{CubeDef, DateTime};
use sc_xml::XmlWriter;

/// Generates `snapshots` car-park documents starting at `start`, one every
/// `interval_minutes`.
pub fn generate(
    seed: u64,
    start: DateTime,
    snapshots: usize,
    interval_minutes: i64,
) -> Vec<String> {
    let mut rng = Rng::new(seed);
    let mut spaces: Vec<i64> = names::CARPARKS
        .iter()
        .map(|_| rng.gen_between(50, 400))
        .collect();
    let capacities: Vec<i64> = spaces
        .iter()
        .map(|s| s + rng.gen_between(50, 200))
        .collect();
    let mut out = Vec::with_capacity(snapshots);
    for i in 0..snapshots {
        let time = start.add_minutes(i as i64 * interval_minutes);
        let mut w = XmlWriter::new();
        w.write_declaration("1.0", Some("UTF-8"));
        w.start("carparks").attr("updated", &time.to_string());
        for (j, name) in names::CARPARKS.iter().enumerate() {
            spaces[j] = rng.walk(spaces[j], 25, 0, capacities[j]);
            w.start("carpark").attr("id", &(j + 1).to_string());
            w.leaf("name", name);
            w.leaf("zone", names::ZONES[j % names::ZONES.len()]);
            w.leaf("spaces", &spaces[j].to_string());
            w.leaf("capacity", &capacities[j].to_string());
            w.end();
        }
        w.end();
        out.push(w.into_string());
    }
    out
}

/// Cube definition for the car-park feed: `(day, hour, zone, carpark)` with
/// free `spaces` as the measure.
pub fn cube_def() -> CubeDef {
    CubeDef::xml("/carparks/carpark")
        .timestamp("@updated")
        .time_dimension("day", TimeField::Day)
        .time_dimension("hour", TimeField::Hour)
        .dimension("zone", "zone/text()")
        .dimension("carpark", "name/text()")
        .measure("spaces", "spaces/text()")
        .build()
        .expect("static definition is valid")
}

#[cfg(test)]
mod tests {
    use super::*;
    use sc_dwarf::{Dwarf, Selection, TupleSet};
    use sc_ingest::extract::extract_text;
    use sc_ingest::MissingPolicy;

    #[test]
    fn feed_extracts_into_a_cube() {
        let start = DateTime::parse("2016-03-15T08:00:00").unwrap();
        let docs = generate(5, start, 4, 30);
        assert_eq!(docs.len(), 4);
        let def = cube_def();
        let mut tuples = TupleSet::new(&def.schema());
        for d in &docs {
            extract_text(&def, d, &mut tuples, MissingPolicy::Fail).unwrap();
        }
        let cube = Dwarf::build(def.schema(), tuples);
        cube.validate();
        assert_eq!(cube.num_dims(), 4);
        // 4 snapshots x 12 car parks, all on day 15.
        assert!(cube.tuple_count() > 0);
        assert!(cube
            .point(&[
                Selection::value("15"),
                Selection::All,
                Selection::All,
                Selection::All
            ])
            .is_some());
    }
}
