//! Deterministic pseudo-random numbers (xorshift64*).
//!
//! The library's own generators use this instead of `rand` so that datasets
//! are bit-identical across runs and platforms — benchmark inputs must not
//! drift between invocations. The implementation lives in
//! [`sc_encoding::rng`] (it is shared with the workspace's randomized test
//! suites); this module re-exports it under the historical path.

pub use sc_encoding::rng::Rng;
