//! Air-quality sensor feed (JSON), one of the intro's fused sources.

use crate::names;
use crate::rng::Rng;
use sc_ingest::cube_def::TimeField;
use sc_ingest::{CubeDef, DateTime};
use sc_json::JsonValue;

/// Generates `snapshots` JSON documents from `sensors` sensors.
pub fn generate(
    seed: u64,
    start: DateTime,
    snapshots: usize,
    interval_minutes: i64,
    sensors: usize,
) -> Vec<String> {
    let mut rng = Rng::new(seed);
    let sensor_ids: Vec<String> = (0..sensors).map(|i| format!("AQ-{:02}", i + 1)).collect();
    let sensor_areas: Vec<&'static str> = (0..sensors).map(|_| *rng.choice(names::AREAS)).collect();
    let mut out = Vec::with_capacity(snapshots);
    for i in 0..snapshots {
        let time = start.add_minutes(i as i64 * interval_minutes);
        let mut readings = Vec::new();
        for (s, id) in sensor_ids.iter().enumerate() {
            for pollutant in names::POLLUTANTS {
                let base = match *pollutant {
                    "NO2" => 40,
                    "PM10" => 20,
                    "PM2.5" => 12,
                    "O3" => 60,
                    _ => 5,
                };
                readings.push(JsonValue::object(vec![
                    ("sensor", JsonValue::string(id.clone())),
                    ("area", JsonValue::string(sensor_areas[s])),
                    ("pollutant", JsonValue::string(*pollutant)),
                    (
                        "value",
                        JsonValue::Number(rng.gen_between(base / 2, base * 2) as f64),
                    ),
                ]));
            }
        }
        let doc = JsonValue::object(vec![
            ("updated", JsonValue::string(time.to_string())),
            ("city", JsonValue::string("Dublin")),
            ("readings", JsonValue::Array(readings)),
        ]);
        out.push(doc.to_json());
    }
    out
}

/// Cube definition: `(day, hour, area, sensor, pollutant)`, measure =
/// reading value (µg/m³, rounded to integers).
pub fn cube_def() -> CubeDef {
    CubeDef::json("/readings/*")
        .timestamp("/updated")
        .time_dimension("day", TimeField::Day)
        .time_dimension("hour", TimeField::Hour)
        .dimension("area", "/area")
        .dimension("sensor", "/sensor")
        .dimension("pollutant", "/pollutant")
        .measure("level", "/value")
        .build()
        .expect("static definition is valid")
}

#[cfg(test)]
mod tests {
    use super::*;
    use sc_dwarf::{Dwarf, Selection, TupleSet};
    use sc_ingest::extract::extract_text;
    use sc_ingest::MissingPolicy;

    #[test]
    fn feed_extracts_into_a_cube() {
        let start = DateTime::parse("2016-03-15T08:00:00").unwrap();
        let docs = generate(9, start, 3, 60, 4);
        let def = cube_def();
        let mut tuples = TupleSet::new(&def.schema());
        for d in &docs {
            extract_text(&def, d, &mut tuples, MissingPolicy::Fail).unwrap();
        }
        let cube = Dwarf::build(def.schema(), tuples);
        cube.validate();
        assert_eq!(cube.num_dims(), 5);
        // 3 snapshots x 4 sensors x 5 pollutants = 60 observations.
        let no2 = cube.point(&[
            Selection::All,
            Selection::All,
            Selection::All,
            Selection::All,
            Selection::value("NO2"),
        ]);
        assert!(no2.is_some());
    }
}
