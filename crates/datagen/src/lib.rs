//! # sc-datagen
//!
//! Deterministic synthetic smart-city feeds.
//!
//! The paper evaluates on a real bike-sharing feed (CitiBikes-style data for
//! Dublin, \[7\]) that we do not have; this crate substitutes a generator that
//! preserves everything the evaluation depends on (see DESIGN.md §2):
//!
//! * Table 2's **tuple counts** per window (Day 7 358 … SMonth 1 181 344),
//! * the **~286 raw-XML bytes per tuple** implied by Table 2's MB column,
//! * **8 dimensions** with realistic cardinalities and the hierarchical
//!   correlation (calendar prefix, station→area) DWARF coalescing feeds on,
//! * deterministic output from a seed, so every benchmark run sees the same
//!   data.
//!
//! Besides [`bikes`], the intro's other sources are generated too
//! ([`carpark`], [`airquality`], [`auction`], [`sales`]) for the
//! multi-source fusion example.

pub mod airquality;
pub mod auction;
pub mod bikes;
pub mod carpark;
pub mod catalog;
pub mod names;
pub mod rng;
pub mod sales;

pub use bikes::{BikesGenerator, BikesSpec, Snapshot};
pub use catalog::DatasetSpec;
pub use rng::Rng;
