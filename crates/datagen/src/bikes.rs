//! The bike-sharing feed generator (the paper's evaluation dataset).
//!
//! A feed is a sequence of **snapshots**: XML documents listing every
//! station's state at one instant, stamped with an `updated` timestamp. One
//! station observation = one cube tuple, so a target tuple count divides
//! into `ceil(target / stations)` snapshots.
//!
//! The cube built from this feed has the paper's 8 dimensions:
//! `year, month, day, hour, area, station, status, docks`, with
//! `bikes` (available bikes) as the SUM measure. The calendar prefix and
//! the station→area correlation give the DWARF the prefix/suffix
//! coalescing opportunities real bike data has.

use crate::names;
use crate::rng::Rng;
use sc_ingest::cube_def::TimeField;
use sc_ingest::{CubeDef, DateTime};
use sc_xml::XmlWriter;

/// Configuration of a generated feed.
#[derive(Debug, Clone)]
pub struct BikesSpec {
    /// RNG seed (datasets are deterministic per seed).
    pub seed: u64,
    /// Number of stations in the city.
    pub stations: usize,
    /// First snapshot timestamp.
    pub start: DateTime,
    /// Feed duration in minutes (snapshots spread evenly across it).
    pub duration_minutes: i64,
    /// Exact number of station observations (tuples) to emit.
    pub target_tuples: usize,
}

impl BikesSpec {
    /// A small default spec for tests/examples: one day, 20 stations, 480
    /// tuples.
    pub fn small() -> BikesSpec {
        BikesSpec {
            seed: 1,
            stations: 20,
            start: DateTime::parse("2015-11-01T00:00:00").expect("valid date"),
            duration_minutes: 24 * 60,
            target_tuples: 480,
        }
    }
}

/// One station's static identity.
#[derive(Debug, Clone)]
struct Station {
    id: usize,
    name: String,
    area: &'static str,
    docks: i64,
    lat: f64,
    lng: f64,
}

/// One generated feed document.
#[derive(Debug, Clone)]
pub struct Snapshot {
    /// Snapshot timestamp.
    pub time: DateTime,
    /// The XML document text.
    pub xml: String,
    /// Station observations inside (== stations except a short last
    /// snapshot).
    pub observations: usize,
}

/// Iterator of snapshots for a [`BikesSpec`].
#[derive(Debug)]
pub struct BikesGenerator {
    spec: BikesSpec,
    stations: Vec<Station>,
    /// Current bikes-available per station (random walk state).
    bikes: Vec<i64>,
    /// Current status per station (mostly `open`, occasionally flipping).
    status: Vec<&'static str>,
    rng: Rng,
    snapshot_index: usize,
    snapshots_total: usize,
    emitted: usize,
}

impl BikesGenerator {
    /// Creates a generator for `spec`.
    pub fn new(spec: BikesSpec) -> BikesGenerator {
        assert!(spec.stations > 0, "at least one station");
        assert!(spec.target_tuples > 0, "at least one tuple");
        let mut rng = Rng::new(spec.seed);
        let mut stations = Vec::with_capacity(spec.stations);
        for i in 0..spec.stations {
            let area = names::AREAS[rng.gen_range(names::AREAS.len() as u64) as usize];
            // Dock counts cluster around a handful of sizes, like real
            // schemes (keeps the `docks` dimension's cardinality low).
            let docks = *rng.choice(&[15i64, 20, 20, 25, 30, 30, 35, 40]);
            stations.push(Station {
                id: i + 1,
                name: names::station_name(i),
                area,
                docks,
                lat: 53.33 + rng.gen_f64() * 0.06,
                lng: -6.31 + rng.gen_f64() * 0.09,
            });
        }
        let bikes = stations
            .iter()
            .map(|s| rng.gen_between(0, s.docks))
            .collect();
        let status = vec!["open"; spec.stations];
        let snapshots_total = spec.target_tuples.div_ceil(spec.stations);
        BikesGenerator {
            spec,
            stations,
            bikes,
            status,
            rng,
            snapshot_index: 0,
            snapshots_total,
            emitted: 0,
        }
    }

    /// Number of snapshots the generator will produce.
    pub fn snapshot_count(&self) -> usize {
        self.snapshots_total
    }

    /// The cube definition for this feed (the paper's 8 dimensions).
    pub fn cube_def() -> CubeDef {
        CubeDef::xml("/stations/station")
            .timestamp("@updated")
            .time_dimension("year", TimeField::Year)
            .time_dimension("month", TimeField::Month)
            .time_dimension("day", TimeField::Day)
            .time_dimension("hour", TimeField::Hour)
            .dimension("area", "area/text()")
            .dimension("station", "name/text()")
            .dimension("status", "status/text()")
            .dimension("docks", "docks/text()")
            .measure("bikes", "bikes/text()")
            .build()
            .expect("static definition is valid")
    }

    fn snapshot_time(&self, index: usize) -> DateTime {
        let minutes = if self.snapshots_total <= 1 {
            0
        } else {
            index as i64 * self.spec.duration_minutes / self.snapshots_total as i64
        };
        self.spec.start.add_minutes(minutes)
    }

    /// Advances station state and renders the next snapshot.
    fn render_snapshot(&mut self) -> Snapshot {
        let time = self.snapshot_time(self.snapshot_index);
        let remaining = self.spec.target_tuples - self.emitted;
        let observations = remaining.min(self.spec.stations);
        let mut w = XmlWriter::with_capacity(observations * 300 + 64);
        w.write_declaration("1.0", Some("UTF-8"));
        w.start("stations")
            .attr("updated", &time.to_string())
            .attr("city", "Dublin")
            .raw("\n");
        let time_str = time.to_string();
        for i in 0..observations {
            // Random walk the availability; occasionally flip status.
            self.bikes[i] = self.rng.walk(self.bikes[i], 4, 0, self.stations_docks(i));
            if self.rng.gen_bool(0.002) {
                self.status[i] = *self.rng.choice(names::STATUSES);
            } else if self.status[i] != "open" && self.rng.gen_bool(0.3) {
                self.status[i] = "open";
            }
            let s = &self.stations[i];
            w.raw("  ");
            w.start("station").attr("id", &s.id.to_string());
            w.leaf("name", &s.name);
            w.leaf("address", &format!("{}, {}", s.name, s.area));
            w.leaf("area", s.area);
            w.leaf(
                "banking",
                if s.id.is_multiple_of(3) {
                    "true"
                } else {
                    "false"
                },
            );
            w.leaf("status", self.status[i]);
            w.leaf("docks", &s.docks.to_string());
            w.leaf("bikes", &self.bikes[i].to_string());
            w.leaf("lat", &format!("{:.6}", s.lat));
            w.leaf("lng", &format!("{:.6}", s.lng));
            w.leaf("last_update", &time_str);
            w.end();
            w.raw("\n");
        }
        w.end();
        self.emitted += observations;
        self.snapshot_index += 1;
        Snapshot {
            time,
            xml: w.into_string(),
            observations,
        }
    }

    fn stations_docks(&self, i: usize) -> i64 {
        self.stations[i].docks
    }

    /// Fast path: generate the extraction result directly, bypassing XML
    /// rendering + parsing. Produces exactly the tuples the XML path yields
    /// (asserted by tests), for benchmarks whose subject is the store, not
    /// the parser.
    pub fn tuples(spec: BikesSpec) -> sc_dwarf::TupleSet {
        let def = Self::cube_def();
        let schema = def.schema();
        let mut tuples = sc_dwarf::TupleSet::new(&schema);
        let mut gen = BikesGenerator::new(spec);
        while gen.emitted < gen.spec.target_tuples {
            let time = gen.snapshot_time(gen.snapshot_index);
            let remaining = gen.spec.target_tuples - gen.emitted;
            let observations = remaining.min(gen.spec.stations);
            for i in 0..observations {
                gen.bikes[i] = gen.rng.walk(gen.bikes[i], 4, 0, gen.stations[i].docks);
                if gen.rng.gen_bool(0.002) {
                    gen.status[i] = *gen.rng.choice(names::STATUSES);
                } else if gen.status[i] != "open" && gen.rng.gen_bool(0.3) {
                    gen.status[i] = "open";
                }
                let s = &gen.stations[i];
                tuples.push(
                    [
                        format!("{:04}", time.year),
                        format!("{:02}", time.month),
                        format!("{:02}", time.day),
                        format!("{:02}", time.hour),
                        s.area.to_string(),
                        s.name.clone(),
                        gen.status[i].to_string(),
                        s.docks.to_string(),
                    ],
                    gen.bikes[i],
                );
            }
            gen.emitted += observations;
            gen.snapshot_index += 1;
        }
        tuples
    }
}

impl Iterator for BikesGenerator {
    type Item = Snapshot;

    fn next(&mut self) -> Option<Snapshot> {
        if self.emitted >= self.spec.target_tuples {
            return None;
        }
        Some(self.render_snapshot())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sc_dwarf::{Dwarf, Selection, TupleSet};
    use sc_ingest::{extract_into, MissingPolicy};

    #[test]
    fn exact_tuple_counts() {
        let spec = BikesSpec {
            target_tuples: 103, // not a multiple of stations
            stations: 10,
            ..BikesSpec::small()
        };
        let total: usize = BikesGenerator::new(spec).map(|s| s.observations).sum();
        assert_eq!(total, 103);
    }

    #[test]
    fn deterministic_per_seed() {
        let a: Vec<String> = BikesGenerator::new(BikesSpec::small())
            .map(|s| s.xml)
            .collect();
        let b: Vec<String> = BikesGenerator::new(BikesSpec::small())
            .map(|s| s.xml)
            .collect();
        assert_eq!(a, b);
        let c: Vec<String> = BikesGenerator::new(BikesSpec {
            seed: 2,
            ..BikesSpec::small()
        })
        .map(|s| s.xml)
        .collect();
        assert_ne!(a, c);
    }

    #[test]
    fn snapshots_parse_and_extract() {
        let def = BikesGenerator::cube_def();
        let schema = def.schema();
        let mut tuples = TupleSet::new(&schema);
        let mut extracted = 0;
        for snap in BikesGenerator::new(BikesSpec::small()) {
            let doc = sc_ingest::extract::ParsedDoc::parse(def.format, &snap.xml).unwrap();
            let stats = extract_into(&def, &doc, &mut tuples, MissingPolicy::Fail).unwrap();
            extracted += stats.extracted;
        }
        assert_eq!(extracted, 480);
        let cube = Dwarf::build(schema, tuples);
        assert_eq!(cube.num_dims(), 8);
        cube.validate();
        assert!(cube.point(&vec![Selection::All; 8]).is_some());
    }

    #[test]
    fn fast_tuple_path_matches_xml_path() {
        let spec = BikesSpec::small();
        let def = BikesGenerator::cube_def();
        let mut via_xml = TupleSet::new(&def.schema());
        for snap in BikesGenerator::new(spec.clone()) {
            let doc = sc_ingest::extract::ParsedDoc::parse(def.format, &snap.xml).unwrap();
            extract_into(&def, &doc, &mut via_xml, MissingPolicy::Fail).unwrap();
        }
        let direct = BikesGenerator::tuples(spec);
        let cube_xml = Dwarf::build(def.schema(), via_xml);
        let cube_direct = Dwarf::build(def.schema(), direct);
        assert_eq!(cube_xml.extract_tuples(), cube_direct.extract_tuples());
    }

    #[test]
    fn bytes_per_tuple_matches_table2_footprint() {
        // Table 2: 2.1 MB / 7 358 tuples ≈ 286 bytes per tuple. Allow a
        // tolerance band; the shape (linear growth) is what matters.
        let spec = BikesSpec {
            target_tuples: 2000,
            stations: 100,
            ..BikesSpec::small()
        };
        let bytes: usize = BikesGenerator::new(spec).map(|s| s.xml.len()).sum();
        let per_tuple = bytes as f64 / 2000.0;
        assert!(
            (240.0..340.0).contains(&per_tuple),
            "bytes/tuple = {per_tuple:.1}"
        );
    }

    #[test]
    fn timestamps_span_the_window() {
        let spec = BikesSpec {
            target_tuples: 1000,
            stations: 10,
            ..BikesSpec::small()
        };
        let times: Vec<DateTime> = BikesGenerator::new(spec).map(|s| s.time).collect();
        assert_eq!(times.first().unwrap().to_string(), "2015-11-01T00:00:00");
        let last = times.last().unwrap();
        assert_eq!(last.date_string(), "2015-11-01");
        assert!(last.hour >= 23, "snapshots cover the day, got {last}");
        assert!(times.windows(2).all(|w| w[0] <= w[1]));
    }
}
