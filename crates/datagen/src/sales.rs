//! Retail sales feed (XML), one of the intro's fused sources.

use crate::names;
use crate::rng::Rng;
use sc_ingest::cube_def::TimeField;
use sc_ingest::{CubeDef, DateTime};
use sc_xml::XmlWriter;

/// Generates one day's sales report for `stores` stores.
pub fn generate_day(seed: u64, day: DateTime, stores: usize) -> String {
    let mut rng = Rng::new(seed ^ day.to_epoch_seconds() as u64);
    let mut w = XmlWriter::new();
    w.write_declaration("1.0", Some("UTF-8"));
    w.start("sales_report").attr("date", &day.to_string());
    for s in 0..stores {
        w.start("store").attr("id", &format!("S{:02}", s + 1));
        for category in names::PRODUCT_CATEGORIES {
            w.start("line");
            w.leaf("category", category);
            w.leaf("units", &rng.gen_between(10, 500).to_string());
            w.end();
        }
        w.end();
    }
    w.end();
    w.into_string()
}

/// Cube definition: `(month, day, category)`, measure = units sold.
///
/// The record path uses the descendant axis (`//line`) — sale lines nest
/// inside `store` elements, so this feed exercises deep record selection.
pub fn cube_def() -> CubeDef {
    CubeDef::xml("//line")
        .timestamp("@date")
        .time_dimension("month", TimeField::Month)
        .time_dimension("day", TimeField::Day)
        .dimension("category", "category/text()")
        .measure("units", "units/text()")
        .build()
        .expect("static definition is valid")
}

#[cfg(test)]
mod tests {
    use super::*;
    use sc_dwarf::{Dwarf, Selection, TupleSet};
    use sc_ingest::extract::extract_text;
    use sc_ingest::MissingPolicy;

    #[test]
    fn feed_extracts_into_a_cube() {
        let def = cube_def();
        let mut tuples = TupleSet::new(&def.schema());
        let day = DateTime::parse("2016-03-15").unwrap();
        let doc = generate_day(3, day, 4);
        let stats = extract_text(&def, &doc, &mut tuples, MissingPolicy::Fail).unwrap();
        assert_eq!(stats.extracted, 4 * names::PRODUCT_CATEGORIES.len());
        let cube = Dwarf::build(def.schema(), tuples);
        cube.validate();
        assert!(cube
            .point(&[
                Selection::value("03"),
                Selection::value("15"),
                Selection::value("dairy"),
            ])
            .is_some());
    }
}
