//! Table 2's dataset catalog.
//!
//! The paper evaluates five bike datasets; this module pins their tuple
//! counts and raw sizes and turns each into a [`BikesSpec`].

use crate::bikes::BikesSpec;
use sc_ingest::{DateTime, Window};

/// One evaluation dataset (a row of Table 2).
#[derive(Debug, Clone)]
pub struct DatasetSpec {
    /// The window this dataset covers.
    pub window: Window,
    /// The paper's tuple count for the window.
    pub paper_tuples: usize,
    /// The paper's raw-XML size in MB (Table 2's `Size (MB)` row).
    pub paper_size_mb: f64,
}

/// Number of stations in the synthetic city. The per-window tuple counts
/// then imply the snapshot cadence (Day: 7 358 tuples / 97 stations ≈ 76
/// snapshots ≈ one every 19 minutes — a realistic feed poll rate).
pub const STATIONS: usize = 97;

/// Feed start timestamp (the bike data in \[7\] is late-2015 Dublin data).
pub fn start_date() -> DateTime {
    DateTime::parse("2015-11-01T00:00:00").expect("valid date")
}

impl DatasetSpec {
    /// The Table 2 row for a window.
    pub fn for_window(window: Window) -> DatasetSpec {
        let (paper_tuples, paper_size_mb) = match window {
            Window::Day => (7_358, 2.1),
            Window::Week => (60_102, 17.1),
            Window::Month => (118_934, 54.1),
            Window::TMonth => (396_756, 113.0),
            Window::SMonth => (1_181_344, 338.0),
        };
        DatasetSpec {
            window,
            paper_tuples,
            paper_size_mb,
        }
    }

    /// All five rows, smallest first.
    pub fn all() -> Vec<DatasetSpec> {
        Window::ALL
            .iter()
            .map(|w| DatasetSpec::for_window(*w))
            .collect()
    }

    /// The generator spec reproducing this dataset at full scale.
    pub fn bikes_spec(&self) -> BikesSpec {
        self.scaled_spec(1.0)
    }

    /// The generator spec at a fraction of the paper's tuple count
    /// (benchmarks default to scaled runs; `repro --scale full` uses 1.0).
    pub fn scaled_spec(&self, scale: f64) -> BikesSpec {
        assert!(scale > 0.0 && scale <= 1.0, "scale must be in (0, 1]");
        let target = ((self.paper_tuples as f64 * scale).round() as usize).max(1);
        BikesSpec {
            seed: 0xB1CE5 ^ self.window.days() as u64,
            stations: STATIONS,
            start: start_date(),
            duration_minutes: self.window.minutes(),
            target_tuples: target,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table2_constants() {
        let all = DatasetSpec::all();
        assert_eq!(all.len(), 5);
        assert_eq!(all[0].paper_tuples, 7_358);
        assert_eq!(all[4].paper_tuples, 1_181_344);
        let mb: Vec<f64> = all.iter().map(|d| d.paper_size_mb).collect();
        assert_eq!(mb, vec![2.1, 17.1, 54.1, 113.0, 338.0]);
    }

    #[test]
    fn specs_scale() {
        let day = DatasetSpec::for_window(Window::Day);
        assert_eq!(day.bikes_spec().target_tuples, 7_358);
        assert_eq!(day.scaled_spec(0.1).target_tuples, 736);
        assert_eq!(day.scaled_spec(0.5).duration_minutes, 1440);
    }

    #[test]
    #[should_panic(expected = "scale must be")]
    fn zero_scale_panics() {
        DatasetSpec::for_window(Window::Day).scaled_spec(0.0);
    }

    #[test]
    fn seeds_differ_per_window() {
        let seeds: std::collections::HashSet<u64> = DatasetSpec::all()
            .iter()
            .map(|d| d.bikes_spec().seed)
            .collect();
        assert_eq!(seeds.len(), 5);
    }
}
