//! Name pools for the synthetic Dublin feeds.

/// Street-ish station name stems (Dublin flavoured, per the paper's city).
pub const STATION_STEMS: &[&str] = &[
    "Fenian St",
    "Smithfield",
    "Portobello",
    "Charlemont",
    "Dame St",
    "Eccles St",
    "Grantham St",
    "Merrion Sq",
    "Pearse St",
    "Parnell Sq",
    "Custom House",
    "Heuston",
    "Bolton St",
    "Talbot St",
    "Wilton Tce",
    "Exchequer St",
    "Golden Ln",
    "Kevin St",
    "Mount St",
    "Herbert Pl",
    "Ormond Quay",
    "Usher's Quay",
    "Francis St",
    "James St",
    "Newman House",
    "Grand Canal",
    "Sir Patrick Dun's",
    "Denmark St",
    "Blessington St",
    "North Circular",
    "Hardwicke St",
    "Mountjoy Sq",
    "Jervis St",
    "Christchurch",
    "High St",
    "Winetavern St",
    "Greek St",
    "Blackhall Pl",
    "Queen St",
    "Benburb St",
    "Rothe Abbey",
    "St James Hospital",
    "Emmet Rd",
    "Brookfield Rd",
    "Parkgate St",
    "Collins Barracks",
    "Clonmel St",
    "Harcourt Tce",
    "Adelaide Rd",
    "Leeson St",
];

/// Directional suffixes used to inflate the pool past the stems.
pub const STATION_SUFFIXES: &[&str] =
    &["", " North", " South", " East", " West", " Upper", " Lower"];

/// Postal areas ("Dublin 1", ...) stations belong to.
pub const AREAS: &[&str] = &[
    "Dublin 1", "Dublin 2", "Dublin 3", "Dublin 4", "Dublin 6", "Dublin 7", "Dublin 8", "Dublin 9",
];

/// Operational statuses a station can report.
pub const STATUSES: &[&str] = &["open", "closed", "maintenance"];

/// Car-park names for the car-park feed.
pub const CARPARKS: &[&str] = &[
    "Arnotts",
    "Brown Thomas",
    "Christchurch",
    "Drury Street",
    "Fleet Street",
    "Ilac Centre",
    "Jervis Street",
    "Marlborough Street",
    "Parnell Centre",
    "Setanta Place",
    "Stephens Green",
    "Trinity Street",
];

/// City-centre zones for the car-park feed.
pub const ZONES: &[&str] = &["north-city", "south-city", "docklands", "liberties"];

/// Pollutants for the air-quality feed.
pub const POLLUTANTS: &[&str] = &["NO2", "PM10", "PM2.5", "O3", "SO2"];

/// Auction categories.
pub const AUCTION_CATEGORIES: &[&str] = &[
    "antiques",
    "art",
    "books",
    "collectibles",
    "electronics",
    "furniture",
    "jewellery",
    "vehicles",
];

/// Irish counties for auction listings.
pub const COUNTIES: &[&str] = &[
    "Dublin",
    "Cork",
    "Galway",
    "Limerick",
    "Waterford",
    "Kilkenny",
    "Wexford",
    "Kerry",
    "Mayo",
    "Donegal",
    "Sligo",
    "Meath",
];

/// Retail product categories for the sales feed.
pub const PRODUCT_CATEGORIES: &[&str] = &[
    "grocery",
    "bakery",
    "dairy",
    "produce",
    "household",
    "beverages",
];

/// A station name for index `i`, unique for `i < STATION_STEMS.len() *
/// STATION_SUFFIXES.len()`.
pub fn station_name(i: usize) -> String {
    let stem = STATION_STEMS[i % STATION_STEMS.len()];
    let suffix = STATION_SUFFIXES[(i / STATION_STEMS.len()) % STATION_SUFFIXES.len()];
    format!("{stem}{suffix}")
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::HashSet;

    #[test]
    fn station_names_are_unique_within_pool() {
        let limit = STATION_STEMS.len() * STATION_SUFFIXES.len();
        let names: HashSet<String> = (0..limit).map(station_name).collect();
        assert_eq!(names.len(), limit);
        assert!(limit >= 300, "pool supports the paper-scale station counts");
    }

    #[test]
    fn first_names_are_bare_stems() {
        assert_eq!(station_name(0), "Fenian St");
        assert_eq!(station_name(STATION_STEMS.len()), "Fenian St North");
    }
}
