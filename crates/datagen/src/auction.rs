//! Online-auction feed (JSON), one of the intro's fused sources.

use crate::names;
use crate::rng::Rng;
use sc_ingest::cube_def::TimeField;
use sc_ingest::{CubeDef, DateTime};
use sc_json::JsonValue;

/// Generates one auction-day document with `listings` closed listings.
pub fn generate_day(seed: u64, day: DateTime, listings: usize) -> String {
    let mut rng = Rng::new(seed ^ day.to_epoch_seconds() as u64);
    let mut sales = Vec::with_capacity(listings);
    for _ in 0..listings {
        let category = *rng.choice(names::AUCTION_CATEGORIES);
        let county = *rng.choice(names::COUNTIES);
        let price = match category {
            "vehicles" => rng.gen_between(500, 25_000),
            "jewellery" | "art" => rng.gen_between(50, 5_000),
            _ => rng.gen_between(5, 800),
        };
        sales.push(JsonValue::object(vec![
            ("category", JsonValue::string(category)),
            ("county", JsonValue::string(county)),
            ("price", JsonValue::Number(price as f64)),
        ]));
    }
    JsonValue::object(vec![
        ("closed", JsonValue::string(day.to_string())),
        ("sales", JsonValue::Array(sales)),
    ])
    .to_json()
}

/// Cube definition: `(month, day, category, county)`, measure = sale price.
pub fn cube_def() -> CubeDef {
    CubeDef::json("/sales/*")
        .timestamp("/closed")
        .time_dimension("month", TimeField::Month)
        .time_dimension("day", TimeField::Day)
        .dimension("category", "/category")
        .dimension("county", "/county")
        .measure("price", "/price")
        .build()
        .expect("static definition is valid")
}

#[cfg(test)]
mod tests {
    use super::*;
    use sc_dwarf::{Dwarf, RangeSel, TupleSet};
    use sc_ingest::extract::extract_text;
    use sc_ingest::MissingPolicy;

    #[test]
    fn feed_extracts_into_a_cube() {
        let def = cube_def();
        let mut tuples = TupleSet::new(&def.schema());
        for d in 0..3 {
            let day = DateTime::parse("2016-03-14").unwrap().add_days(d);
            let doc = generate_day(7, day, 50);
            extract_text(&def, &doc, &mut tuples, MissingPolicy::Fail).unwrap();
        }
        let cube = Dwarf::build(def.schema(), tuples);
        cube.validate();
        // Range over the three days must equal the grand total.
        let all = cube.range(&[RangeSel::All, RangeSel::All, RangeSel::All, RangeSel::All]);
        let days = cube.range(&[
            RangeSel::All,
            RangeSel::between("14", "16"),
            RangeSel::All,
            RangeSel::All,
        ]);
        assert_eq!(all, days);
        assert!(all.unwrap() > 0);
    }
}
