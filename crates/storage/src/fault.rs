//! Deterministic fault injection for crash-recovery testing.
//!
//! [`Vfs::with_faults`](crate::Vfs::with_faults) wraps any VFS in a
//! [`FaultState`] that counts every **mutating** operation (`append`,
//! `delete`, `truncate`) and can be armed, via the returned [`FaultHandle`],
//! to simulate power loss at a chosen operation index:
//!
//! * an armed `append` writes a *torn prefix* of the data — a deterministic,
//!   seed-derived length in `[0, len]`, possibly zero — and then fails with
//!   [`StorageError::Injected`]; this models a write that was cut mid-sector,
//! * an armed `delete` or `truncate` is simply lost (the file survives),
//! * every mutating operation *after* the crash point also fails with
//!   `Injected`, because the simulated process is dead; reads still pass
//!   through so tests can inspect the "disk" post-mortem.
//!
//! [`FaultHandle::disarm`] models the restart: the same underlying bytes, a
//! fresh process. The handle also exposes the full op trace so a test can
//! first run a workload uninjected, count its mutating ops, and then crash
//! at every single index (the crash-matrix pattern `sc-nosql` uses).

use crate::{Result, StorageError, Vfs};
use sc_encoding::Rng;
use std::sync::{Arc, Condvar, Mutex};

/// What a mutating operation was, as recorded in the trace.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FaultKind {
    /// `append` of `len` bytes.
    Append {
        /// Bytes the caller asked to append.
        len: usize,
    },
    /// `delete`.
    Delete,
    /// `truncate` to `len` bytes.
    Truncate {
        /// Requested new length.
        len: u64,
    },
}

/// One traced mutating operation.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct FaultOp {
    /// Zero-based index among mutating operations.
    pub index: u64,
    /// Target file name.
    pub file: String,
    /// Operation shape.
    pub kind: FaultKind,
}

#[derive(Debug)]
struct Shared {
    next_op: u64,
    crash_at: Option<u64>,
    crashed_at: Option<u64>,
    trace: Vec<FaultOp>,
    rng: Rng,
}

/// A test-armed gate that parks matching `delete`s until released, so a
/// test can hold a compaction (the only deleter of data files) mid-flight
/// for as long as it likes — deterministically, with no timing sleeps.
#[derive(Debug, Default)]
struct StallGate {
    state: Mutex<StallState>,
    cv: Condvar,
}

#[derive(Debug, Default)]
struct StallState {
    /// Deletes whose file name contains this substring park on the gate.
    substr: Option<String>,
    /// How many deletes are currently parked.
    parked: usize,
}

impl StallGate {
    /// Blocks the calling (engine) thread while the gate matches `name`.
    fn wait_if_match(&self, name: &str) {
        let matches = |s: &StallState| s.substr.as_deref().is_some_and(|sub| name.contains(sub));
        let mut s = self.state.lock().expect("stall lock poisoned");
        if !matches(&s) {
            return;
        }
        s.parked += 1;
        self.cv.notify_all();
        while matches(&s) {
            s = self.cv.wait(s).expect("stall lock poisoned");
        }
        s.parked -= 1;
        self.cv.notify_all();
    }
}

/// The fault-injecting backend state (held inside a [`Vfs`]).
#[derive(Debug)]
pub struct FaultState {
    inner: Vfs,
    shared: Arc<Mutex<Shared>>,
    stall: Arc<StallGate>,
}

/// Test-side controller for a fault-injecting VFS.
#[derive(Debug, Clone)]
pub struct FaultHandle {
    inner: Vfs,
    shared: Arc<Mutex<Shared>>,
    stall: Arc<StallGate>,
}

impl FaultState {
    /// Creates the state plus its controlling handle.
    pub fn new(inner: Vfs, seed: u64) -> (FaultState, FaultHandle) {
        let shared = Arc::new(Mutex::new(Shared {
            next_op: 0,
            crash_at: None,
            crashed_at: None,
            trace: Vec::new(),
            rng: Rng::new(seed),
        }));
        let stall = Arc::new(StallGate::default());
        let handle = FaultHandle {
            inner: inner.clone(),
            shared: Arc::clone(&shared),
            stall: Arc::clone(&stall),
        };
        (
            FaultState {
                inner,
                shared,
                stall,
            },
            handle,
        )
    }

    /// The wrapped VFS (reads delegate here).
    pub fn inner(&self) -> &Vfs {
        &self.inner
    }

    /// Counts the op, decides its fate. Returns `Ok(true)` if the op should
    /// proceed normally, `Ok(false)` if this op is the crash point (the
    /// caller then applies its partial effect and reports `Injected`), or
    /// `Err` if the process already crashed.
    fn admit(&self, file: &str, kind: FaultKind) -> Result<bool> {
        let mut s = self.shared.lock().expect("fault lock poisoned");
        if let Some(op) = s.crashed_at {
            return Err(StorageError::Injected {
                op,
                file: file.to_string(),
            });
        }
        let index = s.next_op;
        s.next_op += 1;
        s.trace.push(FaultOp {
            index,
            file: file.to_string(),
            kind,
        });
        if s.crash_at == Some(index) {
            s.crashed_at = Some(index);
            if sc_obs::enabled() {
                crate::obs::vfs().injected_crashes.inc();
            }
            return Ok(false);
        }
        Ok(true)
    }

    fn injected(&self, file: &str) -> StorageError {
        let s = self.shared.lock().expect("fault lock poisoned");
        StorageError::Injected {
            op: s.crashed_at.expect("crash point recorded"),
            file: file.to_string(),
        }
    }

    /// `append` with possible torn-prefix crash.
    pub fn append(&self, name: &str, data: &[u8]) -> Result<u64> {
        if self.admit(name, FaultKind::Append { len: data.len() })? {
            return self.inner.append(name, data);
        }
        // Crash point: persist a deterministic prefix (maybe empty), as if
        // power died mid-write.
        let torn = {
            let mut s = self.shared.lock().expect("fault lock poisoned");
            s.rng.gen_range(data.len() as u64 + 1) as usize
        };
        if torn > 0 {
            self.inner.append(name, &data[..torn])?;
        }
        Err(self.injected(name))
    }

    /// `delete` that is lost entirely at the crash point, and that parks on
    /// the stall gate first when one is armed for this file name.
    pub fn delete(&self, name: &str) -> Result<()> {
        self.stall.wait_if_match(name);
        if self.admit(name, FaultKind::Delete)? {
            return self.inner.delete(name);
        }
        Err(self.injected(name))
    }

    /// `truncate` that is lost entirely at the crash point.
    pub fn truncate(&self, name: &str, len: u64) -> Result<()> {
        if self.admit(name, FaultKind::Truncate { len })? {
            return self.inner.truncate(name, len);
        }
        Err(self.injected(name))
    }
}

impl FaultHandle {
    /// Arms a crash at mutating-operation index `op` (zero-based).
    pub fn crash_at(&self, op: u64) {
        self.shared.lock().expect("fault lock poisoned").crash_at = Some(op);
    }

    /// Clears both the armed crash point and the crashed flag — the process
    /// "restarted" over the same disk. The op counter and trace continue.
    pub fn disarm(&self) {
        let mut s = self.shared.lock().expect("fault lock poisoned");
        s.crash_at = None;
        s.crashed_at = None;
    }

    /// Mutating operations seen so far (crash point included).
    pub fn ops(&self) -> u64 {
        self.shared.lock().expect("fault lock poisoned").next_op
    }

    /// The index the crash fired at, if it fired.
    pub fn crashed_at(&self) -> Option<u64> {
        self.shared.lock().expect("fault lock poisoned").crashed_at
    }

    /// Snapshot of the op trace.
    pub fn trace(&self) -> Vec<FaultOp> {
        self.shared
            .lock()
            .expect("fault lock poisoned")
            .trace
            .clone()
    }

    /// The wrapped VFS — the "disk" that survives the crash. Recovery code
    /// may open it directly, bypassing injection.
    pub fn inner(&self) -> Vfs {
        self.inner.clone()
    }

    /// Arms the stall gate: any `delete` whose file name contains `substr`
    /// parks until [`release_deletes`](FaultHandle::release_deletes). Models
    /// an arbitrarily slow disk under a maintenance job without sleeps.
    pub fn stall_deletes(&self, substr: &str) {
        let mut s = self.stall.state.lock().expect("stall lock poisoned");
        s.substr = Some(substr.to_string());
    }

    /// Opens the gate and wakes every parked delete.
    pub fn release_deletes(&self) {
        let mut s = self.stall.state.lock().expect("stall lock poisoned");
        s.substr = None;
        self.stall.cv.notify_all();
    }

    /// Blocks until at least one delete is parked on the gate — the moment a
    /// test knows the stalled job is truly mid-flight.
    pub fn wait_for_stalled_delete(&self) {
        let mut s = self.stall.state.lock().expect("stall lock poisoned");
        while s.parked == 0 {
            s = self.stall.cv.wait(s).expect("stall lock poisoned");
        }
    }

    /// How many deletes are parked on the gate right now.
    pub fn stalled_deletes(&self) -> usize {
        self.stall.state.lock().expect("stall lock poisoned").parked
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn unarmed_passthrough_traces_ops() {
        let (vfs, handle) = Vfs::with_faults(Vfs::memory(), 7);
        vfs.append("a", b"one").unwrap();
        vfs.append("b", b"two").unwrap();
        vfs.delete("b").unwrap();
        vfs.append("a", b"!").unwrap();
        vfs.truncate("a", 3).unwrap();
        assert_eq!(vfs.read_all("a").unwrap(), b"one");
        assert!(!vfs.exists("b"));
        assert_eq!(handle.ops(), 5);
        assert_eq!(handle.crashed_at(), None);
        let trace = handle.trace();
        assert_eq!(trace.len(), 5);
        assert_eq!(
            trace[0],
            FaultOp {
                index: 0,
                file: "a".into(),
                kind: FaultKind::Append { len: 3 },
            }
        );
        assert_eq!(trace[2].kind, FaultKind::Delete);
        assert_eq!(trace[4].kind, FaultKind::Truncate { len: 3 });
    }

    #[test]
    fn crash_on_append_leaves_torn_prefix_and_kills_later_ops() {
        let (vfs, handle) = Vfs::with_faults(Vfs::memory(), 42);
        vfs.append("log", b"first").unwrap();
        handle.crash_at(1);
        let err = vfs.append("log", b"second-record").unwrap_err();
        assert!(
            matches!(err, StorageError::Injected { op: 1, .. }),
            "{err:?}"
        );
        // The prefix is deterministic and within bounds.
        let len = vfs.read_all("log").unwrap().len();
        assert!((5..=5 + 13).contains(&len), "torn length {len}");
        // Everything after the crash fails too, including deletes.
        assert!(matches!(
            vfs.append("log", b"x"),
            Err(StorageError::Injected { op: 1, .. })
        ));
        assert!(matches!(
            vfs.delete("log"),
            Err(StorageError::Injected { op: 1, .. })
        ));
        // Reads still work (post-mortem inspection).
        assert_eq!(vfs.len("log").unwrap() as usize, len);
        assert_eq!(handle.crashed_at(), Some(1));
    }

    #[test]
    fn crash_is_deterministic_per_seed() {
        let torn = |seed: u64| {
            let (vfs, handle) = Vfs::with_faults(Vfs::memory(), seed);
            handle.crash_at(0);
            vfs.append("f", b"0123456789").unwrap_err();
            vfs.read_all("f").map(|d| d.len()).unwrap_or(0)
        };
        assert_eq!(torn(9), torn(9));
        // Different seeds eventually differ (not a hard guarantee per pair,
        // but these two do — locked by the determinism above).
        let a = torn(1);
        let b = (2..20).map(torn).find(|&l| l != a);
        assert!(b.is_some(), "all seeds produced the same torn length");
    }

    #[test]
    fn crashed_delete_and_truncate_are_lost() {
        let (vfs, handle) = Vfs::with_faults(Vfs::memory(), 3);
        vfs.append("keep", b"data").unwrap();
        handle.crash_at(1);
        assert!(vfs.delete("keep").is_err());
        assert_eq!(vfs.read_all("keep").unwrap(), b"data");
        handle.disarm();
        handle.crash_at(2);
        assert!(vfs.truncate("keep", 1).is_err());
        assert_eq!(vfs.read_all("keep").unwrap(), b"data");
    }

    #[test]
    fn disarm_models_restart() {
        let (vfs, handle) = Vfs::with_faults(Vfs::memory(), 11);
        handle.crash_at(0);
        vfs.append("f", b"abc").unwrap_err();
        assert!(vfs.append("f", b"abc").is_err());
        handle.disarm();
        vfs.append("f", b"abc").unwrap();
        assert!(vfs.read_all("f").unwrap().ends_with(b"abc"));
        // The inner handle sees the same bytes without injection.
        assert_eq!(
            handle.inner().read_all("f").unwrap(),
            vfs.read_all("f").unwrap()
        );
    }
}
