//! VFS instrumentation handles (`storage.vfs.*`, `storage.fault.*`).
//!
//! Handles are registered once on the global registry and cached in a
//! `OnceLock`; hot paths gate on [`sc_obs::enabled`] *before* touching the
//! lock-free counters, so the disabled cost is a single relaxed load.
//!
//! Only the Memory/Disk leaf arms of [`Vfs`](crate::Vfs) record: the fault
//! backend delegates to its wrapped VFS, whose leaf arm then counts the
//! operation exactly once.

use sc_obs::{Counter, Registry};
use std::sync::OnceLock;

pub(crate) struct VfsObs {
    pub append_ops: Counter,
    pub append_bytes: Counter,
    pub read_ops: Counter,
    pub read_bytes: Counter,
    pub delete_ops: Counter,
    pub truncate_ops: Counter,
    pub injected_crashes: Counter,
}

pub(crate) fn vfs() -> &'static VfsObs {
    static OBS: OnceLock<VfsObs> = OnceLock::new();
    OBS.get_or_init(|| {
        let r = Registry::global();
        VfsObs {
            append_ops: r.counter("storage.vfs.append_ops"),
            append_bytes: r.counter("storage.vfs.append_bytes"),
            read_ops: r.counter("storage.vfs.read_ops"),
            read_bytes: r.counter("storage.vfs.read_bytes"),
            delete_ops: r.counter("storage.vfs.delete_ops"),
            truncate_ops: r.counter("storage.vfs.truncate_ops"),
            injected_crashes: r.counter("storage.fault.injected_crashes"),
        }
    })
}
