//! # sc-storage
//!
//! A minimal virtual file system shared by the NoSQL and relational engines.
//!
//! Both engines measure the paper's `size_as_mb` (Table 4) from **real
//! serialized bytes**; this crate gives them a common place to put those
//! bytes. Two backends are provided:
//!
//! * [`Vfs::memory`] — an in-memory file map. Fast and hermetic; the default
//!   for tests and benchmarks (the byte counts are identical to the disk
//!   backend's).
//! * [`Vfs::disk`] — real files under a root directory, for examples and
//!   anyone who wants to inspect SSTables/heap files on disk.
//!
//! The API is deliberately tiny: append-only writes plus positioned reads,
//! which is all a commit log, SSTable or heap file needs.
//!
//! A third backend, [`Vfs::with_faults`], wraps any other VFS with
//! deterministic fault injection (torn appends, lost deletes) for
//! crash-recovery testing; see the [`fault`] module.

pub mod fault;
mod obs;

pub use fault::{FaultHandle, FaultOp};

use std::collections::BTreeMap;
use std::fmt;
use std::fs;
use std::io::{Read, Seek, SeekFrom, Write};
use std::path::{Path, PathBuf};
use std::sync::Arc;
use std::sync::Mutex;

/// Errors from the storage layer.
#[derive(Debug)]
pub enum StorageError {
    /// The named file does not exist.
    NotFound(String),
    /// A read went past the end of the file.
    ShortRead {
        /// File name.
        file: String,
        /// Requested offset.
        offset: u64,
        /// Requested length.
        len: usize,
    },
    /// An underlying I/O error (disk backend).
    Io(std::io::Error),
    /// A fault injected by [`Vfs::with_faults`]: the simulated process
    /// "crashed" at mutating operation `op` (power loss). Every later
    /// mutating operation on the same VFS also fails with this error.
    Injected {
        /// Index of the mutating operation the crash was injected at.
        op: u64,
        /// File the failed operation targeted.
        file: String,
    },
}

impl fmt::Display for StorageError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            StorageError::NotFound(name) => write!(f, "file not found: {name}"),
            StorageError::ShortRead { file, offset, len } => {
                write!(f, "short read: {file} at {offset} (+{len})")
            }
            StorageError::Io(e) => write!(f, "I/O error: {e}"),
            StorageError::Injected { op, file } => {
                write!(f, "injected crash at op {op} ({file})")
            }
        }
    }
}

impl std::error::Error for StorageError {}

impl From<std::io::Error> for StorageError {
    fn from(e: std::io::Error) -> Self {
        StorageError::Io(e)
    }
}

/// Result alias for storage operations.
pub type Result<T> = std::result::Result<T, StorageError>;

#[derive(Debug)]
enum Backend {
    Memory(Mutex<BTreeMap<String, Vec<u8>>>),
    Disk(PathBuf),
    Fault(fault::FaultState),
}

/// A handle to a file namespace. Cheap to clone (shared).
#[derive(Debug, Clone)]
pub struct Vfs {
    backend: Arc<Backend>,
}

impl Vfs {
    /// Creates an in-memory VFS.
    pub fn memory() -> Vfs {
        Vfs {
            backend: Arc::new(Backend::Memory(Mutex::new(BTreeMap::new()))),
        }
    }

    /// Creates a disk-backed VFS rooted at `root` (created if missing).
    pub fn disk(root: impl Into<PathBuf>) -> Result<Vfs> {
        let root = root.into();
        fs::create_dir_all(&root)?;
        Ok(Vfs {
            backend: Arc::new(Backend::Disk(root)),
        })
    }

    /// Wraps `inner` with deterministic fault injection seeded by `seed`.
    ///
    /// Returns the wrapping VFS plus a [`FaultHandle`] used to arm a crash
    /// point and inspect the op trace. Reads pass through; mutating
    /// operations (`append`, `delete`, `truncate`) are counted and can be
    /// made to fail. See the [`fault`] module docs for the fault model.
    pub fn with_faults(inner: Vfs, seed: u64) -> (Vfs, FaultHandle) {
        let (state, handle) = fault::FaultState::new(inner, seed);
        (
            Vfs {
                backend: Arc::new(Backend::Fault(state)),
            },
            handle,
        )
    }

    fn disk_path(root: &Path, name: &str) -> PathBuf {
        // File names may contain '/' separators; map them to subdirectories.
        root.join(name)
    }

    /// Appends `data` to `name`, creating it if missing. Returns the offset
    /// the data was written at.
    pub fn append(&self, name: &str, data: &[u8]) -> Result<u64> {
        // Only the Memory/Disk leaf arms record I/O metrics: the fault
        // backend re-enters this method on its wrapped VFS, whose leaf arm
        // then counts the operation exactly once.
        match &*self.backend {
            Backend::Memory(files) => {
                self.record_append(data.len());
                let mut files = files.lock().expect("vfs lock poisoned");
                let file = files.entry(name.to_string()).or_default();
                let offset = file.len() as u64;
                file.extend_from_slice(data);
                Ok(offset)
            }
            Backend::Disk(root) => {
                self.record_append(data.len());
                let path = Self::disk_path(root, name);
                if let Some(parent) = path.parent() {
                    fs::create_dir_all(parent)?;
                }
                let mut f = fs::OpenOptions::new()
                    .create(true)
                    .append(true)
                    .open(&path)?;
                let offset = f.seek(SeekFrom::End(0))?;
                f.write_all(data)?;
                Ok(offset)
            }
            Backend::Fault(state) => state.append(name, data),
        }
    }

    fn record_append(&self, len: usize) {
        if sc_obs::enabled() {
            let o = obs::vfs();
            o.append_ops.inc();
            o.append_bytes.add(len as u64);
        }
        sc_obs::trace::add(sc_obs::trace::Attr::VfsWriteBytes, len as u64);
    }

    fn record_read(&self, len: usize) {
        if sc_obs::enabled() {
            let o = obs::vfs();
            o.read_ops.inc();
            o.read_bytes.add(len as u64);
        }
        sc_obs::trace::add(sc_obs::trace::Attr::VfsReadBytes, len as u64);
    }

    /// Reads `len` bytes at `offset` from `name`.
    pub fn read_at(&self, name: &str, offset: u64, len: usize) -> Result<Vec<u8>> {
        match &*self.backend {
            Backend::Memory(files) => {
                self.record_read(len);
                let files = files.lock().expect("vfs lock poisoned");
                let file = files
                    .get(name)
                    .ok_or_else(|| StorageError::NotFound(name.to_string()))?;
                let start = offset as usize;
                let end = start.checked_add(len).filter(|&e| e <= file.len());
                match end {
                    Some(end) => Ok(file[start..end].to_vec()),
                    None => Err(StorageError::ShortRead {
                        file: name.to_string(),
                        offset,
                        len,
                    }),
                }
            }
            Backend::Disk(root) => {
                self.record_read(len);
                let path = Self::disk_path(root, name);
                let mut f =
                    fs::File::open(&path).map_err(|_| StorageError::NotFound(name.to_string()))?;
                f.seek(SeekFrom::Start(offset))?;
                let mut buf = vec![0u8; len];
                f.read_exact(&mut buf)
                    .map_err(|_| StorageError::ShortRead {
                        file: name.to_string(),
                        offset,
                        len,
                    })?;
                Ok(buf)
            }
            Backend::Fault(state) => state.inner().read_at(name, offset, len),
        }
    }

    /// Reads the whole file.
    pub fn read_all(&self, name: &str) -> Result<Vec<u8>> {
        let len = self.len(name)?;
        self.read_at(name, 0, len as usize)
    }

    /// Length of `name` in bytes.
    pub fn len(&self, name: &str) -> Result<u64> {
        match &*self.backend {
            Backend::Memory(files) => files
                .lock()
                .expect("vfs lock poisoned")
                .get(name)
                .map(|f| f.len() as u64)
                .ok_or_else(|| StorageError::NotFound(name.to_string())),
            Backend::Disk(root) => {
                let path = Self::disk_path(root, name);
                Ok(fs::metadata(&path)
                    .map_err(|_| StorageError::NotFound(name.to_string()))?
                    .len())
            }
            Backend::Fault(state) => state.inner().len(name),
        }
    }

    /// Whether `name` exists.
    pub fn exists(&self, name: &str) -> bool {
        self.len(name).is_ok()
    }

    /// Deletes `name` (idempotent).
    pub fn delete(&self, name: &str) -> Result<()> {
        match &*self.backend {
            Backend::Memory(files) => {
                if sc_obs::enabled() {
                    obs::vfs().delete_ops.inc();
                }
                files.lock().expect("vfs lock poisoned").remove(name);
                Ok(())
            }
            Backend::Disk(root) => {
                if sc_obs::enabled() {
                    obs::vfs().delete_ops.inc();
                }
                let path = Self::disk_path(root, name);
                match fs::remove_file(path) {
                    Ok(()) => Ok(()),
                    Err(e) if e.kind() == std::io::ErrorKind::NotFound => Ok(()),
                    Err(e) => Err(e.into()),
                }
            }
            Backend::Fault(state) => state.delete(name),
        }
    }

    /// Truncates `name` to `len` bytes. A `len` at or past the current end
    /// is a no-op; a missing file is `NotFound`.
    pub fn truncate(&self, name: &str, len: u64) -> Result<()> {
        match &*self.backend {
            Backend::Memory(files) => {
                if sc_obs::enabled() {
                    obs::vfs().truncate_ops.inc();
                }
                let mut files = files.lock().expect("vfs lock poisoned");
                let file = files
                    .get_mut(name)
                    .ok_or_else(|| StorageError::NotFound(name.to_string()))?;
                if (len as usize) < file.len() {
                    file.truncate(len as usize);
                }
                Ok(())
            }
            Backend::Disk(root) => {
                if sc_obs::enabled() {
                    obs::vfs().truncate_ops.inc();
                }
                let path = Self::disk_path(root, name);
                let f = fs::OpenOptions::new()
                    .write(true)
                    .open(&path)
                    .map_err(|_| StorageError::NotFound(name.to_string()))?;
                if f.metadata()?.len() > len {
                    f.set_len(len)?;
                }
                Ok(())
            }
            Backend::Fault(state) => state.truncate(name, len),
        }
    }

    /// Lists files whose names start with `prefix`, sorted.
    pub fn list(&self, prefix: &str) -> Result<Vec<String>> {
        match &*self.backend {
            Backend::Memory(files) => Ok(files
                .lock()
                .expect("vfs lock poisoned")
                .keys()
                .filter(|k| k.starts_with(prefix))
                .cloned()
                .collect()),
            Backend::Disk(root) => {
                let mut out = Vec::new();
                fn walk(
                    dir: &Path,
                    root: &Path,
                    prefix: &str,
                    out: &mut Vec<String>,
                ) -> Result<()> {
                    if !dir.exists() {
                        return Ok(());
                    }
                    for entry in fs::read_dir(dir)? {
                        let entry = entry?;
                        let path = entry.path();
                        if path.is_dir() {
                            walk(&path, root, prefix, out)?;
                        } else if let Ok(rel) = path.strip_prefix(root) {
                            let name = rel.to_string_lossy().replace('\\', "/");
                            if name.starts_with(prefix) {
                                out.push(name);
                            }
                        }
                    }
                    Ok(())
                }
                walk(root, root, prefix, &mut out)?;
                out.sort();
                Ok(out)
            }
            Backend::Fault(state) => state.inner().list(prefix),
        }
    }

    /// Total bytes across all files whose names start with `prefix`.
    pub fn total_size(&self, prefix: &str) -> Result<u64> {
        let mut total = 0;
        for f in self.list(prefix)? {
            total += self.len(&f)?;
        }
        Ok(total)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn exercise(vfs: Vfs) {
        assert!(!vfs.exists("a/log"));
        assert_eq!(vfs.append("a/log", b"hello").unwrap(), 0);
        assert_eq!(vfs.append("a/log", b" world").unwrap(), 5);
        assert_eq!(vfs.len("a/log").unwrap(), 11);
        assert_eq!(vfs.read_at("a/log", 6, 5).unwrap(), b"world");
        assert_eq!(vfs.read_all("a/log").unwrap(), b"hello world");
        assert!(matches!(
            vfs.read_at("a/log", 8, 10),
            Err(StorageError::ShortRead { .. })
        ));
        assert!(matches!(
            vfs.read_all("missing"),
            Err(StorageError::NotFound(_))
        ));
        vfs.append("a/other", b"x").unwrap();
        vfs.append("b/log", b"yy").unwrap();
        assert_eq!(vfs.list("a/").unwrap(), vec!["a/log", "a/other"]);
        assert_eq!(vfs.total_size("a/").unwrap(), 12);
        assert_eq!(vfs.total_size("").unwrap(), 14);
        vfs.delete("a/other").unwrap();
        assert!(!vfs.exists("a/other"));
        vfs.delete("a/other").unwrap(); // idempotent
    }

    #[test]
    fn memory_backend() {
        exercise(Vfs::memory());
    }

    #[test]
    fn disk_backend() {
        let dir = std::env::temp_dir().join(format!("sc-storage-test-{}", std::process::id()));
        let _ = fs::remove_dir_all(&dir);
        exercise(Vfs::disk(&dir).unwrap());
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn backends_agree_on_sizes() {
        let mem = Vfs::memory();
        let dir = std::env::temp_dir().join(format!("sc-storage-size-{}", std::process::id()));
        let _ = fs::remove_dir_all(&dir);
        let disk = Vfs::disk(&dir).unwrap();
        for i in 0..10 {
            let data = vec![i as u8; (i * 37) % 100 + 1];
            mem.append("f", &data).unwrap();
            disk.append("f", &data).unwrap();
        }
        assert_eq!(mem.len("f").unwrap(), disk.len("f").unwrap());
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn clones_share_state() {
        let a = Vfs::memory();
        let b = a.clone();
        a.append("x", b"1").unwrap();
        assert_eq!(b.read_all("x").unwrap(), b"1");
    }
}
