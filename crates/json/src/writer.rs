//! JSON serialization (compact and pretty).

use crate::value::JsonValue;

/// Writes `v` in compact form (no whitespace).
pub fn write_compact(v: &JsonValue, out: &mut String) {
    match v {
        JsonValue::Null => out.push_str("null"),
        JsonValue::Bool(true) => out.push_str("true"),
        JsonValue::Bool(false) => out.push_str("false"),
        JsonValue::Number(n) => write_number(*n, out),
        JsonValue::String(s) => write_string(s, out),
        JsonValue::Array(items) => {
            out.push('[');
            for (i, item) in items.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                write_compact(item, out);
            }
            out.push(']');
        }
        JsonValue::Object(members) => {
            out.push('{');
            for (i, (k, val)) in members.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                write_string(k, out);
                out.push(':');
                write_compact(val, out);
            }
            out.push('}');
        }
    }
}

/// Writes `v` with two-space indentation at `indent` levels deep.
pub fn write_pretty(v: &JsonValue, indent: usize, out: &mut String) {
    match v {
        JsonValue::Array(items) if !items.is_empty() => {
            out.push_str("[\n");
            for (i, item) in items.iter().enumerate() {
                if i > 0 {
                    out.push_str(",\n");
                }
                push_indent(indent + 1, out);
                write_pretty(item, indent + 1, out);
            }
            out.push('\n');
            push_indent(indent, out);
            out.push(']');
        }
        JsonValue::Object(members) if !members.is_empty() => {
            out.push_str("{\n");
            for (i, (k, val)) in members.iter().enumerate() {
                if i > 0 {
                    out.push_str(",\n");
                }
                push_indent(indent + 1, out);
                write_string(k, out);
                out.push_str(": ");
                write_pretty(val, indent + 1, out);
            }
            out.push('\n');
            push_indent(indent, out);
            out.push('}');
        }
        other => write_compact(other, out),
    }
}

fn push_indent(levels: usize, out: &mut String) {
    for _ in 0..levels {
        out.push_str("  ");
    }
}

fn write_number(n: f64, out: &mut String) {
    if n.is_finite() {
        if n.fract() == 0.0 && n.abs() < 1e15 {
            // Integral values print without a trailing ".0".
            out.push_str(&format!("{}", n as i64));
        } else {
            out.push_str(&format!("{n}"));
        }
    } else {
        // JSON has no NaN/Infinity; emit null like most tolerant writers.
        out.push_str("null");
    }
}

fn write_string(s: &str, out: &mut String) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            '\u{0008}' => out.push_str("\\b"),
            '\u{000C}' => out.push_str("\\f"),
            c if (c as u32) < 0x20 => {
                out.push_str(&format!("\\u{:04x}", c as u32));
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parse;

    #[test]
    fn compact_shapes() {
        let v = JsonValue::object(vec![
            ("a", JsonValue::Array(vec![1i64.into(), 2i64.into()])),
            ("b", "x\"y".into()),
            ("c", JsonValue::Null),
        ]);
        assert_eq!(v.to_json(), r#"{"a":[1,2],"b":"x\"y","c":null}"#);
    }

    #[test]
    fn pretty_shape() {
        let v = JsonValue::object(vec![("a", JsonValue::Array(vec![1i64.into()]))]);
        assert_eq!(v.to_json_pretty(), "{\n  \"a\": [\n    1\n  ]\n}");
    }

    #[test]
    fn empty_composites_stay_compact_in_pretty() {
        let v = JsonValue::object(vec![
            ("a", JsonValue::Array(vec![])),
            ("b", JsonValue::Object(vec![])),
        ]);
        assert_eq!(v.to_json_pretty(), "{\n  \"a\": [],\n  \"b\": {}\n}");
    }

    #[test]
    fn numbers_render_cleanly() {
        assert_eq!(JsonValue::Number(3.0).to_json(), "3");
        assert_eq!(JsonValue::Number(3.5).to_json(), "3.5");
        assert_eq!(JsonValue::Number(-0.25).to_json(), "-0.25");
        assert_eq!(JsonValue::Number(f64::NAN).to_json(), "null");
        assert_eq!(JsonValue::Number(f64::INFINITY).to_json(), "null");
    }

    #[test]
    fn control_characters_are_escaped() {
        let v = JsonValue::string("a\u{1}b\nc");
        let text = v.to_json();
        assert_eq!(text, "\"a\\u0001b\\nc\"");
        assert_eq!(parse(&text).unwrap(), v);
    }
}
