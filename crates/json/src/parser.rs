//! Recursive-descent JSON parser (RFC 8259).

use crate::error::JsonError;
use crate::value::JsonValue;

/// Maximum nesting depth, to keep hostile inputs from overflowing the stack.
const MAX_DEPTH: usize = 512;

/// Parses a complete JSON document; trailing non-whitespace is an error.
pub fn parse(input: &str) -> Result<JsonValue, JsonError> {
    let mut p = Parser::new(input);
    p.skip_ws();
    let v = p.parse_value(0)?;
    p.skip_ws();
    if !p.is_eof() {
        return Err(p.err("trailing characters after the JSON value"));
    }
    Ok(v)
}

struct Parser<'a> {
    bytes: &'a [u8],
    input: &'a str,
    pos: usize,
    line: u32,
    col: u32,
}

impl<'a> Parser<'a> {
    fn new(input: &'a str) -> Self {
        Self {
            bytes: input.as_bytes(),
            input,
            pos: 0,
            line: 1,
            col: 1,
        }
    }

    fn is_eof(&self) -> bool {
        self.pos >= self.bytes.len()
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn bump(&mut self) -> Option<u8> {
        let b = self.peek()?;
        self.pos += 1;
        if b == b'\n' {
            self.line += 1;
            self.col = 1;
        } else {
            self.col += 1;
        }
        Some(b)
    }

    fn err(&self, message: impl Into<String>) -> JsonError {
        JsonError::new(message, self.line, self.col)
    }

    fn skip_ws(&mut self) {
        while matches!(self.peek(), Some(b' ' | b'\t' | b'\r' | b'\n')) {
            self.bump();
        }
    }

    fn expect(&mut self, b: u8) -> Result<(), JsonError> {
        match self.peek() {
            Some(c) if c == b => {
                self.bump();
                Ok(())
            }
            Some(c) => Err(self.err(format!("expected {:?}, found {:?}", b as char, c as char))),
            None => Err(self.err(format!("expected {:?}, found end of input", b as char))),
        }
    }

    fn eat_keyword(&mut self, kw: &str) -> Result<(), JsonError> {
        if self.input[self.pos..].starts_with(kw) {
            for _ in 0..kw.len() {
                self.bump();
            }
            Ok(())
        } else {
            Err(self.err(format!("invalid literal, expected {kw:?}")))
        }
    }

    fn parse_value(&mut self, depth: usize) -> Result<JsonValue, JsonError> {
        if depth > MAX_DEPTH {
            return Err(self.err("maximum nesting depth exceeded"));
        }
        match self.peek() {
            Some(b'{') => self.parse_object(depth),
            Some(b'[') => self.parse_array(depth),
            Some(b'"') => Ok(JsonValue::String(self.parse_string()?)),
            Some(b't') => {
                self.eat_keyword("true")?;
                Ok(JsonValue::Bool(true))
            }
            Some(b'f') => {
                self.eat_keyword("false")?;
                Ok(JsonValue::Bool(false))
            }
            Some(b'n') => {
                self.eat_keyword("null")?;
                Ok(JsonValue::Null)
            }
            Some(b'-' | b'0'..=b'9') => self.parse_number(),
            Some(c) => Err(self.err(format!("unexpected character {:?}", c as char))),
            None => Err(self.err("unexpected end of input")),
        }
    }

    fn parse_object(&mut self, depth: usize) -> Result<JsonValue, JsonError> {
        self.expect(b'{')?;
        let mut members = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.bump();
            return Ok(JsonValue::Object(members));
        }
        loop {
            self.skip_ws();
            let key = self.parse_string()?;
            self.skip_ws();
            self.expect(b':')?;
            self.skip_ws();
            let value = self.parse_value(depth + 1)?;
            members.push((key, value));
            self.skip_ws();
            match self.bump() {
                Some(b',') => continue,
                Some(b'}') => return Ok(JsonValue::Object(members)),
                Some(c) => {
                    return Err(self.err(format!(
                        "expected ',' or '}}' in object, found {:?}",
                        c as char
                    )))
                }
                None => return Err(self.err("unterminated object")),
            }
        }
    }

    fn parse_array(&mut self, depth: usize) -> Result<JsonValue, JsonError> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.bump();
            return Ok(JsonValue::Array(items));
        }
        loop {
            self.skip_ws();
            items.push(self.parse_value(depth + 1)?);
            self.skip_ws();
            match self.bump() {
                Some(b',') => continue,
                Some(b']') => return Ok(JsonValue::Array(items)),
                Some(c) => {
                    return Err(self.err(format!(
                        "expected ',' or ']' in array, found {:?}",
                        c as char
                    )))
                }
                None => return Err(self.err("unterminated array")),
            }
        }
    }

    fn parse_string(&mut self) -> Result<String, JsonError> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            // Fast path: copy a run of plain bytes at once.
            let start = self.pos;
            while let Some(b) = self.peek() {
                if b == b'"' || b == b'\\' || b < 0x20 {
                    break;
                }
                // Multi-byte UTF-8 is fine: we advance bytewise but only
                // slice at boundaries found via peek of ASCII delimiters.
                self.pos += 1;
                self.col += 1;
            }
            out.push_str(&self.input[start..self.pos]);
            match self.peek() {
                Some(b'"') => {
                    self.bump();
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.bump();
                    self.parse_escape(&mut out)?;
                }
                Some(b) if b < 0x20 => {
                    return Err(self.err("unescaped control character in string"))
                }
                Some(_) => unreachable!("loop above stops only at delimiters"),
                None => return Err(self.err("unterminated string")),
            }
        }
    }

    fn parse_escape(&mut self, out: &mut String) -> Result<(), JsonError> {
        match self.bump() {
            Some(b'"') => out.push('"'),
            Some(b'\\') => out.push('\\'),
            Some(b'/') => out.push('/'),
            Some(b'b') => out.push('\u{0008}'),
            Some(b'f') => out.push('\u{000C}'),
            Some(b'n') => out.push('\n'),
            Some(b'r') => out.push('\r'),
            Some(b't') => out.push('\t'),
            Some(b'u') => {
                let first = self.parse_hex4()?;
                let c = if (0xD800..0xDC00).contains(&first) {
                    // High surrogate: must be followed by \uXXXX low surrogate.
                    if self.bump() != Some(b'\\') || self.bump() != Some(b'u') {
                        return Err(self.err("high surrogate not followed by low surrogate"));
                    }
                    let second = self.parse_hex4()?;
                    if !(0xDC00..0xE000).contains(&second) {
                        return Err(self.err("invalid low surrogate"));
                    }
                    let code = 0x10000 + ((first - 0xD800) << 10) + (second - 0xDC00);
                    char::from_u32(code).ok_or_else(|| self.err("invalid surrogate pair"))?
                } else if (0xDC00..0xE000).contains(&first) {
                    return Err(self.err("unexpected low surrogate"));
                } else {
                    char::from_u32(first).ok_or_else(|| self.err("invalid \\u escape"))?
                };
                out.push(c);
            }
            Some(c) => return Err(self.err(format!("invalid escape \\{}", c as char))),
            None => return Err(self.err("unterminated escape")),
        }
        Ok(())
    }

    fn parse_hex4(&mut self) -> Result<u32, JsonError> {
        let mut v = 0u32;
        for _ in 0..4 {
            let b = self
                .bump()
                .ok_or_else(|| self.err("truncated \\u escape"))?;
            let d = (b as char)
                .to_digit(16)
                .ok_or_else(|| self.err("non-hex digit in \\u escape"))?;
            v = v * 16 + d;
        }
        Ok(v)
    }

    fn parse_number(&mut self) -> Result<JsonValue, JsonError> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.bump();
        }
        // Integer part: "0" or [1-9][0-9]*.
        match self.peek() {
            Some(b'0') => {
                self.bump();
                if matches!(self.peek(), Some(b'0'..=b'9')) {
                    return Err(self.err("numbers may not have leading zeros"));
                }
            }
            Some(b'1'..=b'9') => {
                while matches!(self.peek(), Some(b'0'..=b'9')) {
                    self.bump();
                }
            }
            _ => return Err(self.err("invalid number")),
        }
        if self.peek() == Some(b'.') {
            self.bump();
            if !matches!(self.peek(), Some(b'0'..=b'9')) {
                return Err(self.err("digits required after decimal point"));
            }
            while matches!(self.peek(), Some(b'0'..=b'9')) {
                self.bump();
            }
        }
        if matches!(self.peek(), Some(b'e' | b'E')) {
            self.bump();
            if matches!(self.peek(), Some(b'+' | b'-')) {
                self.bump();
            }
            if !matches!(self.peek(), Some(b'0'..=b'9')) {
                return Err(self.err("digits required in exponent"));
            }
            while matches!(self.peek(), Some(b'0'..=b'9')) {
                self.bump();
            }
        }
        let text = &self.input[start..self.pos];
        let n: f64 = text
            .parse()
            .map_err(|_| self.err(format!("unparseable number {text:?}")))?;
        Ok(JsonValue::Number(n))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sc_encoding::Rng;

    #[test]
    fn scalars() {
        assert_eq!(parse("null").unwrap(), JsonValue::Null);
        assert_eq!(parse("true").unwrap(), JsonValue::Bool(true));
        assert_eq!(parse("false").unwrap(), JsonValue::Bool(false));
        assert_eq!(parse("42").unwrap(), JsonValue::Number(42.0));
        assert_eq!(parse("-3.25e2").unwrap(), JsonValue::Number(-325.0));
        assert_eq!(parse("\"hi\"").unwrap(), JsonValue::string("hi"));
    }

    #[test]
    fn air_quality_feed() {
        let v = parse(
            r#"{
              "sensor": "AQ-17",
              "readings": [
                {"pollutant": "NO2", "value": 41.5, "ok": true},
                {"pollutant": "PM10", "value": 18.0, "ok": null}
              ]
            }"#,
        )
        .unwrap();
        assert_eq!(v.get("sensor").unwrap().as_str(), Some("AQ-17"));
        let readings = v.get("readings").unwrap().as_array().unwrap();
        assert_eq!(readings.len(), 2);
        assert_eq!(readings[1].get("pollutant").unwrap().as_str(), Some("PM10"));
        assert!(readings[1].get("ok").unwrap().is_null());
    }

    #[test]
    fn string_escapes() {
        assert_eq!(
            parse(r#""a\"b\\c\/d\b\f\n\r\t""#).unwrap(),
            JsonValue::string("a\"b\\c/d\u{8}\u{c}\n\r\t")
        );
        assert_eq!(parse(r#""A""#).unwrap(), JsonValue::string("A"));
        assert_eq!(parse(r#""🚲""#).unwrap(), JsonValue::string("🚲"));
    }

    #[test]
    fn surrogate_errors() {
        assert!(parse(r#""\uD83D""#).is_err());
        assert!(parse(r#""\uD83Dx""#).is_err());
        assert!(parse(r#""\uDEB2""#).is_err());
        assert!(parse(r#""\uD83DA""#).is_err());
    }

    #[test]
    fn number_edge_cases() {
        assert!(parse("01").is_err());
        assert!(parse("1.").is_err());
        assert!(parse(".5").is_err());
        assert!(parse("1e").is_err());
        assert!(parse("-").is_err());
        assert!(parse("+1").is_err());
        assert_eq!(parse("0").unwrap(), JsonValue::Number(0.0));
        assert_eq!(parse("-0").unwrap(), JsonValue::Number(-0.0));
        assert_eq!(parse("1e+3").unwrap(), JsonValue::Number(1000.0));
    }

    #[test]
    fn structural_errors() {
        for bad in [
            "",
            "{",
            "[",
            "{\"a\"}",
            "{\"a\":1,}",
            "[1,]",
            "[1 2]",
            "\"open",
            "{'a':1}",
            "nul",
            "truex",
            "[]]",
            "{\"a\":1}{",
            "\"\x01\"",
        ] {
            assert!(parse(bad).is_err(), "{bad:?} should fail");
        }
    }

    #[test]
    fn object_key_order_is_preserved() {
        let v = parse(r#"{"z":1,"a":2,"m":3}"#).unwrap();
        let keys: Vec<_> = v
            .as_object()
            .unwrap()
            .iter()
            .map(|(k, _)| k.as_str())
            .collect();
        assert_eq!(keys, ["z", "a", "m"]);
    }

    #[test]
    fn duplicate_keys_first_wins_on_get() {
        let v = parse(r#"{"a":1,"a":2}"#).unwrap();
        assert_eq!(v.get("a").unwrap().as_i64(), Some(1));
        assert_eq!(v.as_object().unwrap().len(), 2);
    }

    #[test]
    fn depth_limit() {
        let deep = "[".repeat(600) + &"]".repeat(600);
        assert!(parse(&deep).is_err());
        let ok = "[".repeat(100) + &"]".repeat(100);
        assert!(parse(&ok).is_ok());
    }

    #[test]
    fn error_positions() {
        let e = parse("{\n  \"a\": tru\n}").unwrap_err();
        assert_eq!(e.line, 2);
    }

    #[test]
    fn unicode_text_passthrough() {
        let v = parse("\"Baile Átha Cliath 🚲\"").unwrap();
        assert_eq!(v.as_str(), Some("Baile Átha Cliath 🚲"));
    }

    // Deterministic randomized sweeps (seeded xorshift, no proptest — the
    // build is offline). `random_json` builds arbitrary values with bounded
    // depth; numbers stay in an exactly-representable range so equality is
    // exact after a text round-trip.

    fn random_json(rng: &mut Rng, depth: u32) -> JsonValue {
        let leaf_only = depth == 0;
        match rng.gen_range(if leaf_only { 4 } else { 6 }) {
            0 => JsonValue::Null,
            1 => JsonValue::Bool(rng.gen_range(2) == 1),
            2 => JsonValue::Number(rng.gen_between(-1_000_000, 999_999) as f64),
            3 => JsonValue::String(rng.gen_ascii(16)),
            4 => JsonValue::Array(
                (0..rng.gen_range(6))
                    .map(|_| random_json(rng, depth - 1))
                    .collect(),
            ),
            _ => JsonValue::Object(
                (0..rng.gen_range(6))
                    .map(|_| {
                        let klen = 1 + rng.gen_range(6) as usize;
                        let key: String = (0..klen)
                            .map(|_| (b'a' + rng.gen_range(26) as u8) as char)
                            .collect();
                        (key, random_json(rng, depth - 1))
                    })
                    .collect(),
            ),
        }
    }

    /// parse(value.to_json()) == value for arbitrary generated values.
    #[test]
    fn roundtrip_random() {
        let mut rng = Rng::new(0x1502);
        for _ in 0..512 {
            let v = random_json(&mut rng, 3);
            let text = v.to_json();
            let back = parse(&text).unwrap();
            assert_eq!(back, v, "source text: {text}");
        }
    }

    /// Pretty and compact forms parse to the same value.
    #[test]
    fn pretty_equals_compact_random() {
        let mut rng = Rng::new(0x1503);
        for _ in 0..512 {
            let v = random_json(&mut rng, 3);
            let pretty = v.to_json_pretty();
            assert_eq!(parse(&pretty).unwrap(), parse(&v.to_json()).unwrap());
        }
    }
}
