//! # sc-json
//!
//! A from-scratch JSON (RFC 8259) parser and writer.
//!
//! Several smart-city feeds (air quality, auction data) publish JSON rather
//! than XML; the paper's goal is "a canonical approach to managing XML and
//! JSON smart city data streams", so the ingest layer accepts both. This
//! crate provides:
//!
//! * [`value::JsonValue`] — an owned value model with object key order
//!   preserved,
//! * [`parse`] — a recursive-descent parser with positioned errors,
//! * [`value::JsonValue::to_json`] — a compact writer (plus pretty printing),
//! * `pointer` — JSON-pointer-style paths (`/stations/0/name`, with a `*`
//!   wildcard extension) used by cube definitions.
//!
//! ```
//! use sc_json::{parse, JsonValue};
//!
//! let v = parse(r#"{"station": "Fenian St", "bikes": 3}"#).unwrap();
//! assert_eq!(v.get("station").and_then(JsonValue::as_str), Some("Fenian St"));
//! assert_eq!(v.get("bikes").and_then(JsonValue::as_i64), Some(3));
//! ```

pub mod error;
pub mod parser;
pub mod pointer;
pub mod value;
pub mod writer;

pub use error::JsonError;
pub use parser::parse;
pub use pointer::JsonPath;
pub use value::JsonValue;
