//! JSON-pointer-style paths with a `*` wildcard extension.
//!
//! Cube definitions use these to locate record arrays and field values in
//! JSON feeds, mirroring what `sc-xml`'s XPath-lite does for XML:
//!
//! * `/stations/3/name` — RFC 6901-style member/index navigation,
//! * `/stations/*` — every element of the `stations` array (the wildcard is
//!   the extension that makes record iteration expressible),
//! * `~0`/`~1` escapes are honoured per RFC 6901.

use crate::value::JsonValue;
use std::fmt;

/// One path segment.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Segment {
    /// Object member name (or array index if it parses as a number).
    Key(String),
    /// `*`: all elements of an array / all member values of an object.
    Wildcard,
}

/// Error parsing a pointer expression.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct JsonPathError {
    /// Human-readable description.
    pub message: String,
}

impl fmt::Display for JsonPathError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "invalid JSON path: {}", self.message)
    }
}

impl std::error::Error for JsonPathError {}

/// A compiled pointer path.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct JsonPath {
    /// Segments in order. Empty means "the root value itself".
    pub segments: Vec<Segment>,
}

impl JsonPath {
    /// Parses a pointer. The empty string and `/` both denote the root.
    pub fn parse(expr: &str) -> Result<JsonPath, JsonPathError> {
        let expr = expr.trim();
        if expr.is_empty() || expr == "/" {
            return Ok(JsonPath { segments: vec![] });
        }
        let body = expr.strip_prefix('/').ok_or(JsonPathError {
            message: format!("path must start with '/': {expr:?}"),
        })?;
        let mut segments = Vec::new();
        for raw in body.split('/') {
            if raw == "*" {
                segments.push(Segment::Wildcard);
                continue;
            }
            // RFC 6901 unescaping: ~1 -> '/', ~0 -> '~'.
            let mut key = String::with_capacity(raw.len());
            let mut chars = raw.chars();
            while let Some(c) = chars.next() {
                if c == '~' {
                    match chars.next() {
                        Some('0') => key.push('~'),
                        Some('1') => key.push('/'),
                        other => {
                            return Err(JsonPathError {
                                message: format!("bad escape '~{}'", other.unwrap_or(' ')),
                            })
                        }
                    }
                } else {
                    key.push(c);
                }
            }
            segments.push(Segment::Key(key));
        }
        Ok(JsonPath { segments })
    }

    /// Evaluates the path, returning all matched values.
    pub fn select<'a>(&self, root: &'a JsonValue) -> Vec<&'a JsonValue> {
        let mut current = vec![root];
        for seg in &self.segments {
            let mut next = Vec::new();
            for v in current {
                match seg {
                    Segment::Wildcard => match v {
                        JsonValue::Array(items) => next.extend(items.iter()),
                        JsonValue::Object(members) => next.extend(members.iter().map(|(_, v)| v)),
                        _ => {}
                    },
                    Segment::Key(k) => {
                        if let Some(found) = v.get(k) {
                            next.push(found);
                        } else if let (JsonValue::Array(items), Ok(idx)) = (v, k.parse::<usize>()) {
                            if let Some(found) = items.get(idx) {
                                next.push(found);
                            }
                        }
                    }
                }
            }
            if next.is_empty() {
                return Vec::new();
            }
            current = next;
        }
        current
    }

    /// First matched value, if any.
    pub fn select_first<'a>(&self, root: &'a JsonValue) -> Option<&'a JsonValue> {
        self.select(root).into_iter().next()
    }

    /// Matched values rendered as display strings (see
    /// [`JsonValue::to_display_string`]).
    pub fn select_values(&self, root: &JsonValue) -> Vec<String> {
        self.select(root)
            .into_iter()
            .map(JsonValue::to_display_string)
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parse;

    fn feed() -> JsonValue {
        parse(
            r#"{
              "updated": "10:00",
              "stations": [
                {"id": 17, "name": "Fenian St", "bikes": 3},
                {"id": 42, "name": "Smithfield", "bikes": 11}
              ],
              "a/b": {"~": "tilde"}
            }"#,
        )
        .unwrap()
    }

    #[test]
    fn root_path() {
        let f = feed();
        assert_eq!(JsonPath::parse("").unwrap().select(&f), vec![&f]);
        assert_eq!(JsonPath::parse("/").unwrap().select(&f), vec![&f]);
    }

    #[test]
    fn member_and_index() {
        let f = feed();
        let p = JsonPath::parse("/stations/1/name").unwrap();
        assert_eq!(p.select_first(&f).unwrap().as_str(), Some("Smithfield"));
    }

    #[test]
    fn wildcard_over_array() {
        let f = feed();
        let p = JsonPath::parse("/stations/*/bikes").unwrap();
        assert_eq!(p.select_values(&f), vec!["3", "11"]);
    }

    #[test]
    fn wildcard_over_object() {
        let v = parse(r#"{"a": 1, "b": 2}"#).unwrap();
        let p = JsonPath::parse("/*").unwrap();
        assert_eq!(p.select_values(&v), vec!["1", "2"]);
    }

    #[test]
    fn rfc6901_escapes() {
        let f = feed();
        let p = JsonPath::parse("/a~1b/~0").unwrap();
        assert_eq!(p.select_first(&f).unwrap().as_str(), Some("tilde"));
    }

    #[test]
    fn missing_paths_select_nothing() {
        let f = feed();
        assert!(JsonPath::parse("/nope").unwrap().select(&f).is_empty());
        assert!(JsonPath::parse("/stations/9")
            .unwrap()
            .select(&f)
            .is_empty());
        assert!(JsonPath::parse("/updated/deeper")
            .unwrap()
            .select(&f)
            .is_empty());
    }

    #[test]
    fn parse_errors() {
        assert!(JsonPath::parse("stations").is_err());
        assert!(JsonPath::parse("/a~2b").is_err());
        assert!(JsonPath::parse("/a~").is_err());
    }

    #[test]
    fn numeric_object_keys_beat_indices() {
        let v = parse(r#"{"0": "zero"}"#).unwrap();
        let p = JsonPath::parse("/0").unwrap();
        assert_eq!(p.select_first(&v).unwrap().as_str(), Some("zero"));
    }
}
