//! JSON parse errors with positions.

use std::fmt;

/// A JSON parse error at a 1-based line/column.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct JsonError {
    /// Human-readable description.
    pub message: String,
    /// 1-based line.
    pub line: u32,
    /// 1-based column.
    pub column: u32,
}

impl JsonError {
    /// Creates an error.
    pub fn new(message: impl Into<String>, line: u32, column: u32) -> Self {
        Self {
            message: message.into(),
            line,
            column,
        }
    }
}

impl fmt::Display for JsonError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "JSON error at {}:{}: {}",
            self.line, self.column, self.message
        )
    }
}

impl std::error::Error for JsonError {}
