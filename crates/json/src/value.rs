//! Owned JSON value model.

use std::fmt;

/// A JSON value. Object member order is preserved (feeds are order-stable
/// and tests compare serialized output).
#[derive(Debug, Clone, PartialEq)]
pub enum JsonValue {
    /// `null`.
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// Any JSON number. Stored as `f64`, like most dynamic JSON models;
    /// integers up to 2^53 roundtrip exactly.
    Number(f64),
    /// A string.
    String(String),
    /// An array.
    Array(Vec<JsonValue>),
    /// An object with member order preserved.
    Object(Vec<(String, JsonValue)>),
}

impl JsonValue {
    /// Object member lookup (first match).
    pub fn get(&self, key: &str) -> Option<&JsonValue> {
        match self {
            JsonValue::Object(members) => members.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// Array element lookup.
    pub fn index(&self, i: usize) -> Option<&JsonValue> {
        match self {
            JsonValue::Array(items) => items.get(i),
            _ => None,
        }
    }

    /// Borrow as `&str` if this is a string.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            JsonValue::String(s) => Some(s),
            _ => None,
        }
    }

    /// The numeric value, if this is a number.
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            JsonValue::Number(n) => Some(*n),
            _ => None,
        }
    }

    /// The value as an integer if it is a number with an exact integral value.
    pub fn as_i64(&self) -> Option<i64> {
        match self {
            JsonValue::Number(n) if n.fract() == 0.0 && n.abs() <= 2f64.powi(53) => Some(*n as i64),
            _ => None,
        }
    }

    /// The boolean value, if this is a bool.
    pub fn as_bool(&self) -> Option<bool> {
        match self {
            JsonValue::Bool(b) => Some(*b),
            _ => None,
        }
    }

    /// Borrow as an array slice.
    pub fn as_array(&self) -> Option<&[JsonValue]> {
        match self {
            JsonValue::Array(items) => Some(items),
            _ => None,
        }
    }

    /// Borrow as object members.
    pub fn as_object(&self) -> Option<&[(String, JsonValue)]> {
        match self {
            JsonValue::Object(members) => Some(members),
            _ => None,
        }
    }

    /// Whether this is `null`.
    pub fn is_null(&self) -> bool {
        matches!(self, JsonValue::Null)
    }

    /// A loose string rendering used by the ingest layer: strings are
    /// returned verbatim, scalars via their JSON form, composites via
    /// compact JSON.
    pub fn to_display_string(&self) -> String {
        match self {
            JsonValue::String(s) => s.clone(),
            other => other.to_json(),
        }
    }

    /// Compact JSON serialization.
    pub fn to_json(&self) -> String {
        let mut out = String::new();
        crate::writer::write_compact(self, &mut out);
        out
    }

    /// Pretty JSON serialization with two-space indentation.
    pub fn to_json_pretty(&self) -> String {
        let mut out = String::new();
        crate::writer::write_pretty(self, 0, &mut out);
        out
    }

    /// Convenience object constructor.
    pub fn object(members: Vec<(&str, JsonValue)>) -> JsonValue {
        JsonValue::Object(
            members
                .into_iter()
                .map(|(k, v)| (k.to_string(), v))
                .collect(),
        )
    }

    /// Convenience string constructor.
    pub fn string(s: impl Into<String>) -> JsonValue {
        JsonValue::String(s.into())
    }

    /// Convenience number constructor.
    pub fn number(n: impl Into<f64>) -> JsonValue {
        JsonValue::Number(n.into())
    }
}

impl fmt::Display for JsonValue {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.to_json())
    }
}

impl From<&str> for JsonValue {
    fn from(s: &str) -> Self {
        JsonValue::String(s.to_string())
    }
}

impl From<f64> for JsonValue {
    fn from(n: f64) -> Self {
        JsonValue::Number(n)
    }
}

impl From<i64> for JsonValue {
    fn from(n: i64) -> Self {
        JsonValue::Number(n as f64)
    }
}

impl From<bool> for JsonValue {
    fn from(b: bool) -> Self {
        JsonValue::Bool(b)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn accessors() {
        let v = JsonValue::object(vec![
            ("name", "Fenian St".into()),
            ("bikes", 3i64.into()),
            ("open", true.into()),
            ("temp", 13.5.into()),
            ("tags", JsonValue::Array(vec!["a".into(), "b".into()])),
            ("nothing", JsonValue::Null),
        ]);
        assert_eq!(v.get("name").unwrap().as_str(), Some("Fenian St"));
        assert_eq!(v.get("bikes").unwrap().as_i64(), Some(3));
        assert_eq!(v.get("open").unwrap().as_bool(), Some(true));
        assert_eq!(v.get("temp").unwrap().as_f64(), Some(13.5));
        assert_eq!(v.get("temp").unwrap().as_i64(), None);
        assert_eq!(v.get("tags").unwrap().as_array().unwrap().len(), 2);
        assert!(v.get("nothing").unwrap().is_null());
        assert!(v.get("missing").is_none());
        assert_eq!(v.get("tags").unwrap().index(1).unwrap().as_str(), Some("b"));
    }

    #[test]
    fn display_string_forms() {
        assert_eq!(JsonValue::string("x").to_display_string(), "x");
        assert_eq!(JsonValue::Number(3.0).to_display_string(), "3");
        assert_eq!(JsonValue::Bool(false).to_display_string(), "false");
        assert_eq!(JsonValue::Null.to_display_string(), "null");
    }

    #[test]
    fn i64_bounds() {
        assert_eq!(JsonValue::Number(2f64.powi(53)).as_i64(), Some(1 << 53));
        assert_eq!(JsonValue::Number(2f64.powi(54)).as_i64(), None);
        assert_eq!(JsonValue::Number(-7.0).as_i64(), Some(-7));
    }
}
