//! Documented per-record storage overhead constants.
//!
//! Table 4 of the paper compares on-disk sizes of the same logical DWARF cube
//! under four physical schemas. The *differences* between the schemas come
//! from structural choices (edge tables vs `set<int>`, extra index column
//! families), but every engine also pays a fixed tax per stored record. We
//! model those taxes with constants chosen from the publicly documented
//! storage formats and keep them in one place so they are auditable:
//!
//! * **InnoDB (compact row format)** — 5-byte record header + 6-byte
//!   transaction id + 7-byte roll pointer per clustered-index record, plus a
//!   variable-length column map and page directory amortization. We charge
//!   [`RELATIONAL_ROW_HEADER`] per row and [`RELATIONAL_COLUMN_OVERHEAD`] per
//!   column, and [`RELATIONAL_INDEX_ENTRY_OVERHEAD`] per secondary-index
//!   entry.
//! * **Cassandra (pre-3.0 SSTable format, contemporary with the paper)** —
//!   each row repeats per-cell metadata: column name, an 8-byte timestamp and
//!   flags. We charge [`NOSQL_ROW_HEADER`] per partition row,
//!   [`NOSQL_CELL_OVERHEAD`] per cell (column value), and
//!   [`NOSQL_SET_ELEMENT_OVERHEAD`] per element of a collection column —
//!   collections are stored as one cell per element, but *without* a separate
//!   row/partition header, which is exactly why `set<int>` beats an edge
//!   table.
//!
//! These constants affect absolute MB figures only; the orderings in Table 4
//! are produced by record counts and schema structure.

/// Per-row header charged by the relational heap/clustered index
/// (InnoDB compact format: 5B header + 6B trx id + 7B roll ptr + ~2B of
/// page-directory amortization).
pub const RELATIONAL_ROW_HEADER: u64 = 20;

/// Per-column overhead in a relational row (null bitmap share + var-len map).
pub const RELATIONAL_COLUMN_OVERHEAD: u64 = 1;

/// Per-entry overhead of a relational secondary index (record header + page
/// amortization around the key + primary-key pointer it stores).
pub const RELATIONAL_INDEX_ENTRY_OVERHEAD: u64 = 12;

/// Per-partition-row header in the NoSQL engine (partition key hash + row
/// flags + liveness timestamp).
pub const NOSQL_ROW_HEADER: u64 = 16;

/// Per-cell overhead in the NoSQL engine (column index + 8B timestamp + flag).
pub const NOSQL_CELL_OVERHEAD: u64 = 11;

/// Per-element overhead inside a collection (`set<int>`) cell. Collections
/// serialize one sub-cell per element but share the row header, making them
/// far cheaper than one edge-row per relationship.
pub const NOSQL_SET_ELEMENT_OVERHEAD: u64 = 3;

/// Per-entry overhead of a NoSQL secondary index entry (the hidden index
/// column family stores `indexed value -> set<row id>`; each posting pays a
/// set-element overhead plus timestamp bookkeeping).
pub const NOSQL_INDEX_ENTRY_OVERHEAD: u64 = 8;

#[cfg(test)]
mod tests {
    use super::*;

    /// The relational edge-table representation of one node->cell link must
    /// cost more than the NoSQL set element: that inequality is the paper's
    /// §5.1 explanation for MySQL-DWARF losing Table 4, so it must hold by
    /// construction.
    #[test]
    fn edge_row_costs_more_than_set_element() {
        let edge_row = RELATIONAL_ROW_HEADER + 2 * RELATIONAL_COLUMN_OVERHEAD;
        let set_element = NOSQL_SET_ELEMENT_OVERHEAD;
        assert!(edge_row > 4 * set_element);
    }

    /// Secondary-index entries must be nonzero in both engines, so index-heavy
    /// schemas (NoSQL-Min) measurably grow — the paper's stated reason its
    /// size exceeds NoSQL-DWARF.
    #[test]
    fn index_entries_are_charged() {
        // Compared against a runtime value so the assertion is not
        // constant-folded away if the constants change type.
        let zero = std::hint::black_box(0u64);
        assert!(RELATIONAL_INDEX_ENTRY_OVERHEAD > zero);
        assert!(NOSQL_INDEX_ENTRY_OVERHEAD > zero);
    }
}
