//! Column-run primitives for SSTable v3 data blocks.
//!
//! A v3 block stores its records column-major: one contiguous run per
//! column, each run independently encoded. This module owns the three
//! generic building blocks those runs are made of — packed bitmaps (null
//! and liveness masks, boolean columns), zig-zag delta varint runs
//! (integer columns and sequence numbers), and byte-string dictionaries
//! (low-cardinality text columns). The value-aware mapping from typed
//! cells onto these primitives lives in the table format (`sc-nosql`);
//! everything here is plain bytes.
//!
//! All decoders are hardened against corrupt input: lengths are validated
//! against the remaining buffer before any allocation, so a flipped size
//! byte surfaces as a [`DecodeError`], never as an unbounded allocation.

use crate::codec::{DecodeError, Decoder, Encoder};

/// A packed little-endian bitmap over `len` positions.
///
/// Bit `i` lives in byte `i / 8` at bit `i % 8`. The encoded form is the
/// raw packed bytes; the caller supplies `len` on decode (it is implied by
/// the surrounding run).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Bitmap {
    bits: Vec<u8>,
    len: usize,
}

impl Bitmap {
    /// An all-zero bitmap over `len` positions.
    pub fn new(len: usize) -> Bitmap {
        Bitmap {
            bits: vec![0u8; len.div_ceil(8)],
            len,
        }
    }

    /// Number of positions.
    pub fn len(&self) -> usize {
        self.len
    }

    /// Whether the bitmap covers zero positions.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Sets bit `i` (panics past the end — caller bug, not data).
    pub fn set(&mut self, i: usize) {
        assert!(i < self.len, "bitmap index {i} out of {}", self.len);
        self.bits[i / 8] |= 1 << (i % 8);
    }

    /// Reads bit `i`.
    pub fn get(&self, i: usize) -> bool {
        assert!(i < self.len, "bitmap index {i} out of {}", self.len);
        self.bits[i / 8] & (1 << (i % 8)) != 0
    }

    /// Count of set bits.
    pub fn count_ones(&self) -> usize {
        self.bits.iter().map(|b| b.count_ones() as usize).sum()
    }

    /// Appends the packed bytes (no length prefix — `len` is contextual).
    pub fn encode(&self, enc: &mut Encoder) {
        enc.put_raw(&self.bits);
    }

    /// Reads the packed bytes for a bitmap over `len` positions.
    pub fn decode(dec: &mut Decoder<'_>, len: usize) -> Result<Bitmap, DecodeError> {
        let bytes = dec.get_raw(len.div_ceil(8))?;
        Ok(Bitmap {
            bits: bytes.to_vec(),
            len,
        })
    }
}

/// Encodes `values` as a zig-zag delta run: the first value raw, every
/// later value as the signed difference from its predecessor. Sorted or
/// clustered runs (sequence numbers, sensor ids) shrink to one or two
/// bytes per value.
pub fn encode_i64_deltas(enc: &mut Encoder, values: &[i64]) {
    let mut prev = 0i64;
    for &v in values {
        enc.put_i64(v.wrapping_sub(prev));
        prev = v;
    }
}

/// Decodes `count` zig-zag delta values (inverse of [`encode_i64_deltas`]).
pub fn decode_i64_deltas(dec: &mut Decoder<'_>, count: usize) -> Result<Vec<i64>, DecodeError> {
    // A delta is at least one byte, so `count` beyond the remaining buffer
    // is corrupt — reject before allocating.
    if count > dec.remaining() {
        return Err(DecodeError::UnexpectedEof {
            wanted: "delta run",
        });
    }
    let mut out = Vec::with_capacity(count);
    let mut prev = 0i64;
    for _ in 0..count {
        prev = prev.wrapping_add(dec.get_i64()?);
        out.push(prev);
    }
    Ok(out)
}

/// A byte-string dictionary: distinct values in first-seen order plus one
/// code per row. Worth it when a column repeats a few station names or
/// categories thousands of times per block.
#[derive(Debug, Default)]
pub struct DictBuilder {
    values: Vec<Vec<u8>>,
    codes: Vec<u64>,
}

impl DictBuilder {
    /// An empty dictionary.
    pub fn new() -> DictBuilder {
        DictBuilder::default()
    }

    /// Appends one cell, interning its bytes.
    pub fn push(&mut self, value: &[u8]) {
        let code = match self.values.iter().position(|v| v == value) {
            Some(i) => i as u64,
            None => {
                self.values.push(value.to_vec());
                (self.values.len() - 1) as u64
            }
        };
        self.codes.push(code);
    }

    /// Distinct values interned so far.
    pub fn distinct(&self) -> usize {
        self.values.len()
    }

    /// Cells pushed so far.
    pub fn rows(&self) -> usize {
        self.codes.len()
    }

    /// Encoded size estimate: dictionary bytes plus one-byte-ish codes.
    pub fn encoded_size(&self) -> usize {
        let dict: usize = self.values.iter().map(|v| v.len() + 2).sum();
        dict + self.codes.len() + 2
    }

    /// Writes the run: distinct count, the distinct values (length
    /// prefixed), then one varint code per row.
    pub fn encode(&self, enc: &mut Encoder) {
        enc.put_u64(self.values.len() as u64);
        for v in &self.values {
            enc.put_bytes(v);
        }
        for &c in &self.codes {
            enc.put_u64(c);
        }
    }
}

/// Decodes a dictionary run of `rows` cells back into per-row byte strings.
pub fn decode_dict(dec: &mut Decoder<'_>, rows: usize) -> Result<Vec<Vec<u8>>, DecodeError> {
    let distinct = dec.get_u64()? as usize;
    // Each distinct value costs at least its one-byte length prefix.
    if distinct > dec.remaining() {
        return Err(DecodeError::UnexpectedEof {
            wanted: "dictionary values",
        });
    }
    let mut values = Vec::with_capacity(distinct);
    for _ in 0..distinct {
        values.push(dec.get_bytes()?.to_vec());
    }
    if rows > dec.remaining() {
        return Err(DecodeError::UnexpectedEof {
            wanted: "dictionary codes",
        });
    }
    let mut out = Vec::with_capacity(rows);
    for _ in 0..rows {
        let code = dec.get_u64()? as usize;
        let v = values.get(code).ok_or(DecodeError::BadTag {
            tag: code.min(u8::MAX as usize) as u8,
            context: "dictionary code out of range",
        })?;
        out.push(v.clone());
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bitmap_round_trip() {
        let mut b = Bitmap::new(13);
        for i in [0usize, 3, 8, 12] {
            b.set(i);
        }
        assert_eq!(b.count_ones(), 4);
        let mut enc = Encoder::new();
        b.encode(&mut enc);
        assert_eq!(enc.len(), 2, "13 bits pack into 2 bytes");
        let mut dec = Decoder::new(enc.bytes());
        let back = Bitmap::decode(&mut dec, 13).unwrap();
        assert_eq!(back, b);
        assert!(back.get(12) && !back.get(11));
    }

    #[test]
    fn bitmap_decode_rejects_truncation() {
        let mut dec = Decoder::new(&[0xFF]);
        assert!(Bitmap::decode(&mut dec, 64).is_err());
    }

    #[test]
    fn delta_round_trip_and_compression() {
        let values: Vec<i64> = (0..200).map(|i| 1_000_000 + i * 3).collect();
        let mut enc = Encoder::new();
        encode_i64_deltas(&mut enc, &values);
        // First value is several bytes, the rest one byte each.
        assert!(enc.len() < 220, "delta run too large: {}", enc.len());
        let mut dec = Decoder::new(enc.bytes());
        assert_eq!(decode_i64_deltas(&mut dec, 200).unwrap(), values);
        assert!(dec.is_exhausted());
    }

    #[test]
    fn delta_handles_negatives_and_extremes() {
        let values = vec![i64::MIN, i64::MAX, -1, 0, 42];
        let mut enc = Encoder::new();
        encode_i64_deltas(&mut enc, &values);
        let mut dec = Decoder::new(enc.bytes());
        assert_eq!(decode_i64_deltas(&mut dec, 5).unwrap(), values);
    }

    #[test]
    fn delta_rejects_oversized_count() {
        let mut dec = Decoder::new(&[0x02, 0x04]);
        assert!(decode_i64_deltas(&mut dec, 1 << 40).is_err());
    }

    #[test]
    fn dict_round_trip() {
        let mut d = DictBuilder::new();
        for name in ["north", "south", "north", "north", "east", "south"] {
            d.push(name.as_bytes());
        }
        assert_eq!(d.distinct(), 3);
        assert_eq!(d.rows(), 6);
        let mut enc = Encoder::new();
        d.encode(&mut enc);
        let mut dec = Decoder::new(enc.bytes());
        let back = decode_dict(&mut dec, 6).unwrap();
        let want: Vec<Vec<u8>> = ["north", "south", "north", "north", "east", "south"]
            .iter()
            .map(|s| s.as_bytes().to_vec())
            .collect();
        assert_eq!(back, want);
    }

    #[test]
    fn dict_rejects_out_of_range_code_and_bad_counts() {
        let mut enc = Encoder::new();
        enc.put_u64(1);
        enc.put_bytes(b"only");
        enc.put_u64(7); // code past the dictionary
        let mut dec = Decoder::new(enc.bytes());
        assert!(decode_dict(&mut dec, 1).is_err());

        // Distinct count far beyond the buffer must not allocate.
        let mut enc = Encoder::new();
        enc.put_u64(u32::MAX as u64);
        let mut dec = Decoder::new(enc.bytes());
        assert!(decode_dict(&mut dec, 1).is_err());
    }
}
