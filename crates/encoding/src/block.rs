//! Fixed-target data-block codec for block-based tables (SSTable v2).
//!
//! A block is a run of `(key, payload)` records, each length-prefixed,
//! packed until the block reaches a target size (~4 KiB by default). The
//! builder reports the block's first key and record count so the caller can
//! maintain a sparse index — one index entry per *block* instead of per
//! *record*, which is what shrinks the resident index by orders of
//! magnitude on large tables.
//!
//! The codec does not frame or checksum the block itself; the table format
//! owns placement (offset/len) and integrity (per-block CRC in its meta
//! region).

use crate::codec::{DecodeError, Decoder, Encoder};

/// Default block target: the classic 4 KiB data-block size.
pub const BLOCK_TARGET_BYTES: usize = 4096;

/// Accumulates `(key, payload)` records into one block.
#[derive(Debug)]
pub struct BlockBuilder {
    enc: Encoder,
    first_key: Vec<u8>,
    count: u64,
    target: usize,
}

/// A closed block ready to be written, plus the metadata the sparse index
/// needs.
#[derive(Debug)]
pub struct FinishedBlock {
    /// The packed record bytes.
    pub bytes: Vec<u8>,
    /// Key of the first record.
    pub first_key: Vec<u8>,
    /// Number of records in the block.
    pub count: u64,
}

impl BlockBuilder {
    /// Creates a builder that reports itself full once `target` bytes are
    /// packed (records are never split; a block may exceed the target by
    /// one record).
    pub fn new(target: usize) -> BlockBuilder {
        BlockBuilder {
            enc: Encoder::new(),
            first_key: Vec::new(),
            count: 0,
            target: target.max(1),
        }
    }

    /// Appends one record.
    pub fn push(&mut self, key: &[u8], payload: &[u8]) {
        if self.count == 0 {
            self.first_key = key.to_vec();
        }
        self.enc.put_bytes(key);
        self.enc.put_bytes(payload);
        self.count += 1;
    }

    /// Whether the block reached its target size.
    pub fn is_full(&self) -> bool {
        self.enc.len() >= self.target
    }

    /// Whether no record has been pushed yet.
    pub fn is_empty(&self) -> bool {
        self.count == 0
    }

    /// Packed bytes so far.
    pub fn len(&self) -> usize {
        self.enc.len()
    }

    /// Closes the block.
    pub fn finish(self) -> FinishedBlock {
        FinishedBlock {
            bytes: self.enc.into_bytes(),
            first_key: self.first_key,
            count: self.count,
        }
    }
}

/// Iterates the `(key, payload)` records of one block.
///
/// Yields `Err` once (then stops) if the block bytes are truncated or
/// malformed — callers verify the block CRC first, so an error here means a
/// logic bug or an unchecked read.
#[derive(Debug)]
pub struct BlockIter<'a> {
    dec: Decoder<'a>,
    failed: bool,
}

impl<'a> BlockIter<'a> {
    /// Creates an iterator over packed block bytes.
    pub fn new(bytes: &'a [u8]) -> BlockIter<'a> {
        BlockIter {
            dec: Decoder::new(bytes),
            failed: false,
        }
    }
}

impl<'a> Iterator for BlockIter<'a> {
    type Item = Result<(&'a [u8], &'a [u8]), DecodeError>;

    fn next(&mut self) -> Option<Self::Item> {
        if self.failed || self.dec.is_exhausted() {
            return None;
        }
        let record = (|| {
            let key = self.dec.get_bytes()?;
            let payload = self.dec.get_bytes()?;
            Ok((key, payload))
        })();
        if record.is_err() {
            self.failed = true;
        }
        Some(record)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn build_and_iterate() {
        let mut b = BlockBuilder::new(BLOCK_TARGET_BYTES);
        assert!(b.is_empty());
        for i in 0..10u8 {
            b.push(&[i], &[i, i, i]);
        }
        let fin = b.finish();
        assert_eq!(fin.first_key, vec![0]);
        assert_eq!(fin.count, 10);
        let records: Vec<_> = BlockIter::new(&fin.bytes)
            .map(|r| r.unwrap())
            .map(|(k, p)| (k.to_vec(), p.to_vec()))
            .collect();
        assert_eq!(records.len(), 10);
        assert_eq!(records[3], (vec![3], vec![3, 3, 3]));
    }

    #[test]
    fn fills_at_target() {
        let mut b = BlockBuilder::new(64);
        let payload = vec![7u8; 30];
        b.push(b"a", &payload);
        assert!(!b.is_full());
        b.push(b"b", &payload);
        assert!(b.is_full());
    }

    #[test]
    fn truncated_block_yields_one_error() {
        let mut b = BlockBuilder::new(BLOCK_TARGET_BYTES);
        b.push(b"key", b"payload");
        b.push(b"key2", b"payload2");
        let fin = b.finish();
        let cut = &fin.bytes[..fin.bytes.len() - 3];
        let mut iter = BlockIter::new(cut);
        assert!(iter.next().unwrap().is_ok());
        assert!(iter.next().unwrap().is_err());
        assert!(iter.next().is_none());
    }
}
