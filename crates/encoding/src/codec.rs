//! Length-prefixed record encoder/decoder used by the storage engines.
//!
//! Records written by [`Encoder`] are read back by [`Decoder`]; each engine
//! layers its own row/cell format on top. All multi-byte fixed-width values
//! are little-endian; variable-width values use [`crate::varint`].

use crate::varint;
use std::fmt;

/// Error produced when decoding a corrupt or truncated record.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum DecodeError {
    /// The buffer ended before the value was complete.
    UnexpectedEof {
        /// What the decoder was trying to read.
        wanted: &'static str,
    },
    /// A varint was malformed (overlong or overflowing).
    BadVarint,
    /// A string field did not contain valid UTF-8.
    BadUtf8,
    /// A tag/enum discriminant had no known meaning.
    BadTag {
        /// The unknown discriminant value.
        tag: u8,
        /// Context for error messages.
        context: &'static str,
    },
}

impl fmt::Display for DecodeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            DecodeError::UnexpectedEof { wanted } => {
                write!(f, "unexpected end of buffer while reading {wanted}")
            }
            DecodeError::BadVarint => write!(f, "malformed varint"),
            DecodeError::BadUtf8 => write!(f, "string field is not valid UTF-8"),
            DecodeError::BadTag { tag, context } => {
                write!(f, "unknown tag {tag} while decoding {context}")
            }
        }
    }
}

impl std::error::Error for DecodeError {}

/// Append-only encoder over a byte buffer.
#[derive(Debug, Default)]
pub struct Encoder {
    buf: Vec<u8>,
}

impl Encoder {
    /// Creates an empty encoder.
    pub fn new() -> Self {
        Self { buf: Vec::new() }
    }

    /// Creates an encoder with `cap` bytes pre-allocated.
    pub fn with_capacity(cap: usize) -> Self {
        Self {
            buf: Vec::with_capacity(cap),
        }
    }

    /// Consumes the encoder, returning the encoded bytes.
    pub fn into_bytes(self) -> Vec<u8> {
        self.buf
    }

    /// Borrows the bytes written so far.
    pub fn bytes(&self) -> &[u8] {
        &self.buf
    }

    /// Number of bytes written so far.
    pub fn len(&self) -> usize {
        self.buf.len()
    }

    /// Whether nothing has been written yet.
    pub fn is_empty(&self) -> bool {
        self.buf.is_empty()
    }

    /// Empties the buffer, keeping its allocation (scratch-buffer reuse in
    /// per-record hot loops).
    pub fn clear(&mut self) {
        self.buf.clear();
    }

    /// Writes a single raw byte.
    pub fn put_u8(&mut self, v: u8) -> &mut Self {
        self.buf.push(v);
        self
    }

    /// Writes a bool as one byte (0 or 1).
    pub fn put_bool(&mut self, v: bool) -> &mut Self {
        self.put_u8(v as u8)
    }

    /// Writes a fixed-width little-endian `u32`.
    pub fn put_u32_fixed(&mut self, v: u32) -> &mut Self {
        self.buf.extend_from_slice(&v.to_le_bytes());
        self
    }

    /// Writes a fixed-width little-endian `u64`.
    pub fn put_u64_fixed(&mut self, v: u64) -> &mut Self {
        self.buf.extend_from_slice(&v.to_le_bytes());
        self
    }

    /// Writes an unsigned varint.
    pub fn put_u64(&mut self, v: u64) -> &mut Self {
        varint::write_u64(&mut self.buf, v);
        self
    }

    /// Writes a `u32` as a varint.
    pub fn put_u32(&mut self, v: u32) -> &mut Self {
        self.put_u64(u64::from(v))
    }

    /// Writes a signed zig-zag varint.
    pub fn put_i64(&mut self, v: i64) -> &mut Self {
        varint::write_i64(&mut self.buf, v);
        self
    }

    /// Writes an `f64` as its IEEE-754 little-endian bits.
    pub fn put_f64(&mut self, v: f64) -> &mut Self {
        self.buf.extend_from_slice(&v.to_le_bytes());
        self
    }

    /// Writes a length-prefixed byte slice.
    pub fn put_bytes(&mut self, v: &[u8]) -> &mut Self {
        self.put_u64(v.len() as u64);
        self.buf.extend_from_slice(v);
        self
    }

    /// Writes a length-prefixed UTF-8 string.
    pub fn put_str(&mut self, v: &str) -> &mut Self {
        self.put_bytes(v.as_bytes())
    }

    /// Writes raw bytes with no length prefix (caller knows the framing).
    pub fn put_raw(&mut self, v: &[u8]) -> &mut Self {
        self.buf.extend_from_slice(v);
        self
    }
}

/// Cursor-style decoder over a byte slice.
#[derive(Debug, Clone)]
pub struct Decoder<'a> {
    buf: &'a [u8],
    pos: usize,
}

impl<'a> Decoder<'a> {
    /// Creates a decoder positioned at the start of `buf`.
    pub fn new(buf: &'a [u8]) -> Self {
        Self { buf, pos: 0 }
    }

    /// Bytes not yet consumed.
    pub fn remaining(&self) -> usize {
        self.buf.len() - self.pos
    }

    /// Whether the whole buffer has been consumed.
    pub fn is_exhausted(&self) -> bool {
        self.remaining() == 0
    }

    /// Current byte offset from the start of the buffer.
    pub fn position(&self) -> usize {
        self.pos
    }

    fn take(&mut self, n: usize, wanted: &'static str) -> Result<&'a [u8], DecodeError> {
        if self.remaining() < n {
            return Err(DecodeError::UnexpectedEof { wanted });
        }
        let out = &self.buf[self.pos..self.pos + n];
        self.pos += n;
        Ok(out)
    }

    /// Reads one raw byte.
    pub fn get_u8(&mut self) -> Result<u8, DecodeError> {
        Ok(self.take(1, "u8")?[0])
    }

    /// Reads a bool written by [`Encoder::put_bool`].
    pub fn get_bool(&mut self) -> Result<bool, DecodeError> {
        match self.get_u8()? {
            0 => Ok(false),
            1 => Ok(true),
            tag => Err(DecodeError::BadTag {
                tag,
                context: "bool",
            }),
        }
    }

    /// Reads a fixed-width little-endian `u32`.
    pub fn get_u32_fixed(&mut self) -> Result<u32, DecodeError> {
        let b = self.take(4, "u32")?;
        Ok(u32::from_le_bytes([b[0], b[1], b[2], b[3]]))
    }

    /// Reads a fixed-width little-endian `u64`.
    pub fn get_u64_fixed(&mut self) -> Result<u64, DecodeError> {
        let b = self.take(8, "u64")?;
        Ok(u64::from_le_bytes([
            b[0], b[1], b[2], b[3], b[4], b[5], b[6], b[7],
        ]))
    }

    /// Reads an unsigned varint.
    pub fn get_u64(&mut self) -> Result<u64, DecodeError> {
        let (v, n) = varint::read_u64(&self.buf[self.pos..]).ok_or(DecodeError::BadVarint)?;
        self.pos += n;
        Ok(v)
    }

    /// Reads a `u32` varint, rejecting values that overflow `u32`.
    pub fn get_u32(&mut self) -> Result<u32, DecodeError> {
        let v = self.get_u64()?;
        u32::try_from(v).map_err(|_| DecodeError::BadVarint)
    }

    /// Reads a signed zig-zag varint.
    pub fn get_i64(&mut self) -> Result<i64, DecodeError> {
        let (v, n) = varint::read_i64(&self.buf[self.pos..]).ok_or(DecodeError::BadVarint)?;
        self.pos += n;
        Ok(v)
    }

    /// Reads an `f64` written by [`Encoder::put_f64`].
    pub fn get_f64(&mut self) -> Result<f64, DecodeError> {
        let b = self.take(8, "f64")?;
        Ok(f64::from_le_bytes([
            b[0], b[1], b[2], b[3], b[4], b[5], b[6], b[7],
        ]))
    }

    /// Reads a length-prefixed byte slice.
    pub fn get_bytes(&mut self) -> Result<&'a [u8], DecodeError> {
        let len = self.get_u64()? as usize;
        self.take(len, "bytes body")
    }

    /// Reads a length-prefixed UTF-8 string.
    pub fn get_str(&mut self) -> Result<&'a str, DecodeError> {
        let raw = self.get_bytes()?;
        std::str::from_utf8(raw).map_err(|_| DecodeError::BadUtf8)
    }

    /// Reads `n` raw bytes with no length prefix.
    pub fn get_raw(&mut self, n: usize) -> Result<&'a [u8], DecodeError> {
        self.take(n, "raw bytes")
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    #[test]
    fn mixed_roundtrip() {
        let mut enc = Encoder::new();
        enc.put_u8(7)
            .put_bool(true)
            .put_u32_fixed(0xdead_beef)
            .put_u64(300)
            .put_i64(-42)
            .put_f64(3.5)
            .put_str("Fenian St")
            .put_bytes(&[1, 2, 3]);
        let bytes = enc.into_bytes();
        let mut dec = Decoder::new(&bytes);
        assert_eq!(dec.get_u8().unwrap(), 7);
        assert!(dec.get_bool().unwrap());
        assert_eq!(dec.get_u32_fixed().unwrap(), 0xdead_beef);
        assert_eq!(dec.get_u64().unwrap(), 300);
        assert_eq!(dec.get_i64().unwrap(), -42);
        assert_eq!(dec.get_f64().unwrap(), 3.5);
        assert_eq!(dec.get_str().unwrap(), "Fenian St");
        assert_eq!(dec.get_bytes().unwrap(), &[1, 2, 3]);
        assert!(dec.is_exhausted());
    }

    #[test]
    fn eof_errors_name_the_field() {
        let mut dec = Decoder::new(&[]);
        assert_eq!(
            dec.get_u32_fixed(),
            Err(DecodeError::UnexpectedEof { wanted: "u32" })
        );
    }

    #[test]
    fn bool_rejects_junk() {
        let mut dec = Decoder::new(&[2]);
        assert!(matches!(
            dec.get_bool(),
            Err(DecodeError::BadTag { tag: 2, .. })
        ));
    }

    #[test]
    fn string_rejects_invalid_utf8() {
        let mut enc = Encoder::new();
        enc.put_bytes(&[0xff, 0xfe]);
        let bytes = enc.into_bytes();
        let mut dec = Decoder::new(&bytes);
        assert_eq!(dec.get_str(), Err(DecodeError::BadUtf8));
    }

    #[test]
    fn u32_varint_rejects_overflow() {
        let mut enc = Encoder::new();
        enc.put_u64(u64::from(u32::MAX) + 1);
        let bytes = enc.into_bytes();
        let mut dec = Decoder::new(&bytes);
        assert_eq!(dec.get_u32(), Err(DecodeError::BadVarint));
    }

    #[test]
    fn truncated_string_body_is_eof() {
        let mut enc = Encoder::new();
        enc.put_str("hello");
        let bytes = enc.into_bytes();
        let mut dec = Decoder::new(&bytes[..3]);
        assert!(matches!(
            dec.get_str(),
            Err(DecodeError::UnexpectedEof { .. })
        ));
    }

    // Deterministic randomized sweeps (seeded xorshift, no proptest — the
    // build is offline).

    #[test]
    fn string_roundtrip_random() {
        let mut rng = crate::Rng::new(0xC0DE);
        for _ in 0..1024 {
            // Mix plain ASCII with multi-byte UTF-8 scalars.
            let len = rng.gen_range(65) as usize;
            let s: String = (0..len)
                .map(|_| match rng.gen_range(4) {
                    0 => 'é',
                    1 => '€',
                    2 => '🚲',
                    _ => (b' ' + rng.gen_range(95) as u8) as char,
                })
                .collect();
            let mut enc = Encoder::new();
            enc.put_str(&s);
            let bytes = enc.into_bytes();
            let mut dec = Decoder::new(&bytes);
            assert_eq!(dec.get_str().unwrap(), s.as_str());
            assert!(dec.is_exhausted());
        }
    }

    #[test]
    fn numeric_sequence_roundtrip_random() {
        let mut rng = crate::Rng::new(0xC0DF);
        for _ in 0..512 {
            let vals: Vec<i64> = (0..rng.gen_range(32)).map(|_| rng.gen_i64()).collect();
            let mut enc = Encoder::new();
            enc.put_u64(vals.len() as u64);
            for &v in &vals {
                enc.put_i64(v);
            }
            let bytes = enc.into_bytes();
            let mut dec = Decoder::new(&bytes);
            let n = dec.get_u64().unwrap() as usize;
            let mut back = Vec::with_capacity(n);
            for _ in 0..n {
                back.push(dec.get_i64().unwrap());
            }
            assert_eq!(back, vals);
            assert!(dec.is_exhausted());
        }
    }
}
