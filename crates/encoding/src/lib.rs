//! # sc-encoding
//!
//! Byte-level encoding primitives shared by every smartcube storage engine.
//!
//! Both the columnar NoSQL engine (`sc-nosql`) and the relational engine
//! (`sc-relational`) serialize records to real bytes so that the paper's
//! `size_as_mb` measurements (Table 4) are derived from actual serialized
//! data rather than formulas. This crate provides:
//!
//! * [`varint`] — LEB128-style unsigned varints and zig-zag signed varints,
//! * [`codec`] — a small [`codec::Encoder`]/[`codec::Decoder`]
//!   pair with length-prefixed strings and byte slices,
//! * [`block`] — the fixed-target data-block codec SSTable v2 packs
//!   records into,
//! * [`columnar`] — the column-run primitives (packed bitmaps, zig-zag
//!   delta runs, byte-string dictionaries) SSTable v3 builds its
//!   column-major blocks from,
//! * [`bloom`] — Bloom filters answering SSTable v2 point misses without
//!   touching data blocks,
//! * [`checksum`] — a from-scratch CRC-32 (IEEE) used by commit logs and
//!   SSTable footers,
//! * [`hash`] — FNV-1a hashing and a [`BuildHasher`](std::hash::BuildHasher)
//!   for fast integer-keyed maps,
//! * [`bytesize`] — human-readable byte quantities (the paper reports sizes
//!   in MB),
//! * [`overhead`] — the documented per-record overhead constants that model
//!   InnoDB and Cassandra storage formats,
//! * [`rng`] — the workspace's deterministic xorshift64* PRNG (no `rand`
//!   dependency; datasets and randomized tests are bit-identical per seed).

pub mod block;
pub mod bloom;
pub mod bytesize;
pub mod checksum;
pub mod codec;
pub mod columnar;
pub mod hash;
pub mod overhead;
pub mod rng;
pub mod varint;

pub use block::{BlockBuilder, BlockIter, FinishedBlock, BLOCK_TARGET_BYTES};
pub use bloom::Bloom;
pub use bytesize::ByteSize;
pub use checksum::Crc32;
pub use codec::{DecodeError, Decoder, Encoder};
pub use columnar::{decode_dict, decode_i64_deltas, encode_i64_deltas, Bitmap, DictBuilder};
pub use hash::{fnv1a_64, FnvBuildHasher, FnvHashMap, FnvHashSet};
pub use rng::Rng;
