//! Byte quantities with the paper's MB-centric reporting conventions.
//!
//! Table 4 reports sizes as whole megabytes with `< 1` for sub-MB cubes; the
//! [`ByteSize::paper_mb`] formatter reproduces exactly that convention so the
//! `repro` binary prints rows shaped like the paper's.

use std::fmt;
use std::iter::Sum;
use std::ops::{Add, AddAssign};

/// A quantity of bytes.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct ByteSize(pub u64);

impl ByteSize {
    /// Zero bytes.
    pub const ZERO: ByteSize = ByteSize(0);

    /// Constructs from a raw byte count.
    pub fn bytes(n: u64) -> Self {
        ByteSize(n)
    }

    /// Constructs from mebibytes.
    pub fn mib(n: u64) -> Self {
        ByteSize(n * 1024 * 1024)
    }

    /// Raw byte count.
    pub fn as_bytes(self) -> u64 {
        self.0
    }

    /// Size in (binary) megabytes as a float.
    pub fn as_mb(self) -> f64 {
        self.0 as f64 / (1024.0 * 1024.0)
    }

    /// Rounded whole-MB figure matching the paper's `size_as_mb` column.
    pub fn as_mb_rounded(self) -> u64 {
        (self.as_mb()).round() as u64
    }

    /// The paper's Table 4 cell format: `< 1` below one MB, else whole MB.
    pub fn paper_mb(self) -> String {
        if self.0 > 0 && self.as_mb() < 1.0 {
            "< 1".to_string()
        } else {
            format!("{}", self.as_mb_rounded())
        }
    }
}

impl Add for ByteSize {
    type Output = ByteSize;
    fn add(self, rhs: ByteSize) -> ByteSize {
        ByteSize(self.0 + rhs.0)
    }
}

impl AddAssign for ByteSize {
    fn add_assign(&mut self, rhs: ByteSize) {
        self.0 += rhs.0;
    }
}

impl Sum for ByteSize {
    fn sum<I: Iterator<Item = ByteSize>>(iter: I) -> ByteSize {
        iter.fold(ByteSize::ZERO, Add::add)
    }
}

impl fmt::Display for ByteSize {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        const UNITS: [(&str, u64); 4] = [
            ("GiB", 1 << 30),
            ("MiB", 1 << 20),
            ("KiB", 1 << 10),
            ("B", 1),
        ];
        for (name, scale) in UNITS {
            if self.0 >= scale {
                return write!(f, "{:.2} {}", self.0 as f64 / scale as f64, name);
            }
        }
        write!(f, "0 B")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_format_matches_table4_conventions() {
        assert_eq!(ByteSize::bytes(500_000).paper_mb(), "< 1");
        assert_eq!(ByteSize::mib(182).paper_mb(), "182");
        assert_eq!(ByteSize::ZERO.paper_mb(), "0");
        // Rounds, does not truncate: 2.6 MiB -> "3".
        assert_eq!(
            ByteSize::bytes(2 * 1024 * 1024 + 640 * 1024).paper_mb(),
            "3"
        );
    }

    #[test]
    fn arithmetic_and_sum() {
        let total: ByteSize = [ByteSize::bytes(10), ByteSize::bytes(20)].into_iter().sum();
        assert_eq!(total.as_bytes(), 30);
        let mut s = ByteSize::bytes(1);
        s += ByteSize::bytes(2);
        assert_eq!(s, ByteSize::bytes(1) + ByteSize::bytes(2));
    }

    #[test]
    fn display_units() {
        assert_eq!(ByteSize::bytes(0).to_string(), "0 B");
        assert_eq!(ByteSize::bytes(512).to_string(), "512.00 B");
        assert_eq!(ByteSize::bytes(2048).to_string(), "2.00 KiB");
        assert_eq!(ByteSize::mib(3).to_string(), "3.00 MiB");
        assert_eq!(ByteSize::bytes(3 << 30).to_string(), "3.00 GiB");
    }
}
