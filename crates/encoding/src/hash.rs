//! FNV-1a hashing and hasher-plumbing for fast small-key maps.
//!
//! SipHash (the std default) is overkill for the interned `u32` ids that
//! dominate DWARF construction; FNV-1a is a simple, fast, well-known
//! alternative. HashDoS is not a concern for an embedded analytical engine
//! processing its own ids.

use std::collections::{HashMap, HashSet};
use std::hash::{BuildHasherDefault, Hasher};

const FNV_OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
const FNV_PRIME: u64 = 0x0000_0100_0000_01b3;

/// One-shot FNV-1a of a byte slice.
pub fn fnv1a_64(data: &[u8]) -> u64 {
    let mut h = FNV_OFFSET;
    for &b in data {
        h ^= u64::from(b);
        h = h.wrapping_mul(FNV_PRIME);
    }
    h
}

/// Streaming FNV-1a [`Hasher`].
#[derive(Debug, Clone)]
pub struct FnvHasher(u64);

impl Default for FnvHasher {
    fn default() -> Self {
        FnvHasher(FNV_OFFSET)
    }
}

impl Hasher for FnvHasher {
    fn finish(&self) -> u64 {
        self.0
    }

    fn write(&mut self, bytes: &[u8]) {
        let mut h = self.0;
        for &b in bytes {
            h ^= u64::from(b);
            h = h.wrapping_mul(FNV_PRIME);
        }
        self.0 = h;
    }
}

/// `BuildHasher` for [`FnvHasher`].
pub type FnvBuildHasher = BuildHasherDefault<FnvHasher>;

/// `HashMap` keyed with FNV-1a.
pub type FnvHashMap<K, V> = HashMap<K, V, FnvBuildHasher>;

/// `HashSet` keyed with FNV-1a.
pub type FnvHashSet<T> = HashSet<T, FnvBuildHasher>;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn known_vectors() {
        // Published FNV-1a 64-bit test vectors.
        assert_eq!(fnv1a_64(b""), 0xcbf2_9ce4_8422_2325);
        assert_eq!(fnv1a_64(b"a"), 0xaf63_dc4c_8601_ec8c);
        assert_eq!(fnv1a_64(b"foobar"), 0x85944171f73967e8);
    }

    #[test]
    fn hasher_matches_oneshot() {
        let mut h = FnvHasher::default();
        h.write(b"smart");
        h.write(b"city");
        assert_eq!(h.finish(), fnv1a_64(b"smartcity"));
    }

    #[test]
    fn map_basics() {
        let mut m: FnvHashMap<u32, &str> = FnvHashMap::default();
        m.insert(1, "one");
        m.insert(2, "two");
        assert_eq!(m.get(&1), Some(&"one"));
        assert_eq!(m.len(), 2);

        let mut s: FnvHashSet<u64> = FnvHashSet::default();
        assert!(s.insert(42));
        assert!(!s.insert(42));
    }
}
