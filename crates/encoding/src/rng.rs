//! Deterministic pseudo-random numbers (xorshift64*).
//!
//! The workspace uses this instead of `rand` so that generated datasets and
//! randomized tests are bit-identical across runs and platforms — benchmark
//! inputs must not drift between invocations, and a failing randomized test
//! must reproduce from its seed alone. `sc-datagen` re-exports it as
//! `sc_datagen::Rng`; test suites use it directly as a small deterministic
//! replacement for property-testing generators.

/// A small, fast, seedable PRNG (xorshift64* with the standard multiplier).
#[derive(Debug, Clone)]
pub struct Rng {
    state: u64,
}

impl Rng {
    /// Creates a generator; a zero seed is remapped (xorshift needs nonzero
    /// state).
    pub fn new(seed: u64) -> Rng {
        Rng {
            state: if seed == 0 {
                0x9E37_79B9_7F4A_7C15
            } else {
                seed
            },
        }
    }

    /// Next raw 64-bit value.
    pub fn next_u64(&mut self) -> u64 {
        let mut x = self.state;
        x ^= x >> 12;
        x ^= x << 25;
        x ^= x >> 27;
        self.state = x;
        x.wrapping_mul(0x2545_F491_4F6C_DD1D)
    }

    /// Uniform value in `[0, n)`. Panics if `n == 0`.
    pub fn gen_range(&mut self, n: u64) -> u64 {
        assert!(n > 0, "gen_range(0)");
        // Multiply-shift rejection-free mapping; bias is negligible for the
        // small ranges used here.
        ((u128::from(self.next_u64()) * u128::from(n)) >> 64) as u64
    }

    /// Uniform integer in `[lo, hi]` (inclusive).
    pub fn gen_between(&mut self, lo: i64, hi: i64) -> i64 {
        assert!(lo <= hi, "gen_between({lo}, {hi})");
        let span = hi as i128 - lo as i128 + 1;
        if span > u64::MAX as i128 {
            // Only possible for the full i64 range: every value is valid.
            return self.next_u64() as i64;
        }
        lo.wrapping_add(self.gen_range(span as u64) as i64)
    }

    /// Uniform `i64` over the full range.
    pub fn gen_i64(&mut self) -> i64 {
        self.next_u64() as i64
    }

    /// Uniform float in `[0, 1)`.
    pub fn gen_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 / (1u64 << 53) as f64
    }

    /// Picks an element of a non-empty slice.
    pub fn choice<'a, T>(&mut self, items: &'a [T]) -> &'a T {
        &items[self.gen_range(items.len() as u64) as usize]
    }

    /// Bernoulli draw with probability `p`.
    pub fn gen_bool(&mut self, p: f64) -> bool {
        self.gen_f64() < p
    }

    /// Bounded random walk step: moves `current` by ±`step` (clamped).
    pub fn walk(&mut self, current: i64, step: i64, lo: i64, hi: i64) -> i64 {
        let delta = self.gen_between(-step, step);
        (current + delta).clamp(lo, hi)
    }

    /// Random bytes of length drawn uniformly from `[0, max_len]`.
    pub fn gen_bytes(&mut self, max_len: usize) -> Vec<u8> {
        let len = self.gen_range(max_len as u64 + 1) as usize;
        (0..len).map(|_| self.next_u64() as u8).collect()
    }

    /// Random printable-ASCII string of length drawn from `[0, max_len]`.
    pub fn gen_ascii(&mut self, max_len: usize) -> String {
        let len = self.gen_range(max_len as u64 + 1) as usize;
        (0..len)
            .map(|_| (b' ' + self.gen_range(95) as u8) as char)
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_across_instances() {
        let mut a = Rng::new(42);
        let mut b = Rng::new(42);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
        let mut c = Rng::new(43);
        assert_ne!(Rng::new(42).next_u64(), c.next_u64());
    }

    #[test]
    fn zero_seed_is_remapped() {
        let mut r = Rng::new(0);
        assert_ne!(r.next_u64(), 0);
    }

    #[test]
    fn ranges_are_respected() {
        let mut r = Rng::new(7);
        for _ in 0..1000 {
            let v = r.gen_range(10);
            assert!(v < 10);
            let b = r.gen_between(-5, 5);
            assert!((-5..=5).contains(&b));
            let f = r.gen_f64();
            assert!((0.0..1.0).contains(&f));
        }
    }

    #[test]
    fn full_range_between_does_not_overflow() {
        let mut r = Rng::new(3);
        for _ in 0..100 {
            let _ = r.gen_between(i64::MIN, i64::MAX);
        }
    }

    #[test]
    fn range_covers_all_values() {
        let mut r = Rng::new(9);
        let mut seen = [false; 10];
        for _ in 0..1000 {
            seen[r.gen_range(10) as usize] = true;
        }
        assert!(seen.iter().all(|&s| s));
    }

    #[test]
    fn walk_stays_in_bounds() {
        let mut r = Rng::new(11);
        let mut v = 5;
        for _ in 0..1000 {
            v = r.walk(v, 3, 0, 30);
            assert!((0..=30).contains(&v));
        }
    }

    #[test]
    fn choice_picks_members() {
        let mut r = Rng::new(13);
        let items = ["a", "b", "c"];
        for _ in 0..50 {
            assert!(items.contains(r.choice(&items)));
        }
    }

    #[test]
    fn string_and_byte_generators_respect_bounds() {
        let mut r = Rng::new(17);
        for _ in 0..200 {
            let s = r.gen_ascii(16);
            assert!(s.len() <= 16);
            assert!(s.chars().all(|c| (' '..='~').contains(&c)));
            let b = r.gen_bytes(12);
            assert!(b.len() <= 12);
        }
    }
}
