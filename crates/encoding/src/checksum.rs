//! CRC-32 (IEEE 802.3 polynomial), implemented from scratch.
//!
//! Used to detect torn writes in the NoSQL commit log and to validate
//! SSTable / heap-file footers. The table is generated at first use.

/// Reflected IEEE polynomial used by zlib, Ethernet, Cassandra commit logs.
const POLY: u32 = 0xEDB8_8320;

fn make_table() -> [u32; 256] {
    let mut table = [0u32; 256];
    let mut i = 0;
    while i < 256 {
        let mut crc = i as u32;
        let mut bit = 0;
        while bit < 8 {
            crc = if crc & 1 != 0 {
                (crc >> 1) ^ POLY
            } else {
                crc >> 1
            };
            bit += 1;
        }
        table[i] = crc;
        i += 1;
    }
    table
}

/// Streaming CRC-32 state.
#[derive(Debug, Clone)]
pub struct Crc32 {
    state: u32,
}

impl Default for Crc32 {
    fn default() -> Self {
        Self::new()
    }
}

impl Crc32 {
    /// Starts a fresh checksum.
    pub fn new() -> Self {
        Self { state: 0xFFFF_FFFF }
    }

    /// Feeds `data` into the checksum.
    pub fn update(&mut self, data: &[u8]) -> &mut Self {
        // The table is small and construction is cheap; computing it once in
        // a static avoids lazy_static-style dependencies.
        static TABLE: std::sync::OnceLock<[u32; 256]> = std::sync::OnceLock::new();
        let table = TABLE.get_or_init(make_table);
        let mut state = self.state;
        for &byte in data {
            let idx = ((state ^ u32::from(byte)) & 0xff) as usize;
            state = (state >> 8) ^ table[idx];
        }
        self.state = state;
        self
    }

    /// Finishes and returns the checksum value.
    pub fn finish(&self) -> u32 {
        self.state ^ 0xFFFF_FFFF
    }

    /// Convenience: checksum of a single buffer.
    pub fn of(data: &[u8]) -> u32 {
        let mut c = Crc32::new();
        c.update(data);
        c.finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    #[test]
    fn known_vectors() {
        // Standard CRC-32/IEEE test vectors.
        assert_eq!(Crc32::of(b""), 0x0000_0000);
        assert_eq!(Crc32::of(b"123456789"), 0xCBF4_3926);
        assert_eq!(
            Crc32::of(b"The quick brown fox jumps over the lazy dog"),
            0x414F_A339
        );
    }

    #[test]
    fn incremental_equals_oneshot() {
        let data = b"smart city data cube";
        let mut c = Crc32::new();
        c.update(&data[..5]).update(&data[5..]);
        assert_eq!(c.finish(), Crc32::of(data));
    }

    #[test]
    fn single_bit_flip_changes_checksum() {
        let data = vec![0u8; 64];
        let base = Crc32::of(&data);
        for i in 0..64 {
            let mut corrupt = data.clone();
            corrupt[i] ^= 1;
            assert_ne!(Crc32::of(&corrupt), base, "flip at byte {i} undetected");
        }
    }

    #[test]
    fn split_points_agree() {
        // Deterministic randomized sweep (seeded xorshift, no proptest — the
        // build is offline): any split of the input must checksum alike.
        let mut rng = crate::Rng::new(0xC5C5);
        for _ in 0..512 {
            let data = rng.gen_bytes(255);
            let split = (rng.gen_range(256) as usize).min(data.len());
            let mut c = Crc32::new();
            c.update(&data[..split]).update(&data[split..]);
            assert_eq!(c.finish(), Crc32::of(&data));
        }
    }
}
