//! Bloom filters over byte keys, used by SSTable v2 to answer point misses
//! without touching data blocks.
//!
//! The filter uses double hashing over a single FNV-1a base hash
//! (Kirsch–Mitzenmacher): probe *i* tests bit `h1 + i·h2 mod m`. With the
//! default 10 bits per key and 7 probes the false-positive rate is ~0.8%,
//! comfortably under the 2% budget the read path is tested against.
//!
//! Encoding is part of the SSTable v2 meta region: the probe count followed
//! by the length-prefixed bit array. Decoding validates the probe count and
//! rejects an empty bit array, so a corrupt filter surfaces as a
//! [`DecodeError`] instead of dividing by zero at query time.

use crate::codec::{DecodeError, Decoder, Encoder};
use crate::hash::fnv1a_64;

/// Default filter density: 10 bits per key (~0.8% false positives with the
/// derived 7 probes).
pub const DEFAULT_BITS_PER_KEY: usize = 10;

/// Probe counts outside `1..=MAX_PROBES` are rejected as corrupt.
const MAX_PROBES: u32 = 30;

/// A fixed-size Bloom filter over byte-string keys.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Bloom {
    bits: Vec<u8>,
    probes: u32,
}

impl Bloom {
    /// Creates a filter sized for `keys` keys at `bits_per_key` density.
    /// The probe count is the optimal `bits_per_key · ln 2`, clamped to
    /// `1..=MAX_PROBES`.
    pub fn with_capacity(keys: usize, bits_per_key: usize) -> Bloom {
        let bits_per_key = bits_per_key.max(1);
        // At least one byte so `bit_len` is never zero, even for an empty
        // table (the filter then simply rejects everything).
        let bytes = (keys.max(1) * bits_per_key).div_ceil(8).max(1);
        // 69/100 ≈ ln 2; integer math keeps the construction deterministic.
        let probes = ((bits_per_key * 69 / 100).max(1) as u32).min(MAX_PROBES);
        Bloom {
            bits: vec![0; bytes],
            probes,
        }
    }

    /// Number of bits in the filter.
    pub fn bit_len(&self) -> u64 {
        self.bits.len() as u64 * 8
    }

    /// Encoded size in bytes (bit array only, excluding framing).
    pub fn byte_len(&self) -> usize {
        self.bits.len()
    }

    /// Number of probe positions tested per key.
    pub fn probes(&self) -> u32 {
        self.probes
    }

    fn probe_pair(key: &[u8]) -> (u64, u64) {
        let h1 = fnv1a_64(key);
        // A second, decorrelated hash derived from the first; forcing it odd
        // makes it a generator modulo any power of two and harmless
        // otherwise.
        let h2 = h1.rotate_left(17).wrapping_mul(0x9e37_79b9_7f4a_7c15) | 1;
        (h1, h2)
    }

    /// Inserts `key` into the filter.
    pub fn insert(&mut self, key: &[u8]) {
        let m = self.bit_len();
        let (h1, h2) = Self::probe_pair(key);
        for i in 0..u64::from(self.probes) {
            let bit = h1.wrapping_add(i.wrapping_mul(h2)) % m;
            self.bits[(bit / 8) as usize] |= 1 << (bit % 8);
        }
    }

    /// Whether `key` may be present. `false` is definitive; `true` may be a
    /// false positive.
    pub fn may_contain(&self, key: &[u8]) -> bool {
        let m = self.bit_len();
        let (h1, h2) = Self::probe_pair(key);
        (0..u64::from(self.probes)).all(|i| {
            let bit = h1.wrapping_add(i.wrapping_mul(h2)) % m;
            self.bits[(bit / 8) as usize] & (1 << (bit % 8)) != 0
        })
    }

    /// Appends the filter (probe count + length-prefixed bit array).
    pub fn encode(&self, enc: &mut Encoder) {
        enc.put_u32(self.probes);
        enc.put_bytes(&self.bits);
    }

    /// Reads a filter written by [`Bloom::encode`], validating the probe
    /// count and rejecting an empty bit array.
    pub fn decode(dec: &mut Decoder<'_>) -> Result<Bloom, DecodeError> {
        let probes = dec.get_u32()?;
        if probes == 0 || probes > MAX_PROBES {
            return Err(DecodeError::BadTag {
                tag: probes.min(255) as u8,
                context: "bloom probe count",
            });
        }
        let bits = dec.get_bytes()?.to_vec();
        if bits.is_empty() {
            return Err(DecodeError::UnexpectedEof {
                wanted: "bloom bit array",
            });
        }
        Ok(Bloom { bits, probes })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Rng;

    fn key(i: u64) -> Vec<u8> {
        format!("key-{i:08}").into_bytes()
    }

    #[test]
    fn no_false_negatives() {
        let mut bloom = Bloom::with_capacity(1000, DEFAULT_BITS_PER_KEY);
        for i in 0..1000 {
            bloom.insert(&key(i));
        }
        for i in 0..1000 {
            assert!(bloom.may_contain(&key(i)), "false negative on key {i}");
        }
    }

    #[test]
    fn false_positive_rate_under_two_percent() {
        let mut bloom = Bloom::with_capacity(2000, DEFAULT_BITS_PER_KEY);
        for i in 0..2000 {
            bloom.insert(&key(i));
        }
        let mut rng = Rng::new(0xB100_F11E);
        let probes = 20_000u64;
        let fp = (0..probes)
            .filter(|_| {
                // Keys disjoint from the inserted set.
                let absent = 1_000_000 + rng.gen_range(1_000_000);
                bloom.may_contain(&key(absent))
            })
            .count();
        let rate = fp as f64 / probes as f64;
        assert!(rate < 0.02, "false-positive rate {rate:.4} >= 2%");
    }

    #[test]
    fn empty_filter_rejects_everything() {
        let bloom = Bloom::with_capacity(0, DEFAULT_BITS_PER_KEY);
        assert!(!bloom.may_contain(b"anything"));
    }

    #[test]
    fn encode_decode_roundtrip() {
        let mut bloom = Bloom::with_capacity(100, DEFAULT_BITS_PER_KEY);
        for i in 0..100 {
            bloom.insert(&key(i));
        }
        let mut enc = Encoder::new();
        bloom.encode(&mut enc);
        let bytes = enc.into_bytes();
        let mut dec = Decoder::new(&bytes);
        let back = Bloom::decode(&mut dec).unwrap();
        assert!(dec.is_exhausted());
        assert_eq!(back, bloom);
    }

    #[test]
    fn decode_rejects_bad_probe_counts_and_empty_bits() {
        let mut enc = Encoder::new();
        enc.put_u32(0).put_bytes(&[1, 2]);
        let bytes = enc.into_bytes();
        assert!(matches!(
            Bloom::decode(&mut Decoder::new(&bytes)),
            Err(DecodeError::BadTag { .. })
        ));

        let mut enc = Encoder::new();
        enc.put_u32(99).put_bytes(&[1, 2]);
        let bytes = enc.into_bytes();
        assert!(matches!(
            Bloom::decode(&mut Decoder::new(&bytes)),
            Err(DecodeError::BadTag { .. })
        ));

        let mut enc = Encoder::new();
        enc.put_u32(7).put_bytes(&[]);
        let bytes = enc.into_bytes();
        assert!(matches!(
            Bloom::decode(&mut Decoder::new(&bytes)),
            Err(DecodeError::UnexpectedEof { .. })
        ));
    }
}
