//! LEB128-style variable-length integers and zig-zag signed encoding.
//!
//! Varints keep SSTable and heap-file records compact: most ids in a DWARF
//! cube are small, so a `u32` node id usually costs one or two bytes on disk
//! instead of four.

/// Maximum number of bytes a `u64` varint can occupy.
pub const MAX_VARINT_LEN: usize = 10;

/// Appends `value` to `out` as an unsigned LEB128 varint.
///
/// Returns the number of bytes written.
pub fn write_u64(out: &mut Vec<u8>, mut value: u64) -> usize {
    let mut n = 0;
    loop {
        let byte = (value & 0x7f) as u8;
        value >>= 7;
        n += 1;
        if value == 0 {
            out.push(byte);
            return n;
        }
        out.push(byte | 0x80);
    }
}

/// Reads an unsigned LEB128 varint from the front of `buf`.
///
/// Returns `(value, bytes_consumed)` or `None` if `buf` is truncated or the
/// encoding overflows 64 bits.
pub fn read_u64(buf: &[u8]) -> Option<(u64, usize)> {
    let mut value: u64 = 0;
    let mut shift = 0u32;
    for (i, &byte) in buf.iter().enumerate() {
        if i >= MAX_VARINT_LEN {
            return None;
        }
        let low = u64::from(byte & 0x7f);
        // The 10th byte may only contribute a single bit.
        if shift == 63 && low > 1 {
            return None;
        }
        value |= low << shift;
        if byte & 0x80 == 0 {
            return Some((value, i + 1));
        }
        shift += 7;
    }
    None
}

/// Zig-zag encodes a signed integer so small magnitudes get small varints.
#[inline]
pub fn zigzag(value: i64) -> u64 {
    ((value << 1) ^ (value >> 63)) as u64
}

/// Inverse of [`zigzag`].
#[inline]
pub fn unzigzag(value: u64) -> i64 {
    ((value >> 1) as i64) ^ -((value & 1) as i64)
}

/// Appends a signed integer as a zig-zag varint.
pub fn write_i64(out: &mut Vec<u8>, value: i64) -> usize {
    write_u64(out, zigzag(value))
}

/// Reads a signed zig-zag varint from the front of `buf`.
pub fn read_i64(buf: &[u8]) -> Option<(i64, usize)> {
    read_u64(buf).map(|(v, n)| (unzigzag(v), n))
}

/// Number of bytes `value` occupies as a varint, without encoding it.
pub fn len_u64(value: u64) -> usize {
    if value == 0 {
        return 1;
    }
    (64 - value.leading_zeros()).div_ceil(7) as usize
}

#[cfg(test)]
mod tests {
    use super::*;
    #[test]
    fn zero_is_one_byte() {
        let mut buf = Vec::new();
        assert_eq!(write_u64(&mut buf, 0), 1);
        assert_eq!(buf, [0]);
        assert_eq!(read_u64(&buf), Some((0, 1)));
    }

    #[test]
    fn boundary_values() {
        for &v in &[0u64, 1, 127, 128, 16383, 16384, u32::MAX as u64, u64::MAX] {
            let mut buf = Vec::new();
            let n = write_u64(&mut buf, v);
            assert_eq!(n, buf.len());
            assert_eq!(n, len_u64(v), "len_u64 mismatch for {v}");
            assert_eq!(read_u64(&buf), Some((v, n)));
        }
    }

    #[test]
    fn truncated_input_is_rejected() {
        let mut buf = Vec::new();
        write_u64(&mut buf, u64::MAX);
        for cut in 0..buf.len() {
            assert_eq!(read_u64(&buf[..cut]), None, "cut at {cut}");
        }
    }

    #[test]
    fn overlong_encoding_is_rejected() {
        // Eleven continuation bytes can never be a valid u64.
        let buf = [0x80u8; 11];
        assert_eq!(read_u64(&buf), None);
        // A 10-byte encoding whose final byte overflows bit 63.
        let mut buf = vec![0x80u8; 9];
        buf.push(0x02);
        assert_eq!(read_u64(&buf), None);
    }

    #[test]
    fn zigzag_known_values() {
        assert_eq!(zigzag(0), 0);
        assert_eq!(zigzag(-1), 1);
        assert_eq!(zigzag(1), 2);
        assert_eq!(zigzag(-2), 3);
        assert_eq!(zigzag(i64::MIN), u64::MAX);
        assert_eq!(unzigzag(u64::MAX), i64::MIN);
    }

    #[test]
    fn signed_roundtrip_extremes() {
        for &v in &[i64::MIN, -1, 0, 1, i64::MAX] {
            let mut buf = Vec::new();
            let n = write_i64(&mut buf, v);
            assert_eq!(read_i64(&buf), Some((v, n)));
        }
    }

    // Deterministic randomized sweeps (seeded xorshift, no proptest — the
    // build is offline). Values are drawn across the full u64/i64 range.

    #[test]
    fn roundtrip_u64_random() {
        let mut rng = crate::Rng::new(0x0A11);
        for _ in 0..4096 {
            let v = rng.next_u64();
            let mut buf = Vec::new();
            let n = write_u64(&mut buf, v);
            assert_eq!(n, len_u64(v));
            assert_eq!(read_u64(&buf), Some((v, n)));
        }
    }

    #[test]
    fn roundtrip_i64_random() {
        let mut rng = crate::Rng::new(0x0A12);
        for _ in 0..4096 {
            let v = rng.gen_i64();
            let mut buf = Vec::new();
            let n = write_i64(&mut buf, v);
            assert_eq!(read_i64(&buf), Some((v, n)));
        }
    }

    #[test]
    fn reads_ignore_trailing_bytes() {
        let mut rng = crate::Rng::new(0x0A13);
        for _ in 0..1024 {
            let v = rng.next_u64();
            let mut buf = Vec::new();
            let n = write_u64(&mut buf, v);
            buf.extend_from_slice(&rng.gen_bytes(7));
            assert_eq!(read_u64(&buf), Some((v, n)));
        }
    }
}
