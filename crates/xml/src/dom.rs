//! A small owned DOM built on top of the pull parser.

use crate::error::{XmlError, XmlErrorKind};
use crate::event::{Attribute, XmlEvent};
use crate::reader::XmlReader;
use crate::writer::XmlWriter;

/// A node inside an element.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Node {
    /// A child element.
    Element(Element),
    /// Character data (text and CDATA merged).
    Text(String),
}

/// An element with attributes and children.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Element {
    /// Tag name as written.
    pub name: String,
    /// Attributes in document order.
    pub attributes: Vec<Attribute>,
    /// Child nodes in document order.
    pub children: Vec<Node>,
}

impl Element {
    /// Creates an element with no attributes or children.
    pub fn new(name: impl Into<String>) -> Self {
        Self {
            name: name.into(),
            attributes: Vec::new(),
            children: Vec::new(),
        }
    }

    /// Builder-style: adds an attribute.
    pub fn with_attr(mut self, name: impl Into<String>, value: impl Into<String>) -> Self {
        self.attributes.push(Attribute {
            name: name.into(),
            value: value.into(),
        });
        self
    }

    /// Builder-style: adds a child element.
    pub fn with_child(mut self, child: Element) -> Self {
        self.children.push(Node::Element(child));
        self
    }

    /// Builder-style: adds a text child.
    pub fn with_text(mut self, text: impl Into<String>) -> Self {
        self.children.push(Node::Text(text.into()));
        self
    }

    /// Looks up an attribute value by name.
    pub fn attr(&self, name: &str) -> Option<&str> {
        self.attributes
            .iter()
            .find(|a| a.name == name)
            .map(|a| a.value.as_str())
    }

    /// Iterates child elements.
    pub fn child_elements(&self) -> impl Iterator<Item = &Element> {
        self.children.iter().filter_map(|n| match n {
            Node::Element(e) => Some(e),
            Node::Text(_) => None,
        })
    }

    /// Iterates child elements with a given tag name.
    pub fn children_named<'a>(&'a self, name: &'a str) -> impl Iterator<Item = &'a Element> + 'a {
        self.child_elements().filter(move |e| e.name == name)
    }

    /// First child element with a given tag name.
    pub fn first_child(&self, name: &str) -> Option<&Element> {
        self.child_elements().find(|e| e.name == name)
    }

    /// Concatenated text content of this element (direct text children only).
    pub fn text(&self) -> String {
        let mut out = String::new();
        for n in &self.children {
            if let Node::Text(t) = n {
                out.push_str(t);
            }
        }
        out
    }

    /// Concatenated text content of this element and all descendants.
    pub fn deep_text(&self) -> String {
        let mut out = String::new();
        fn walk(e: &Element, out: &mut String) {
            for n in &e.children {
                match n {
                    Node::Text(t) => out.push_str(t),
                    Node::Element(c) => walk(c, out),
                }
            }
        }
        walk(self, &mut out);
        out
    }

    /// Number of descendant elements, including self.
    pub fn element_count(&self) -> usize {
        1 + self
            .child_elements()
            .map(Element::element_count)
            .sum::<usize>()
    }

    /// Serializes this element (and subtree) to XML text.
    pub fn to_xml(&self) -> String {
        let mut w = XmlWriter::new();
        w.write_element(self);
        w.into_string()
    }
}

/// A parsed document: declaration metadata plus the root element.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Document {
    /// Declared version (defaults to `1.0`).
    pub version: String,
    /// Declared encoding, if any.
    pub encoding: Option<String>,
    /// The root element.
    pub root: Element,
}

impl Document {
    /// Parses a complete document.
    pub fn parse(input: &str) -> Result<Document, XmlError> {
        let mut reader = XmlReader::new(input);
        let mut version = "1.0".to_string();
        let mut encoding = None;
        let mut stack: Vec<Element> = Vec::new();
        let mut root: Option<Element> = None;
        loop {
            match reader.next_event()? {
                XmlEvent::Declaration {
                    version: v,
                    encoding: e,
                } => {
                    version = v;
                    encoding = e;
                }
                XmlEvent::StartElement {
                    name, attributes, ..
                } => {
                    stack.push(Element {
                        name,
                        attributes,
                        children: Vec::new(),
                    });
                }
                XmlEvent::EndElement { .. } => {
                    // The reader guarantees balance, so unwraps are safe.
                    let done = stack.pop().expect("reader guarantees balanced tags");
                    if let Some(parent) = stack.last_mut() {
                        parent.children.push(Node::Element(done));
                    } else {
                        root = Some(done);
                    }
                }
                XmlEvent::Text(t) | XmlEvent::CData(t) => {
                    if let Some(parent) = stack.last_mut() {
                        // Merge adjacent text nodes for a tidier tree.
                        if let Some(Node::Text(prev)) = parent.children.last_mut() {
                            prev.push_str(&t);
                        } else {
                            parent.children.push(Node::Text(t));
                        }
                    }
                }
                XmlEvent::Comment(_) | XmlEvent::ProcessingInstruction { .. } => {}
                XmlEvent::Eof => break,
            }
        }
        let root = root.ok_or(XmlError::new(
            XmlErrorKind::BadDocumentStructure("document has no root element".into()),
            1,
            1,
        ))?;
        Ok(Document {
            version,
            encoding,
            root,
        })
    }

    /// Serializes the document with a declaration.
    pub fn to_xml(&self) -> String {
        let mut w = XmlWriter::new();
        w.write_declaration(&self.version, self.encoding.as_deref());
        w.write_element(&self.root);
        w.into_string()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const FEED: &str = r#"<?xml version="1.0" encoding="UTF-8"?>
<stations updated="2016-03-15T10:00:00">
  <station id="17">
    <name>Fenian St</name>
    <bikes>3</bikes>
    <docks>20</docks>
  </station>
  <station id="42">
    <name>Smithfield</name>
    <bikes>11</bikes>
    <docks>30</docks>
  </station>
</stations>"#;

    #[test]
    fn parse_bike_feed() {
        let doc = Document::parse(FEED).unwrap();
        assert_eq!(doc.encoding.as_deref(), Some("UTF-8"));
        assert_eq!(doc.root.name, "stations");
        assert_eq!(doc.root.attr("updated"), Some("2016-03-15T10:00:00"));
        let stations: Vec<_> = doc.root.children_named("station").collect();
        assert_eq!(stations.len(), 2);
        assert_eq!(stations[0].first_child("name").unwrap().text(), "Fenian St");
        assert_eq!(stations[1].first_child("bikes").unwrap().text(), "11");
    }

    #[test]
    fn text_merging_across_cdata() {
        let doc = Document::parse("<a>one<![CDATA[ two]]> three</a>").unwrap();
        assert_eq!(doc.root.text(), "one two three");
        assert_eq!(doc.root.children.len(), 1);
    }

    #[test]
    fn deep_text_spans_children() {
        let doc = Document::parse("<a>x<b>y<c>z</c></b></a>").unwrap();
        assert_eq!(doc.root.deep_text(), "xyz");
        assert_eq!(doc.root.text(), "x");
    }

    #[test]
    fn element_count() {
        let doc = Document::parse(FEED).unwrap();
        // stations + 2*(station + name + bikes + docks) = 9
        assert_eq!(doc.root.element_count(), 9);
    }

    #[test]
    fn serialization_roundtrip() {
        let doc = Document::parse(FEED).unwrap();
        let text = doc.to_xml();
        let back = Document::parse(&text).unwrap();
        // Whitespace text nodes survive, so compare structure directly.
        assert_eq!(back.root, doc.root);
    }

    #[test]
    fn roundtrip_with_special_characters() {
        let e = Element::new("q")
            .with_attr("expr", "a < b & \"c\"")
            .with_text("5 > 4 & 3 < 4");
        let text = e.to_xml();
        let doc = Document::parse(&text).unwrap();
        assert_eq!(doc.root.attr("expr"), Some("a < b & \"c\""));
        assert_eq!(doc.root.text(), "5 > 4 & 3 < 4");
    }

    #[test]
    fn builder_api() {
        let e = Element::new("station")
            .with_attr("id", "7")
            .with_child(Element::new("name").with_text("Dame St"));
        assert_eq!(e.attr("id"), Some("7"));
        assert_eq!(e.first_child("name").unwrap().text(), "Dame St");
        assert!(e.first_child("missing").is_none());
    }
}
