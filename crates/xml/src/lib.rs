//! # sc-xml
//!
//! A from-scratch XML 1.0 subset parser for smart-city data feeds.
//!
//! Smart-city services publish observations as XML documents (bike-share
//! station feeds, car-park occupancy, air-quality sensors). This crate
//! provides everything the ingest pipeline needs and nothing more:
//!
//! * [`reader::XmlReader`] — a streaming pull parser producing
//!   [`event::XmlEvent`]s, suitable for very large feeds,
//! * [`dom`] — a small owned document tree for tests and examples,
//! * [`path`] — an XPath-lite selector language (`/a/b`, `//station`,
//!   `@attr`) used by cube definitions to locate dimensions and measures,
//! * [`writer::XmlWriter`] — an escaping writer used by the data generator.
//!
//! ## Supported XML subset
//!
//! Elements, attributes (single or double quoted), character data, CDATA
//! sections, comments, processing instructions, the XML declaration, the five
//! predefined entities and decimal/hex character references. DTDs are
//! recognised and skipped; external entities are (deliberately) not
//! supported.
//!
//! ```
//! use sc_xml::dom::Document;
//!
//! let doc = Document::parse("<stations><station id=\"42\">Fenian St</station></stations>").unwrap();
//! let station = &doc.root.children_named("station").next().unwrap();
//! assert_eq!(station.attr("id"), Some("42"));
//! assert_eq!(station.text(), "Fenian St");
//! ```

pub mod dom;
pub mod entities;
pub mod error;
pub mod event;
pub mod path;
pub mod reader;
pub mod scanner;
pub mod writer;

pub use dom::{Document, Element};
pub use error::{XmlError, XmlErrorKind};
pub use event::XmlEvent;
pub use reader::XmlReader;
pub use writer::XmlWriter;
