//! Pull-parser events.

/// One attribute on a start tag.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Attribute {
    /// Attribute name as written (prefix included).
    pub name: String,
    /// Decoded attribute value (entities resolved).
    pub value: String,
}

/// An event produced by [`crate::reader::XmlReader`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum XmlEvent {
    /// `<?xml version="1.0" ...?>`.
    Declaration {
        /// Version string, e.g. `1.0`.
        version: String,
        /// Encoding if declared.
        encoding: Option<String>,
    },
    /// `<name attr="v">` — `self_closing` is true for `<name/>`.
    StartElement {
        /// Element name as written.
        name: String,
        /// Attributes in document order.
        attributes: Vec<Attribute>,
        /// Whether the tag closed itself (`/>`).
        self_closing: bool,
    },
    /// `</name>` — also emitted synthetically after a self-closing start tag.
    EndElement {
        /// Element name as written.
        name: String,
    },
    /// Character data with entities resolved; adjacent CDATA is separate.
    Text(String),
    /// `<![CDATA[...]]>` content, verbatim.
    CData(String),
    /// `<!-- ... -->` content, verbatim.
    Comment(String),
    /// `<?target data?>`.
    ProcessingInstruction {
        /// PI target.
        target: String,
        /// Raw data after the target.
        data: String,
    },
    /// End of the document.
    Eof,
}

impl XmlEvent {
    /// True if this is [`XmlEvent::Eof`].
    pub fn is_eof(&self) -> bool {
        matches!(self, XmlEvent::Eof)
    }
}
