//! Streaming pull parser.

use crate::entities::resolve_reference;
use crate::error::{XmlError, XmlErrorKind};
use crate::event::{Attribute, XmlEvent};
use crate::scanner::Scanner;

fn is_name_start(c: char) -> bool {
    c.is_alphabetic() || c == '_' || c == ':'
}

fn is_name_char(c: char) -> bool {
    is_name_start(c) || c.is_ascii_digit() || c == '-' || c == '.'
}

/// A pull parser over an in-memory XML document.
///
/// Call [`XmlReader::next_event`] until it returns [`XmlEvent::Eof`]. The
/// reader enforces well-formedness: tags must balance, attributes must be
/// unique per element, and exactly one root element must exist.
///
/// ```
/// use sc_xml::{XmlReader, XmlEvent};
///
/// let mut r = XmlReader::new("<a x=\"1\"><b/>hi</a>");
/// let mut names = Vec::new();
/// loop {
///     match r.next_event().unwrap() {
///         XmlEvent::StartElement { name, .. } => names.push(name),
///         XmlEvent::Eof => break,
///         _ => {}
///     }
/// }
/// assert_eq!(names, ["a", "b"]);
/// ```
#[derive(Debug)]
pub struct XmlReader<'a> {
    scanner: Scanner<'a>,
    /// Open-element stack, for tag balancing.
    stack: Vec<String>,
    /// Pending synthetic EndElement after a self-closing tag.
    pending_end: Option<String>,
    /// Whether the root element has been seen (and closed).
    seen_root: bool,
    finished: bool,
}

impl<'a> XmlReader<'a> {
    /// Creates a reader over `input`. A leading UTF-8 BOM (common in
    /// Windows-produced feeds) is skipped.
    pub fn new(input: &'a str) -> Self {
        let input = input.strip_prefix('\u{FEFF}').unwrap_or(input);
        Self {
            scanner: Scanner::new(input),
            stack: Vec::new(),
            pending_end: None,
            seen_root: false,
            finished: false,
        }
    }

    /// Current depth of open elements (0 outside the root).
    pub fn depth(&self) -> usize {
        self.stack.len()
    }

    /// Produces the next event.
    pub fn next_event(&mut self) -> Result<XmlEvent, XmlError> {
        if let Some(name) = self.pending_end.take() {
            return Ok(XmlEvent::EndElement { name });
        }
        if self.finished {
            return Ok(XmlEvent::Eof);
        }
        {
            // Outside any element we skip whitespace; inside, it is text.
            if self.stack.is_empty() {
                self.scanner.skip_whitespace();
            }
            if self.scanner.is_eof() {
                if let Some(open) = self.stack.last() {
                    return Err(self
                        .scanner
                        .error(XmlErrorKind::BadDocumentStructure(format!(
                            "input ended with <{open}> still open"
                        ))));
                }
                if !self.seen_root {
                    return Err(self.scanner.error(XmlErrorKind::BadDocumentStructure(
                        "document has no root element".into(),
                    )));
                }
                self.finished = true;
                return Ok(XmlEvent::Eof);
            }
            if self.scanner.starts_with("<") {
                return self.parse_markup();
            }
            // Text content outside markup.
            let text = self.parse_text()?;
            if self.stack.is_empty() {
                // Non-whitespace text outside the root is not well-formed;
                // whitespace was skipped above, so anything here is an error.
                return Err(self.scanner.error(XmlErrorKind::BadDocumentStructure(
                    "character data outside the root element".into(),
                )));
            }
            Ok(XmlEvent::Text(text))
        }
    }

    fn parse_text(&mut self) -> Result<String, XmlError> {
        let mut out = String::new();
        loop {
            match self.scanner.peek() {
                None | Some('<') => break,
                Some('&') => {
                    self.scanner.bump();
                    resolve_reference(&mut self.scanner, &mut out)?;
                }
                Some(c) => {
                    self.scanner.bump();
                    out.push(c);
                }
            }
        }
        Ok(out)
    }

    fn parse_markup(&mut self) -> Result<XmlEvent, XmlError> {
        if self.scanner.eat("<!--") {
            let body = self
                .scanner
                .take_until("-->")
                .ok_or_else(|| self.scanner.error(XmlErrorKind::UnexpectedEof))?
                .to_string();
            self.scanner.expect("-->")?;
            return Ok(XmlEvent::Comment(body));
        }
        if self.scanner.eat("<![CDATA[") {
            if self.stack.is_empty() {
                return Err(self.scanner.error(XmlErrorKind::BadDocumentStructure(
                    "CDATA outside the root element".into(),
                )));
            }
            let body = self
                .scanner
                .take_until("]]>")
                .ok_or_else(|| self.scanner.error(XmlErrorKind::UnexpectedEof))?
                .to_string();
            self.scanner.expect("]]>")?;
            return Ok(XmlEvent::CData(body));
        }
        if self.scanner.starts_with("<!DOCTYPE") || self.scanner.starts_with("<!doctype") {
            self.skip_doctype()?;
            return self.next_event();
        }
        if self.scanner.eat("<?") {
            return self.parse_pi();
        }
        if self.scanner.eat("</") {
            return self.parse_end_tag();
        }
        self.scanner.expect("<")?;
        self.parse_start_tag()
    }

    fn skip_doctype(&mut self) -> Result<(), XmlError> {
        // Consume "<!DOCTYPE ... >" honouring one level of [] internal subset.
        self.scanner.expect("<!")?;
        let mut depth = 1usize;
        while depth > 0 {
            match self.scanner.bump() {
                Some('<') => depth += 1,
                Some('>') => depth -= 1,
                Some('[') => {
                    // Internal subset: skip to the matching ']'.
                    while let Some(c) = self.scanner.bump() {
                        if c == ']' {
                            break;
                        }
                    }
                }
                Some(_) => {}
                None => return Err(self.scanner.error(XmlErrorKind::UnexpectedEof)),
            }
        }
        Ok(())
    }

    fn parse_name(&mut self) -> Result<String, XmlError> {
        match self.scanner.peek() {
            Some(c) if is_name_start(c) => {}
            _ => return Err(self.scanner.error(XmlErrorKind::BadName)),
        }
        Ok(self.scanner.take_while(is_name_char).to_string())
    }

    fn parse_pi(&mut self) -> Result<XmlEvent, XmlError> {
        let target = self.parse_name()?;
        let data = self
            .scanner
            .take_until("?>")
            .ok_or_else(|| self.scanner.error(XmlErrorKind::UnexpectedEof))?
            .trim()
            .to_string();
        self.scanner.expect("?>")?;
        if target.eq_ignore_ascii_case("xml") {
            let attrs = parse_pseudo_attrs(&data);
            let version = attrs
                .iter()
                .find(|(k, _)| k == "version")
                .map(|(_, v)| v.clone())
                .unwrap_or_else(|| "1.0".to_string());
            let encoding = attrs
                .iter()
                .find(|(k, _)| k == "encoding")
                .map(|(_, v)| v.clone());
            return Ok(XmlEvent::Declaration { version, encoding });
        }
        Ok(XmlEvent::ProcessingInstruction { target, data })
    }

    fn parse_start_tag(&mut self) -> Result<XmlEvent, XmlError> {
        if self.seen_root && self.stack.is_empty() {
            return Err(self.scanner.error(XmlErrorKind::BadDocumentStructure(
                "multiple root elements".into(),
            )));
        }
        let name = self.parse_name()?;
        let mut attributes: Vec<Attribute> = Vec::new();
        loop {
            self.scanner.skip_whitespace();
            if self.scanner.eat("/>") {
                self.pending_end = Some(name.clone());
                if self.stack.is_empty() {
                    self.seen_root = true;
                }
                return Ok(XmlEvent::StartElement {
                    name,
                    attributes,
                    self_closing: true,
                });
            }
            if self.scanner.eat(">") {
                self.stack.push(name.clone());
                return Ok(XmlEvent::StartElement {
                    name,
                    attributes,
                    self_closing: false,
                });
            }
            let attr_name = self.parse_name()?;
            if attributes.iter().any(|a| a.name == attr_name) {
                return Err(self
                    .scanner
                    .error(XmlErrorKind::DuplicateAttribute(attr_name)));
            }
            self.scanner.skip_whitespace();
            self.scanner.expect("=")?;
            self.scanner.skip_whitespace();
            let quote = match self.scanner.bump() {
                Some(q @ ('"' | '\'')) => q,
                _ => return Err(self.scanner.error_here()),
            };
            let mut value = String::new();
            loop {
                match self.scanner.peek() {
                    None => return Err(self.scanner.error(XmlErrorKind::UnexpectedEof)),
                    Some(c) if c == quote => {
                        self.scanner.bump();
                        break;
                    }
                    Some('&') => {
                        self.scanner.bump();
                        resolve_reference(&mut self.scanner, &mut value)?;
                    }
                    Some('<') => return Err(self.scanner.error_here()),
                    Some(c) => {
                        self.scanner.bump();
                        value.push(c);
                    }
                }
            }
            attributes.push(Attribute {
                name: attr_name,
                value,
            });
        }
    }

    fn parse_end_tag(&mut self) -> Result<XmlEvent, XmlError> {
        let name = self.parse_name()?;
        self.scanner.skip_whitespace();
        self.scanner.expect(">")?;
        match self.stack.pop() {
            Some(open) if open == name => {
                if self.stack.is_empty() {
                    self.seen_root = true;
                }
                Ok(XmlEvent::EndElement { name })
            }
            Some(open) => Err(self.scanner.error(XmlErrorKind::MismatchedTag {
                expected: open,
                found: name,
            })),
            None => Err(self.scanner.error(XmlErrorKind::UnbalancedClose(name))),
        }
    }
}

/// Parses `key="value"` pseudo-attributes in an XML declaration body.
fn parse_pseudo_attrs(data: &str) -> Vec<(String, String)> {
    let mut out = Vec::new();
    let mut rest = data.trim();
    while let Some(eq) = rest.find('=') {
        let key = rest[..eq].trim().to_string();
        let after = rest[eq + 1..].trim_start();
        let Some(quote) = after.chars().next().filter(|c| *c == '"' || *c == '\'') else {
            break;
        };
        let Some(close) = after[1..].find(quote) else {
            break;
        };
        out.push((key, after[1..1 + close].to_string()));
        rest = &after[close + 2..];
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn events(input: &str) -> Result<Vec<XmlEvent>, XmlError> {
        let mut r = XmlReader::new(input);
        let mut out = Vec::new();
        loop {
            let ev = r.next_event()?;
            let done = ev.is_eof();
            out.push(ev);
            if done {
                return Ok(out);
            }
        }
    }

    #[test]
    fn simple_document() {
        let evs = events("<a x=\"1\" y='2'>hi<b/></a>").unwrap();
        assert_eq!(
            evs,
            vec![
                XmlEvent::StartElement {
                    name: "a".into(),
                    attributes: vec![
                        Attribute {
                            name: "x".into(),
                            value: "1".into()
                        },
                        Attribute {
                            name: "y".into(),
                            value: "2".into()
                        },
                    ],
                    self_closing: false,
                },
                XmlEvent::Text("hi".into()),
                XmlEvent::StartElement {
                    name: "b".into(),
                    attributes: vec![],
                    self_closing: true,
                },
                XmlEvent::EndElement { name: "b".into() },
                XmlEvent::EndElement { name: "a".into() },
                XmlEvent::Eof,
            ]
        );
    }

    #[test]
    fn declaration_and_comment_and_pi() {
        let evs =
            events("<?xml version=\"1.0\" encoding=\"UTF-8\"?><!-- c --><?go now?><r/>").unwrap();
        assert_eq!(
            evs[0],
            XmlEvent::Declaration {
                version: "1.0".into(),
                encoding: Some("UTF-8".into())
            }
        );
        assert_eq!(evs[1], XmlEvent::Comment(" c ".into()));
        assert_eq!(
            evs[2],
            XmlEvent::ProcessingInstruction {
                target: "go".into(),
                data: "now".into()
            }
        );
    }

    #[test]
    fn entities_in_text_and_attrs() {
        let evs = events("<a t=\"&lt;&#65;&gt;\">x &amp; y</a>").unwrap();
        match &evs[0] {
            XmlEvent::StartElement { attributes, .. } => {
                assert_eq!(attributes[0].value, "<A>");
            }
            other => panic!("unexpected {other:?}"),
        }
        assert_eq!(evs[1], XmlEvent::Text("x & y".into()));
    }

    #[test]
    fn cdata_is_verbatim() {
        let evs = events("<a><![CDATA[<not & parsed>]]></a>").unwrap();
        assert_eq!(evs[1], XmlEvent::CData("<not & parsed>".into()));
    }

    #[test]
    fn doctype_is_skipped() {
        let evs = events("<!DOCTYPE stations [<!ELEMENT s EMPTY>]><stations/>").unwrap();
        assert!(matches!(evs[0], XmlEvent::StartElement { .. }));
    }

    #[test]
    fn mismatched_tags_error() {
        let err = events("<a><b></a></b>").unwrap_err();
        assert!(matches!(err.kind, XmlErrorKind::MismatchedTag { .. }));
    }

    #[test]
    fn unbalanced_close_error() {
        let err = events("<a/></a>").unwrap_err();
        assert!(matches!(
            err.kind,
            XmlErrorKind::UnbalancedClose(_) | XmlErrorKind::BadDocumentStructure(_)
        ));
    }

    #[test]
    fn duplicate_attribute_error() {
        let err = events("<a x=\"1\" x=\"2\"/>").unwrap_err();
        assert!(matches!(err.kind, XmlErrorKind::DuplicateAttribute(_)));
    }

    #[test]
    fn multiple_roots_error() {
        let err = events("<a/><b/>").unwrap_err();
        assert!(matches!(err.kind, XmlErrorKind::BadDocumentStructure(_)));
    }

    #[test]
    fn truncated_document_error() {
        let err = events("<a><b>").unwrap_err();
        assert!(matches!(err.kind, XmlErrorKind::BadDocumentStructure(_)));
    }

    #[test]
    fn empty_document_error() {
        let err = events("   ").unwrap_err();
        assert!(matches!(err.kind, XmlErrorKind::BadDocumentStructure(_)));
    }

    #[test]
    fn text_outside_root_error() {
        let err = events("junk<a/>").unwrap_err();
        assert!(matches!(err.kind, XmlErrorKind::BadDocumentStructure(_)));
    }

    #[test]
    fn whitespace_between_markup_is_preserved_inside_root() {
        let evs = events("<a> <b/> </a>").unwrap();
        assert_eq!(evs[1], XmlEvent::Text(" ".into()));
        assert_eq!(evs[4], XmlEvent::Text(" ".into()));
    }

    #[test]
    fn error_positions_are_tracked() {
        let err = events("<a>\n  <b x=1/>\n</a>").unwrap_err();
        assert_eq!(err.line, 2);
        assert!(err.column > 1);
    }

    #[test]
    fn byte_order_mark_is_skipped() {
        let evs = events("\u{FEFF}<?xml version=\"1.0\"?><r/>").unwrap();
        assert!(matches!(evs[0], XmlEvent::Declaration { .. }));
        assert!(matches!(evs[1], XmlEvent::StartElement { .. }));
    }

    #[test]
    fn deeply_nested_document() {
        let mut doc = String::new();
        for i in 0..200 {
            doc.push_str(&format!("<n{i}>"));
        }
        for i in (0..200).rev() {
            doc.push_str(&format!("</n{i}>"));
        }
        assert!(events(&doc).is_ok());
    }
}
