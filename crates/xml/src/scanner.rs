//! Low-level character scanner with line/column tracking.

use crate::error::{XmlError, XmlErrorKind};

/// A cursor over the input text that tracks the current line and column and
/// produces positioned errors.
#[derive(Debug, Clone)]
pub struct Scanner<'a> {
    input: &'a str,
    pos: usize,
    line: u32,
    column: u32,
}

impl<'a> Scanner<'a> {
    /// Creates a scanner at the start of `input`.
    pub fn new(input: &'a str) -> Self {
        Self {
            input,
            pos: 0,
            line: 1,
            column: 1,
        }
    }

    /// Byte offset of the cursor.
    pub fn pos(&self) -> usize {
        self.pos
    }

    /// 1-based line of the cursor.
    pub fn line(&self) -> u32 {
        self.line
    }

    /// 1-based column of the cursor.
    pub fn column(&self) -> u32 {
        self.column
    }

    /// Whether all input has been consumed.
    pub fn is_eof(&self) -> bool {
        self.pos >= self.input.len()
    }

    /// The next character without consuming it.
    pub fn peek(&self) -> Option<char> {
        self.input[self.pos..].chars().next()
    }

    /// The character after the next one, without consuming anything.
    pub fn peek2(&self) -> Option<char> {
        let mut it = self.input[self.pos..].chars();
        it.next();
        it.next()
    }

    /// Consumes and returns one character.
    pub fn bump(&mut self) -> Option<char> {
        let c = self.peek()?;
        self.pos += c.len_utf8();
        if c == '\n' {
            self.line += 1;
            self.column = 1;
        } else {
            self.column += 1;
        }
        Some(c)
    }

    /// Whether the remaining input starts with `s`.
    pub fn starts_with(&self, s: &str) -> bool {
        self.input[self.pos..].starts_with(s)
    }

    /// Consumes `s` if the input starts with it; returns whether it did.
    pub fn eat(&mut self, s: &str) -> bool {
        if self.starts_with(s) {
            for _ in s.chars() {
                self.bump();
            }
            true
        } else {
            false
        }
    }

    /// Consumes `s` or errors with `UnexpectedChar`/`UnexpectedEof`.
    pub fn expect(&mut self, s: &str) -> Result<(), XmlError> {
        if self.eat(s) {
            Ok(())
        } else {
            Err(self.error_here())
        }
    }

    /// Skips XML whitespace (space, tab, CR, LF).
    pub fn skip_whitespace(&mut self) {
        while matches!(self.peek(), Some(' ' | '\t' | '\r' | '\n')) {
            self.bump();
        }
    }

    /// Consumes characters while `pred` holds, returning the consumed slice.
    pub fn take_while(&mut self, pred: impl Fn(char) -> bool) -> &'a str {
        let start = self.pos;
        while let Some(c) = self.peek() {
            if !pred(c) {
                break;
            }
            self.bump();
        }
        &self.input[start..self.pos]
    }

    /// Consumes input up to (not including) the first occurrence of `needle`,
    /// returning the consumed slice, or `None` (consuming nothing extra) if
    /// the needle never appears.
    pub fn take_until(&mut self, needle: &str) -> Option<&'a str> {
        let rest = &self.input[self.pos..];
        let idx = rest.find(needle)?;
        let out = &rest[..idx];
        for _ in out.chars() {
            self.bump();
        }
        Some(out)
    }

    /// Error for an unexpected character (or EOF) at the cursor.
    pub fn error_here(&self) -> XmlError {
        match self.peek() {
            Some(c) => XmlError::new(XmlErrorKind::UnexpectedChar(c), self.line, self.column),
            None => XmlError::new(XmlErrorKind::UnexpectedEof, self.line, self.column),
        }
    }

    /// Error of an explicit kind at the cursor.
    pub fn error(&self, kind: XmlErrorKind) -> XmlError {
        XmlError::new(kind, self.line, self.column)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn tracks_lines_and_columns() {
        let mut s = Scanner::new("ab\ncd");
        assert_eq!((s.line(), s.column()), (1, 1));
        s.bump();
        s.bump();
        assert_eq!((s.line(), s.column()), (1, 3));
        s.bump(); // newline
        assert_eq!((s.line(), s.column()), (2, 1));
        s.bump();
        assert_eq!((s.line(), s.column()), (2, 2));
    }

    #[test]
    fn eat_and_expect() {
        let mut s = Scanner::new("<?xml?>");
        assert!(s.eat("<?xml"));
        assert!(!s.eat("version"));
        assert!(s.expect("?>").is_ok());
        assert!(s.is_eof());
        assert!(matches!(
            s.expect(">").unwrap_err().kind,
            XmlErrorKind::UnexpectedEof
        ));
    }

    #[test]
    fn take_until_finds_needle() {
        let mut s = Scanner::new("hello-->rest");
        assert_eq!(s.take_until("-->"), Some("hello"));
        assert!(s.starts_with("-->"));
    }

    #[test]
    fn take_until_missing_needle() {
        let mut s = Scanner::new("no terminator");
        assert_eq!(s.take_until("-->"), None);
        assert_eq!(s.pos(), 0);
    }

    #[test]
    fn take_while_unicode() {
        let mut s = Scanner::new("αβγ<");
        assert_eq!(s.take_while(|c| c != '<'), "αβγ");
        assert_eq!(s.peek(), Some('<'));
    }
}
