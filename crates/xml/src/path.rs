//! XPath-lite: the tiny selector language cube definitions use to locate
//! record elements, dimension values and measures inside a feed document.
//!
//! Grammar (informal):
//!
//! ```text
//! path      := "/"? step ("/" step)* ("/" leaf)?
//! step      := ("/")? name predicate?          -- leading "//" = descendant
//! name      := NCName | "*"
//! predicate := "[" digits "]" | "[@" name "='" value "'" "]"
//! leaf      := "@" name | "text()"
//! ```
//!
//! Examples: `/stations/station`, `//station[@id='42']/name/text()`,
//! `@updated`, `readings/reading[2]/value/text()`.

use crate::dom::Element;
use std::fmt;

/// How a step walks the tree.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Axis {
    /// Direct children.
    Child,
    /// Any descendant (the `//` axis), including children.
    Descendant,
}

/// Optional filter on a step.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Predicate {
    /// 1-based position among the step's matches.
    Index(usize),
    /// Requires `@name='value'`.
    AttrEquals {
        /// Attribute name.
        name: String,
        /// Required value.
        value: String,
    },
}

/// One navigation step.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Step {
    /// Child or descendant axis.
    pub axis: Axis,
    /// Element name, or `*` for any.
    pub name: String,
    /// Optional predicate filter.
    pub predicate: Option<Predicate>,
}

/// What the path ultimately extracts.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Leaf {
    /// The matched elements themselves.
    Elements,
    /// Text content of the matched elements.
    Text,
    /// An attribute of the matched elements.
    Attr(String),
}

/// Parse error for a path expression.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct PathError {
    /// Human-readable description.
    pub message: String,
}

impl fmt::Display for PathError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "invalid path: {}", self.message)
    }
}

impl std::error::Error for PathError {}

fn err(message: impl Into<String>) -> PathError {
    PathError {
        message: message.into(),
    }
}

/// A compiled path expression.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Path {
    /// Navigation steps, in order.
    pub steps: Vec<Step>,
    /// Value extraction at the end.
    pub leaf: Leaf,
    /// Whether the path began with `/` (anchored at the document root
    /// element rather than evaluated relative to the context element).
    pub absolute: bool,
}

impl Path {
    /// Compiles a path expression.
    pub fn parse(expr: &str) -> Result<Path, PathError> {
        let expr = expr.trim();
        if expr.is_empty() {
            return Err(err("empty expression"));
        }
        let mut rest = expr;
        let absolute = rest.starts_with('/') && !rest.starts_with("//");
        let mut steps = Vec::new();
        let mut leaf = Leaf::Elements;

        while !rest.is_empty() {
            let axis = if let Some(r) = rest.strip_prefix("//") {
                rest = r;
                Axis::Descendant
            } else if let Some(r) = rest.strip_prefix('/') {
                rest = r;
                Axis::Child
            } else if steps.is_empty() {
                Axis::Child
            } else {
                return Err(err(format!("expected '/' before {rest:?}")));
            };
            if rest.is_empty() {
                return Err(err("trailing '/'"));
            }
            // Leaf selectors terminate the path.
            if let Some(r) = rest.strip_prefix('@') {
                if r.is_empty() {
                    return Err(err("'@' with no attribute name"));
                }
                if !r.chars().all(is_name_char) {
                    return Err(err(format!("bad attribute name {r:?}")));
                }
                leaf = Leaf::Attr(r.to_string());
                break;
            }
            if rest == "text()" {
                leaf = Leaf::Text;
                break;
            }
            // Element step: name, optional [predicate].
            let name_end = rest.find(['/', '[']).unwrap_or(rest.len());
            let name = &rest[..name_end];
            if name.is_empty() || (name != "*" && !name.chars().all(is_name_char)) {
                return Err(err(format!("bad step name {name:?}")));
            }
            rest = &rest[name_end..];
            let mut predicate = None;
            if let Some(r) = rest.strip_prefix('[') {
                let close = r.find(']').ok_or_else(|| err("unterminated '['"))?;
                let body = &r[..close];
                rest = &r[close + 1..];
                predicate = Some(parse_predicate(body)?);
            }
            steps.push(Step {
                axis,
                name: name.to_string(),
                predicate,
            });
        }
        if steps.is_empty() && leaf == Leaf::Elements {
            return Err(err("expression selects nothing"));
        }
        Ok(Path {
            steps,
            leaf,
            absolute,
        })
    }

    /// Evaluates the path, returning matched elements.
    ///
    /// For a leaf of `@attr` or `text()` the returned elements are the ones
    /// the leaf extracts from; use [`Path::select_values`] to get strings.
    pub fn select<'a>(&self, context: &'a Element) -> Vec<&'a Element> {
        let mut current: Vec<&Element> = vec![context];
        for (i, step) in self.steps.iter().enumerate() {
            // For absolute paths the first step names the root element itself
            // (like `/stations/station` where context *is* `<stations>`).
            let mut next: Vec<&Element> = Vec::new();
            if i == 0 && self.absolute {
                if step.name == "*" || context.name == step.name {
                    next.push(context);
                }
            } else {
                for el in &current {
                    match step.axis {
                        Axis::Child => {
                            next.extend(
                                el.child_elements()
                                    .filter(|c| step.name == "*" || c.name == step.name),
                            );
                        }
                        Axis::Descendant => collect_descendants(el, &step.name, &mut next),
                    }
                }
            }
            if let Some(pred) = &step.predicate {
                next = apply_predicate(next, pred);
            }
            if next.is_empty() {
                return Vec::new();
            }
            current = next;
        }
        current
    }

    /// Evaluates the path and extracts the leaf values.
    pub fn select_values(&self, context: &Element) -> Vec<String> {
        let elements = self.select(context);
        match &self.leaf {
            Leaf::Elements => elements.iter().map(|e| e.text()).collect(),
            Leaf::Text => elements.iter().map(|e| e.text()).collect(),
            Leaf::Attr(name) => elements
                .iter()
                .filter_map(|e| e.attr(name).map(str::to_string))
                .collect(),
        }
    }

    /// First leaf value, if any.
    pub fn select_first(&self, context: &Element) -> Option<String> {
        self.select_values(context).into_iter().next()
    }
}

fn is_name_char(c: char) -> bool {
    c.is_alphanumeric() || matches!(c, '_' | '-' | '.' | ':')
}

fn parse_predicate(body: &str) -> Result<Predicate, PathError> {
    if let Some(r) = body.strip_prefix('@') {
        let eq = r.find('=').ok_or_else(|| err("predicate missing '='"))?;
        let name = &r[..eq];
        let value = &r[eq + 1..];
        let value = value
            .strip_prefix('\'')
            .and_then(|v| v.strip_suffix('\''))
            .ok_or_else(|| err("predicate value must be single-quoted"))?;
        if name.is_empty() || !name.chars().all(is_name_char) {
            return Err(err(format!("bad predicate attribute {name:?}")));
        }
        return Ok(Predicate::AttrEquals {
            name: name.to_string(),
            value: value.to_string(),
        });
    }
    let n: usize = body
        .parse()
        .map_err(|_| err(format!("bad predicate {body:?}")))?;
    if n == 0 {
        return Err(err("position predicates are 1-based"));
    }
    Ok(Predicate::Index(n))
}

fn apply_predicate<'a>(matches: Vec<&'a Element>, pred: &Predicate) -> Vec<&'a Element> {
    match pred {
        Predicate::Index(n) => matches.into_iter().skip(n - 1).take(1).collect(),
        Predicate::AttrEquals { name, value } => matches
            .into_iter()
            .filter(|e| e.attr(name) == Some(value.as_str()))
            .collect(),
    }
}

fn collect_descendants<'a>(el: &'a Element, name: &str, out: &mut Vec<&'a Element>) {
    for child in el.child_elements() {
        if name == "*" || child.name == name {
            out.push(child);
        }
        collect_descendants(child, name, out);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::dom::Document;

    const FEED: &str = r#"<stations updated="10:00">
      <station id="17"><name>Fenian St</name><bikes>3</bikes></station>
      <station id="42"><name>Smithfield</name><bikes>11</bikes></station>
      <meta><source kind="bikes"><name>dublinbikes</name></source></meta>
    </stations>"#;

    fn feed() -> Document {
        Document::parse(FEED).unwrap()
    }

    #[test]
    fn absolute_child_path() {
        let doc = feed();
        let p = Path::parse("/stations/station").unwrap();
        assert_eq!(p.select(&doc.root).len(), 2);
    }

    #[test]
    fn absolute_path_requires_root_name_match() {
        let doc = feed();
        let p = Path::parse("/wrong/station").unwrap();
        assert!(p.select(&doc.root).is_empty());
    }

    #[test]
    fn relative_path_and_text_leaf() {
        let doc = feed();
        let station = doc.root.first_child("station").unwrap();
        let p = Path::parse("name/text()").unwrap();
        assert_eq!(p.select_values(station), vec!["Fenian St"]);
    }

    #[test]
    fn attribute_leaf() {
        let doc = feed();
        let station = doc.root.children_named("station").nth(1).unwrap();
        let p = Path::parse("@id").unwrap();
        assert_eq!(p.select_first(station), Some("42".to_string()));
    }

    #[test]
    fn descendant_axis() {
        let doc = feed();
        let p = Path::parse("//name/text()").unwrap();
        assert_eq!(
            p.select_values(&doc.root),
            vec!["Fenian St", "Smithfield", "dublinbikes"]
        );
    }

    #[test]
    fn attr_predicate() {
        let doc = feed();
        let p = Path::parse("//station[@id='42']/bikes/text()").unwrap();
        assert_eq!(p.select_values(&doc.root), vec!["11"]);
    }

    #[test]
    fn index_predicate_is_one_based() {
        let doc = feed();
        let p = Path::parse("station[2]/name/text()").unwrap();
        assert_eq!(p.select_values(&doc.root), vec!["Smithfield"]);
        let p = Path::parse("station[3]").unwrap();
        assert!(p.select(&doc.root).is_empty());
    }

    #[test]
    fn wildcard_step() {
        let doc = feed();
        let p = Path::parse("station/*").unwrap();
        assert_eq!(p.select(&doc.root).len(), 4);
    }

    #[test]
    fn bare_attribute_path() {
        let doc = feed();
        let p = Path::parse("@updated").unwrap();
        assert_eq!(p.select_first(&doc.root), Some("10:00".to_string()));
    }

    #[test]
    fn missing_attribute_yields_nothing() {
        let doc = feed();
        let p = Path::parse("station/@nope").unwrap();
        assert!(p.select_values(&doc.root).is_empty());
    }

    #[test]
    fn parse_errors() {
        for bad in [
            "", "/", "a//", "a/[1]", "a[b]", "a[@x=y]", "a[0]", "@", "a/@", "a b",
        ] {
            assert!(Path::parse(bad).is_err(), "{bad:?} should not parse");
        }
    }

    #[test]
    fn parse_structure() {
        let p = Path::parse("//station[@id='7']/name/text()").unwrap();
        assert!(!p.absolute);
        assert_eq!(p.steps.len(), 2);
        assert_eq!(p.steps[0].axis, Axis::Descendant);
        assert_eq!(
            p.steps[0].predicate,
            Some(Predicate::AttrEquals {
                name: "id".into(),
                value: "7".into()
            })
        );
        assert_eq!(p.leaf, Leaf::Text);
    }
}
