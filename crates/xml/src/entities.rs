//! Predefined entities and character references.

use crate::error::{XmlError, XmlErrorKind};
use crate::scanner::Scanner;

/// Resolves the entity/character reference whose `&` has just been consumed.
///
/// On entry the scanner sits after `&`; on success it sits after `;` and the
/// decoded character(s) are appended to `out`.
pub fn resolve_reference(s: &mut Scanner<'_>, out: &mut String) -> Result<(), XmlError> {
    if s.eat("#") {
        let (radix, digits) = if s.eat("x") {
            (16, s.take_while(|c| c.is_ascii_hexdigit()))
        } else {
            (10, s.take_while(|c| c.is_ascii_digit()))
        };
        let raw = digits.to_string();
        s.expect(";")
            .map_err(|e| XmlError::new(XmlErrorKind::BadCharRef(raw.clone()), e.line, e.column))?;
        let code = u32::from_str_radix(&raw, radix)
            .map_err(|_| s.error(XmlErrorKind::BadCharRef(raw.clone())))?;
        let c = char::from_u32(code).ok_or_else(|| s.error(XmlErrorKind::BadCharRef(raw)))?;
        out.push(c);
        return Ok(());
    }
    let name = s.take_while(|c| c.is_ascii_alphanumeric()).to_string();
    s.expect(";")
        .map_err(|e| XmlError::new(XmlErrorKind::UnknownEntity(name.clone()), e.line, e.column))?;
    match name.as_str() {
        "lt" => out.push('<'),
        "gt" => out.push('>'),
        "amp" => out.push('&'),
        "apos" => out.push('\''),
        "quot" => out.push('"'),
        _ => return Err(s.error(XmlErrorKind::UnknownEntity(name))),
    }
    Ok(())
}

/// Escapes text content (`<`, `&`, and `>` for robustness).
pub fn escape_text(text: &str, out: &mut String) {
    for c in text.chars() {
        match c {
            '<' => out.push_str("&lt;"),
            '>' => out.push_str("&gt;"),
            '&' => out.push_str("&amp;"),
            _ => out.push(c),
        }
    }
}

/// Escapes an attribute value for a double-quoted attribute.
pub fn escape_attr(text: &str, out: &mut String) {
    for c in text.chars() {
        match c {
            '<' => out.push_str("&lt;"),
            '>' => out.push_str("&gt;"),
            '&' => out.push_str("&amp;"),
            '"' => out.push_str("&quot;"),
            _ => out.push(c),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn resolve(input: &str) -> Result<String, XmlError> {
        let mut s = Scanner::new(input);
        let mut out = String::new();
        resolve_reference(&mut s, &mut out)?;
        Ok(out)
    }

    #[test]
    fn predefined_entities() {
        assert_eq!(resolve("lt;").unwrap(), "<");
        assert_eq!(resolve("gt;").unwrap(), ">");
        assert_eq!(resolve("amp;").unwrap(), "&");
        assert_eq!(resolve("apos;").unwrap(), "'");
        assert_eq!(resolve("quot;").unwrap(), "\"");
    }

    #[test]
    fn char_refs() {
        assert_eq!(resolve("#65;").unwrap(), "A");
        assert_eq!(resolve("#x41;").unwrap(), "A");
        assert_eq!(resolve("#x1F6B2;").unwrap(), "🚲");
    }

    #[test]
    fn bad_refs_are_rejected() {
        assert!(matches!(
            resolve("bogus;").unwrap_err().kind,
            XmlErrorKind::UnknownEntity(_)
        ));
        assert!(matches!(
            resolve("#xD800;").unwrap_err().kind, // surrogate
            XmlErrorKind::BadCharRef(_)
        ));
        assert!(matches!(
            resolve("#;").unwrap_err().kind,
            XmlErrorKind::BadCharRef(_)
        ));
        // Missing terminating semicolon.
        assert!(resolve("#65").is_err());
        assert!(resolve("lt").is_err());
    }

    #[test]
    fn escaping_roundtrip_shape() {
        let mut out = String::new();
        escape_text("a<b&c>d", &mut out);
        assert_eq!(out, "a&lt;b&amp;c&gt;d");
        let mut out = String::new();
        escape_attr("say \"hi\" & go", &mut out);
        assert_eq!(out, "say &quot;hi&quot; &amp; go");
    }
}
