//! XML parse errors with line/column positions.

use std::fmt;

/// What went wrong while parsing.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum XmlErrorKind {
    /// Input ended in the middle of a construct.
    UnexpectedEof,
    /// A character that cannot start/continue the current construct.
    UnexpectedChar(char),
    /// `</b>` closed an element opened as `<a>`.
    MismatchedTag {
        /// Name on the open tag.
        expected: String,
        /// Name on the close tag.
        found: String,
    },
    /// Close tag with no matching open tag.
    UnbalancedClose(String),
    /// The same attribute appeared twice on one element.
    DuplicateAttribute(String),
    /// `&name;` where `name` is not a predefined entity.
    UnknownEntity(String),
    /// `&#...;` that does not denote a valid character.
    BadCharRef(String),
    /// Document contained no root element, or trailing garbage after it.
    BadDocumentStructure(String),
    /// Name token was empty or started with an invalid character.
    BadName,
}

/// An XML parse error at a specific position.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct XmlError {
    /// The failure category.
    pub kind: XmlErrorKind,
    /// 1-based line of the offending character.
    pub line: u32,
    /// 1-based column of the offending character.
    pub column: u32,
}

impl XmlError {
    /// Creates an error at a position.
    pub fn new(kind: XmlErrorKind, line: u32, column: u32) -> Self {
        Self { kind, line, column }
    }
}

impl fmt::Display for XmlError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "XML error at {}:{}: ", self.line, self.column)?;
        match &self.kind {
            XmlErrorKind::UnexpectedEof => write!(f, "unexpected end of input"),
            XmlErrorKind::UnexpectedChar(c) => write!(f, "unexpected character {c:?}"),
            XmlErrorKind::MismatchedTag { expected, found } => {
                write!(
                    f,
                    "mismatched tag: expected </{expected}>, found </{found}>"
                )
            }
            XmlErrorKind::UnbalancedClose(name) => {
                write!(f, "close tag </{name}> without matching open tag")
            }
            XmlErrorKind::DuplicateAttribute(name) => {
                write!(f, "duplicate attribute {name:?}")
            }
            XmlErrorKind::UnknownEntity(name) => write!(f, "unknown entity &{name};"),
            XmlErrorKind::BadCharRef(raw) => write!(f, "invalid character reference &#{raw};"),
            XmlErrorKind::BadDocumentStructure(msg) => write!(f, "bad document: {msg}"),
            XmlErrorKind::BadName => write!(f, "invalid name token"),
        }
    }
}

impl std::error::Error for XmlError {}
