//! Escaping XML writer used by the data generator and DOM serializer.

use crate::dom::{Element, Node};
use crate::entities::{escape_attr, escape_text};

/// Builds XML text with correct escaping.
///
/// Two usage styles are supported: the structured [`write_element`]
/// (serializing a DOM subtree) and the streaming `start`/`attr`/`text`/`end`
/// API used by the high-volume feed generator, which avoids building a DOM.
///
/// [`write_element`]: XmlWriter::write_element
#[derive(Debug, Default)]
pub struct XmlWriter {
    out: String,
    /// Stack of open element names for the streaming API.
    open: Vec<String>,
    /// True while an open tag's attribute list has not yet been closed by
    /// `>` — the next content write closes it.
    in_open_tag: bool,
}

impl XmlWriter {
    /// Creates an empty writer.
    pub fn new() -> Self {
        Self::default()
    }

    /// Creates a writer with pre-allocated capacity (feeds are large).
    pub fn with_capacity(cap: usize) -> Self {
        Self {
            out: String::with_capacity(cap),
            ..Self::default()
        }
    }

    /// Finishes and returns the document text.
    ///
    /// Panics if streaming elements are still open — that is a programming
    /// error in the caller, not a data error.
    pub fn into_string(self) -> String {
        assert!(
            self.open.is_empty(),
            "XmlWriter dropped with {} unclosed element(s): {:?}",
            self.open.len(),
            self.open
        );
        self.out
    }

    /// Bytes written so far.
    pub fn len(&self) -> usize {
        self.out.len()
    }

    /// Whether nothing has been written.
    pub fn is_empty(&self) -> bool {
        self.out.is_empty()
    }

    /// Writes `<?xml version=".." encoding=".."?>`.
    pub fn write_declaration(&mut self, version: &str, encoding: Option<&str>) {
        self.out.push_str("<?xml version=\"");
        self.out.push_str(version);
        self.out.push('"');
        if let Some(enc) = encoding {
            self.out.push_str(" encoding=\"");
            self.out.push_str(enc);
            self.out.push('"');
        }
        self.out.push_str("?>\n");
    }

    fn close_open_tag(&mut self) {
        if self.in_open_tag {
            self.out.push('>');
            self.in_open_tag = false;
        }
    }

    /// Streaming: opens `<name`.
    pub fn start(&mut self, name: &str) -> &mut Self {
        self.close_open_tag();
        self.out.push('<');
        self.out.push_str(name);
        self.open.push(name.to_string());
        self.in_open_tag = true;
        self
    }

    /// Streaming: writes one attribute on the currently opening tag.
    ///
    /// Panics if no tag is open for attributes (programming error).
    pub fn attr(&mut self, name: &str, value: &str) -> &mut Self {
        assert!(self.in_open_tag, "attr({name}) outside an open tag");
        self.out.push(' ');
        self.out.push_str(name);
        self.out.push_str("=\"");
        escape_attr(value, &mut self.out);
        self.out.push('"');
        self
    }

    /// Streaming: writes escaped character data.
    pub fn text(&mut self, text: &str) -> &mut Self {
        self.close_open_tag();
        escape_text(text, &mut self.out);
        self
    }

    /// Streaming: writes raw, pre-escaped content (used for newlines/indent).
    pub fn raw(&mut self, raw: &str) -> &mut Self {
        self.close_open_tag();
        self.out.push_str(raw);
        self
    }

    /// Streaming: closes the most recently opened element.
    ///
    /// Panics on underflow (programming error).
    pub fn end(&mut self) -> &mut Self {
        let name = self.open.pop().expect("end() with no open element");
        if self.in_open_tag {
            self.out.push_str("/>");
            self.in_open_tag = false;
        } else {
            self.out.push_str("</");
            self.out.push_str(&name);
            self.out.push('>');
        }
        self
    }

    /// Streaming convenience: `<name>text</name>`.
    pub fn leaf(&mut self, name: &str, text: &str) -> &mut Self {
        self.start(name).text(text).end()
    }

    /// Serializes a DOM element and its subtree.
    pub fn write_element(&mut self, element: &Element) {
        self.start(&element.name);
        for a in &element.attributes {
            self.attr(&a.name, &a.value);
        }
        for child in &element.children {
            match child {
                Node::Element(e) => self.write_element(e),
                Node::Text(t) => {
                    self.text(t);
                }
            }
        }
        self.end();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::dom::Document;
    use sc_encoding::Rng;

    #[test]
    fn streaming_api_shapes_tags() {
        let mut w = XmlWriter::new();
        w.start("stations").attr("city", "Dublin");
        w.start("station").attr("id", "1");
        w.leaf("name", "Fenian St");
        w.end();
        w.start("empty").end();
        w.end();
        assert_eq!(
            w.into_string(),
            "<stations city=\"Dublin\"><station id=\"1\"><name>Fenian St</name></station><empty/></stations>"
        );
    }

    #[test]
    fn escaping_in_both_positions() {
        let mut w = XmlWriter::new();
        w.start("a").attr("q", "x<&\">y").text("1 < 2 & 3").end();
        let s = w.into_string();
        assert_eq!(s, "<a q=\"x&lt;&amp;&quot;&gt;y\">1 &lt; 2 &amp; 3</a>");
        // And it must re-parse to the same logical values.
        let doc = Document::parse(&s).unwrap();
        assert_eq!(doc.root.attr("q"), Some("x<&\">y"));
        assert_eq!(doc.root.text(), "1 < 2 & 3");
    }

    #[test]
    #[should_panic(expected = "unclosed element")]
    fn unbalanced_writer_panics() {
        let mut w = XmlWriter::new();
        w.start("a");
        let _ = w.into_string();
    }

    #[test]
    fn declaration_format() {
        let mut w = XmlWriter::new();
        w.write_declaration("1.0", Some("UTF-8"));
        w.start("r").end();
        assert_eq!(
            w.into_string(),
            "<?xml version=\"1.0\" encoding=\"UTF-8\"?>\n<r/>"
        );
    }

    /// Any text/attribute payload must survive a write→parse roundtrip.
    /// Deterministic randomized sweep (seeded xorshift, no proptest — the
    /// build is offline).
    #[test]
    fn escape_roundtrip_random() {
        let mut rng = Rng::new(0xE5CA);
        for _ in 0..1024 {
            let text = rng.gen_ascii(48);
            let attr = rng.gen_ascii(24);
            let mut w = XmlWriter::new();
            w.start("n").attr("a", &attr).text(&text).end();
            let s = w.into_string();
            let doc = Document::parse(&s).unwrap();
            assert_eq!(doc.root.attr("a").unwrap(), attr.as_str());
            assert_eq!(doc.root.text(), text, "serialized: {s}");
        }
    }
}
