//! The paper's evaluation windows.
//!
//! §5 builds one cube per time period of bikes data: one day, one week, one
//! month, two months and six months. [`Window`] names those periods and
//! derives their boundaries from a start date.

use crate::datetime::DateTime;
use std::fmt;

/// An evaluation window (Table 2's five datasets).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum Window {
    /// One day.
    Day,
    /// One week.
    Week,
    /// One month (30 days).
    Month,
    /// Two months (the paper's `TMonth`).
    TMonth,
    /// Six months (the paper's `SMonth`).
    SMonth,
}

impl Window {
    /// All windows, smallest first.
    pub const ALL: [Window; 5] = [
        Window::Day,
        Window::Week,
        Window::Month,
        Window::TMonth,
        Window::SMonth,
    ];

    /// The paper's label for the window.
    pub fn label(self) -> &'static str {
        match self {
            Window::Day => "Day",
            Window::Week => "Week",
            Window::Month => "Month",
            Window::TMonth => "TMonth",
            Window::SMonth => "SMonth",
        }
    }

    /// Window length in days (months normalized to 30 days).
    pub fn days(self) -> i64 {
        match self {
            Window::Day => 1,
            Window::Week => 7,
            Window::Month => 30,
            Window::TMonth => 60,
            Window::SMonth => 180,
        }
    }

    /// Window length in minutes.
    pub fn minutes(self) -> i64 {
        self.days() * 24 * 60
    }

    /// End of a window starting at `start` (exclusive).
    pub fn end(self, start: DateTime) -> DateTime {
        start.add_days(self.days())
    }

    /// Whether `t` falls inside `[start, start + window)`.
    pub fn contains(self, start: DateTime, t: DateTime) -> bool {
        t >= start && t < self.end(start)
    }

    /// Parses a paper label (case-insensitive).
    pub fn parse(s: &str) -> Option<Window> {
        match s.to_ascii_lowercase().as_str() {
            "day" => Some(Window::Day),
            "week" => Some(Window::Week),
            "month" => Some(Window::Month),
            "tmonth" => Some(Window::TMonth),
            "smonth" => Some(Window::SMonth),
            _ => None,
        }
    }
}

impl fmt::Display for Window {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.label())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn lengths_scale() {
        assert_eq!(Window::Day.days(), 1);
        assert_eq!(Window::Week.days(), 7);
        assert_eq!(Window::SMonth.days(), 180);
        assert_eq!(Window::Day.minutes(), 1440);
        assert!(Window::ALL.windows(2).all(|w| w[0].days() < w[1].days()));
    }

    #[test]
    fn containment() {
        let start = DateTime::parse("2015-11-01T00:00:00").unwrap();
        let inside = DateTime::parse("2015-11-01T23:59:59").unwrap();
        let boundary = DateTime::parse("2015-11-02T00:00:00").unwrap();
        assert!(Window::Day.contains(start, inside));
        assert!(!Window::Day.contains(start, boundary));
        assert!(Window::Week.contains(start, boundary));
        assert!(!Window::Day.contains(start, start.add_minutes(-1)));
    }

    #[test]
    fn labels_roundtrip() {
        for w in Window::ALL {
            assert_eq!(Window::parse(w.label()), Some(w));
            assert_eq!(Window::parse(&w.label().to_uppercase()), Some(w));
        }
        assert_eq!(Window::parse("fortnight"), None);
    }
}
