//! Civil date/time, from scratch (no chrono): the ISO-8601 subset the feeds
//! use (`YYYY-MM-DDTHH:MM:SS`), calendar math via the days-from-civil
//! algorithm, and the calendar fields cube dimensions are derived from.

use std::fmt;

/// A civil date-time (no time zone; feeds publish local time).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct DateTime {
    /// Year, e.g. 2015.
    pub year: i32,
    /// Month 1-12.
    pub month: u8,
    /// Day of month 1-31.
    pub day: u8,
    /// Hour 0-23.
    pub hour: u8,
    /// Minute 0-59.
    pub minute: u8,
    /// Second 0-59.
    pub second: u8,
}

/// Days per month in a non-leap year.
const DAYS_IN_MONTH: [u8; 12] = [31, 28, 31, 30, 31, 30, 31, 31, 30, 31, 30, 31];

fn is_leap(year: i32) -> bool {
    (year % 4 == 0 && year % 100 != 0) || year % 400 == 0
}

fn days_in_month(year: i32, month: u8) -> u8 {
    if month == 2 && is_leap(year) {
        29
    } else {
        DAYS_IN_MONTH[(month - 1) as usize]
    }
}

/// Days since 1970-01-01 for a civil date (Howard Hinnant's algorithm).
fn days_from_civil(year: i32, month: u8, day: u8) -> i64 {
    let y = i64::from(year) - i64::from(month <= 2);
    let era = if y >= 0 { y } else { y - 399 } / 400;
    let yoe = y - era * 400;
    let m = i64::from(month);
    let d = i64::from(day);
    let doy = (153 * (if m > 2 { m - 3 } else { m + 9 }) + 2) / 5 + d - 1;
    let doe = yoe * 365 + yoe / 4 - yoe / 100 + doy;
    era * 146_097 + doe - 719_468
}

/// Inverse of [`days_from_civil`].
fn civil_from_days(z: i64) -> (i32, u8, u8) {
    let z = z + 719_468;
    let era = if z >= 0 { z } else { z - 146_096 } / 146_097;
    let doe = z - era * 146_097;
    let yoe = (doe - doe / 1460 + doe / 36_524 - doe / 146_096) / 365;
    let y = yoe + era * 400;
    let doy = doe - (365 * yoe + yoe / 4 - yoe / 100);
    let mp = (5 * doy + 2) / 153;
    let d = doy - (153 * mp + 2) / 5 + 1;
    let m = if mp < 10 { mp + 3 } else { mp - 9 };
    ((y + i64::from(m <= 2)) as i32, m as u8, d as u8)
}

impl DateTime {
    /// Creates a date-time, validating ranges.
    pub fn new(year: i32, month: u8, day: u8, hour: u8, minute: u8, second: u8) -> Option<Self> {
        if !(1..=12).contains(&month)
            || day == 0
            || day > days_in_month(year, month)
            || hour > 23
            || minute > 59
            || second > 59
        {
            return None;
        }
        Some(DateTime {
            year,
            month,
            day,
            hour,
            minute,
            second,
        })
    }

    /// Parses `YYYY-MM-DDTHH:MM:SS` (a space also accepted as separator; a
    /// bare date gets midnight).
    pub fn parse(s: &str) -> Option<DateTime> {
        let s = s.trim();
        let (date, time) = match s.split_once(['T', ' ']) {
            Some((d, t)) => (d, Some(t)),
            None => (s, None),
        };
        let mut dp = date.split('-');
        let year: i32 = dp.next()?.parse().ok()?;
        let month: u8 = dp.next()?.parse().ok()?;
        let day: u8 = dp.next()?.parse().ok()?;
        if dp.next().is_some() {
            return None;
        }
        let (hour, minute, second) = match time {
            None => (0, 0, 0),
            Some(t) => {
                let t = t.trim_end_matches('Z');
                let mut tp = t.split(':');
                let h: u8 = tp.next()?.parse().ok()?;
                let m: u8 = tp.next()?.parse().ok()?;
                let s: u8 = match tp.next() {
                    Some(sec) => sec.parse().ok()?,
                    None => 0,
                };
                if tp.next().is_some() {
                    return None;
                }
                (h, m, s)
            }
        };
        DateTime::new(year, month, day, hour, minute, second)
    }

    /// Seconds since the Unix epoch.
    pub fn to_epoch_seconds(&self) -> i64 {
        days_from_civil(self.year, self.month, self.day) * 86_400
            + i64::from(self.hour) * 3600
            + i64::from(self.minute) * 60
            + i64::from(self.second)
    }

    /// Builds from seconds since the Unix epoch.
    pub fn from_epoch_seconds(secs: i64) -> DateTime {
        let days = secs.div_euclid(86_400);
        let secs = secs.rem_euclid(86_400);
        let (year, month, day) = civil_from_days(days);
        let hour = (secs / 3600) as u8;
        let minute = ((secs % 3600) / 60) as u8;
        let second = (secs % 60) as u8;
        DateTime {
            year,
            month,
            day,
            hour,
            minute,
            second,
        }
    }

    /// This date-time plus whole minutes.
    pub fn add_minutes(&self, minutes: i64) -> DateTime {
        DateTime::from_epoch_seconds(self.to_epoch_seconds() + minutes * 60)
    }

    /// This date-time plus whole days.
    pub fn add_days(&self, days: i64) -> DateTime {
        DateTime::from_epoch_seconds(self.to_epoch_seconds() + days * 86_400)
    }

    /// Day of week, 0 = Monday .. 6 = Sunday.
    pub fn weekday(&self) -> u8 {
        let d = days_from_civil(self.year, self.month, self.day);
        ((d + 3).rem_euclid(7)) as u8
    }

    /// `YYYY-MM-DD`.
    pub fn date_string(&self) -> String {
        format!("{:04}-{:02}-{:02}", self.year, self.month, self.day)
    }

    /// `HH:MM:SS`.
    pub fn time_string(&self) -> String {
        format!("{:02}:{:02}:{:02}", self.hour, self.minute, self.second)
    }
}

impl fmt::Display for DateTime {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}T{}", self.date_string(), self.time_string())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sc_encoding::Rng;

    #[test]
    fn parse_and_format() {
        let dt = DateTime::parse("2016-03-15T10:30:05").unwrap();
        assert_eq!(dt.to_string(), "2016-03-15T10:30:05");
        assert_eq!(DateTime::parse("2016-03-15").unwrap().hour, 0);
        assert_eq!(DateTime::parse("2016-03-15 10:30").unwrap().minute, 30);
        assert_eq!(DateTime::parse("2016-03-15T10:30:05Z").unwrap().second, 5);
    }

    #[test]
    fn rejects_invalid() {
        for bad in [
            "2016-13-01",
            "2016-02-30",
            "2015-02-29",
            "2016-00-10",
            "2016-01-00",
            "2016-01-01T24:00:00",
            "2016-01-01T10:60:00",
            "junk",
            "2016-01-01-01",
        ] {
            assert!(DateTime::parse(bad).is_none(), "{bad:?} should fail");
        }
        // 2016 is a leap year.
        assert!(DateTime::parse("2016-02-29").is_some());
    }

    #[test]
    fn epoch_known_values() {
        assert_eq!(
            DateTime::parse("1970-01-01T00:00:00")
                .unwrap()
                .to_epoch_seconds(),
            0
        );
        assert_eq!(
            DateTime::parse("2016-03-15T00:00:00")
                .unwrap()
                .to_epoch_seconds(),
            1_458_000_000
        );
    }

    #[test]
    fn weekday_known_values() {
        // 2016-03-15 was a Tuesday.
        assert_eq!(DateTime::parse("2016-03-15").unwrap().weekday(), 1);
        // 1970-01-01 was a Thursday.
        assert_eq!(DateTime::parse("1970-01-01").unwrap().weekday(), 3);
    }

    #[test]
    fn arithmetic_crosses_boundaries() {
        let nye = DateTime::parse("2015-12-31T23:59:00").unwrap();
        assert_eq!(nye.add_minutes(1).to_string(), "2016-01-01T00:00:00");
        assert_eq!(nye.add_days(1).to_string(), "2016-01-01T23:59:00");
        let leap = DateTime::parse("2016-02-28T12:00:00").unwrap();
        assert_eq!(leap.add_days(1).date_string(), "2016-02-29");
    }

    // Deterministic randomized sweeps (seeded xorshift, no proptest — the
    // build is offline).

    #[test]
    fn epoch_roundtrip_random() {
        let mut rng = Rng::new(0xDA7E);
        for _ in 0..2048 {
            let secs = rng.gen_between(-4_000_000_000, 9_999_999_999);
            let dt = DateTime::from_epoch_seconds(secs);
            assert_eq!(dt.to_epoch_seconds(), secs);
        }
    }

    #[test]
    fn parse_display_roundtrip_random() {
        let mut rng = Rng::new(0xDA7F);
        for _ in 0..2048 {
            let y = 1900 + rng.gen_range(200) as i32;
            let mo = 1 + rng.gen_range(12) as u8;
            let d = 1 + rng.gen_range(28) as u8;
            let h = rng.gen_range(24) as u8;
            let mi = rng.gen_range(60) as u8;
            let s = rng.gen_range(60) as u8;
            let dt = DateTime::new(y, mo, d, h, mi, s).unwrap();
            assert_eq!(DateTime::parse(&dt.to_string()), Some(dt));
        }
    }
}
