//! # sc-ingest
//!
//! Stream ETL: the layer that turns web-produced smart-city documents (XML
//! or JSON) into DWARF input tuples.
//!
//! The paper's pipeline (after \[2\], \[3\]) reads service feeds — bike shares,
//! car parks, air-quality sensors, auctions, sales — and maintains cubes per
//! time window. This crate provides:
//!
//! * [`CubeDef`] — a declarative mapping from a feed document to
//!   `(dimension_1 ... dimension_n, measure)` tuples: a record path plus one
//!   value path per dimension and for the measure,
//! * [`extract`] — evaluation of a [`CubeDef`] over parsed XML or JSON with
//!   a skip-or-fail policy for malformed records,
//! * [`datetime`] — a from-scratch civil date/time (ISO-8601 subset) used to
//!   derive calendar dimensions and windows,
//! * [`window`] — the paper's evaluation windows (Day / Week / Month /
//!   TMonth / SMonth),
//! * [`pipeline::StreamPipeline`] — feed documents in, cubes out.

pub mod cube_def;
pub mod datetime;
pub mod extract;
pub mod pipeline;
pub mod window;

pub use cube_def::{CubeDef, DimensionSpec, MeasureSpec, SourceFormat, ValuePath};
pub use datetime::DateTime;
pub use extract::{extract_into, ExtractError, ExtractStats, MissingPolicy};
pub use pipeline::StreamPipeline;
pub use window::Window;
