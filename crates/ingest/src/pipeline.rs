//! The stream pipeline: documents in, cubes out.
//!
//! This is the orchestration the paper's §1 describes — "read and transform
//! data streams and ... create the structures (cubes) that higher level
//! applications can exploit". Feed documents (XML/JSON text) are extracted
//! incrementally; when the owner asks, the accumulated tuples become a
//! [`Dwarf`].

use crate::cube_def::CubeDef;
use crate::extract::{extract_text, ExtractError, ExtractStats, MissingPolicy};
use sc_dwarf::{Dwarf, TupleSet};

/// Accumulates extracted tuples across many feed documents.
#[derive(Debug)]
pub struct StreamPipeline {
    def: CubeDef,
    tuples: TupleSet,
    stats: ExtractStats,
    policy: MissingPolicy,
    documents: usize,
}

impl StreamPipeline {
    /// Creates a pipeline for a cube definition.
    pub fn new(def: CubeDef) -> StreamPipeline {
        let tuples = TupleSet::new(&def.schema());
        StreamPipeline {
            def,
            tuples,
            stats: ExtractStats::default(),
            policy: MissingPolicy::Skip,
            documents: 0,
        }
    }

    /// Sets the missing-value policy (default: skip).
    pub fn with_policy(mut self, policy: MissingPolicy) -> Self {
        self.policy = policy;
        self
    }

    /// Ingests one feed document.
    pub fn ingest(&mut self, text: &str) -> Result<ExtractStats, ExtractError> {
        let stats = extract_text(&self.def, text, &mut self.tuples, self.policy)?;
        self.stats.merge(stats);
        self.documents += 1;
        Ok(stats)
    }

    /// Documents ingested so far.
    pub fn document_count(&self) -> usize {
        self.documents
    }

    /// Tuples accumulated so far (before deduplication).
    pub fn tuple_count(&self) -> usize {
        self.tuples.len()
    }

    /// Cumulative extraction counters.
    pub fn stats(&self) -> ExtractStats {
        self.stats
    }

    /// The cube definition.
    pub fn def(&self) -> &CubeDef {
        &self.def
    }

    /// Builds the cube from everything ingested, resetting the pipeline for
    /// the next window.
    pub fn build_cube(&mut self) -> Dwarf {
        let tuples = std::mem::replace(&mut self.tuples, TupleSet::new(&self.def.schema()));
        self.stats = ExtractStats::default();
        self.documents = 0;
        Dwarf::build(self.def.schema(), tuples)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cube_def::TimeField;
    use sc_dwarf::Selection;

    fn feed(day: u8, bikes: [i64; 2]) -> String {
        format!(
            r#"<stations updated="2015-11-{day:02}T10:00:00">
              <station><name>A</name><bikes>{}</bikes></station>
              <station><name>B</name><bikes>{}</bikes></station>
            </stations>"#,
            bikes[0], bikes[1]
        )
    }

    fn def() -> CubeDef {
        CubeDef::xml("/stations/station")
            .timestamp("@updated")
            .time_dimension("day", TimeField::Day)
            .dimension("station", "name/text()")
            .measure("bikes", "bikes/text()")
            .build()
            .unwrap()
    }

    #[test]
    fn multi_document_accumulation() {
        let mut p = StreamPipeline::new(def());
        p.ingest(&feed(1, [3, 5])).unwrap();
        p.ingest(&feed(2, [4, 6])).unwrap();
        assert_eq!(p.document_count(), 2);
        assert_eq!(p.tuple_count(), 4);
        let cube = p.build_cube();
        assert_eq!(cube.tuple_count(), 4);
        assert_eq!(
            cube.point(&[Selection::value("01"), Selection::All]),
            Some(8)
        );
        assert_eq!(
            cube.point(&[Selection::All, Selection::value("B")]),
            Some(11)
        );
        // Pipeline reset for the next window.
        assert_eq!(p.document_count(), 0);
        assert_eq!(p.tuple_count(), 0);
        let empty = p.build_cube();
        assert!(empty.is_empty());
    }

    #[test]
    fn stats_accumulate() {
        let mut p = StreamPipeline::new(def());
        let broken = r#"<stations updated="2015-11-01T10:00:00">
            <station><name>A</name></station>
            <station><name>B</name><bikes>2</bikes></station>
        </stations>"#;
        p.ingest(broken).unwrap();
        p.ingest(broken).unwrap();
        assert_eq!(p.stats().extracted, 2);
        assert_eq!(p.stats().skipped, 2);
    }

    #[test]
    fn bad_document_surfaces_error() {
        let mut p = StreamPipeline::new(def());
        assert!(p.ingest("<oops").is_err());
        assert_eq!(p.document_count(), 0);
    }
}
