//! Cube definitions: the declarative feed→tuple mapping.

use sc_dwarf::{AggFn, CubeSchema};
use sc_json::JsonPath;
use sc_xml::path::Path as XmlPath;

/// Which syntax a feed uses.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SourceFormat {
    /// XML documents, navigated with XPath-lite.
    Xml,
    /// JSON documents, navigated with pointer paths.
    Json,
}

/// A compiled value path for whichever format the cube reads.
#[derive(Debug, Clone)]
pub enum ValuePath {
    /// XPath-lite expression.
    Xml(XmlPath),
    /// JSON pointer expression.
    Json(JsonPath),
}

/// How a dimension value is derived from a record.
#[derive(Debug, Clone)]
pub enum DimensionSpec {
    /// The value at a path, verbatim.
    Path {
        /// Dimension name.
        name: String,
        /// Where the value lives, relative to the record.
        path: ValuePath,
    },
    /// A calendar field of a timestamp found at a path. The timestamp is
    /// parsed once per record and shared by every `TimeField` dimension.
    TimeField {
        /// Dimension name.
        name: String,
        /// Which field of the record timestamp.
        field: TimeField,
    },
}

impl DimensionSpec {
    /// The dimension's name.
    pub fn name(&self) -> &str {
        match self {
            DimensionSpec::Path { name, .. } | DimensionSpec::TimeField { name, .. } => name,
        }
    }
}

/// Calendar fields derivable from the record timestamp.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TimeField {
    /// Four-digit year.
    Year,
    /// Two-digit month.
    Month,
    /// Two-digit day of month.
    Day,
    /// Two-digit hour.
    Hour,
    /// Weekday name (`mon` .. `sun`).
    Weekday,
}

impl TimeField {
    /// Renders the field of `dt` as a dimension value.
    pub fn render(self, dt: &crate::datetime::DateTime) -> String {
        match self {
            TimeField::Year => format!("{:04}", dt.year),
            TimeField::Month => format!("{:02}", dt.month),
            TimeField::Day => format!("{:02}", dt.day),
            TimeField::Hour => format!("{:02}", dt.hour),
            TimeField::Weekday => {
                ["mon", "tue", "wed", "thu", "fri", "sat", "sun"][dt.weekday() as usize].to_string()
            }
        }
    }
}

/// How the measure is derived from a record.
#[derive(Debug, Clone)]
pub enum MeasureSpec {
    /// An integer at a path.
    Path(ValuePath),
    /// Each record contributes 1 (used with [`AggFn::Count`] semantics or
    /// plain row counting).
    One,
}

/// A full feed→cube mapping.
#[derive(Debug, Clone)]
pub struct CubeDef {
    /// Feed syntax.
    pub format: SourceFormat,
    /// Path selecting record elements/values within a document.
    pub record_path: ValuePath,
    /// Path (relative to the document root, not the record) of the document
    /// timestamp, when `TimeField` dimensions are used. Feeds typically
    /// stamp the whole snapshot once.
    pub timestamp_path: Option<ValuePath>,
    /// Dimensions, in cube level order.
    pub dimensions: Vec<DimensionSpec>,
    /// The measure.
    pub measure: MeasureSpec,
    /// Measure name for the schema.
    pub measure_name: String,
    /// Aggregate function for the schema.
    pub agg: AggFn,
}

impl CubeDef {
    /// Starts a builder for an XML feed.
    pub fn xml(record_path: &str) -> CubeDefBuilder {
        CubeDefBuilder {
            format: SourceFormat::Xml,
            record_path: record_path.to_string(),
            timestamp_path: None,
            dimensions: Vec::new(),
            measure: None,
            measure_name: "measure".into(),
            agg: AggFn::Sum,
        }
    }

    /// Starts a builder for a JSON feed.
    pub fn json(record_path: &str) -> CubeDefBuilder {
        CubeDefBuilder {
            format: SourceFormat::Json,
            record_path: record_path.to_string(),
            timestamp_path: None,
            dimensions: Vec::new(),
            measure: None,
            measure_name: "measure".into(),
            agg: AggFn::Sum,
        }
    }

    /// The [`CubeSchema`] this definition produces.
    pub fn schema(&self) -> CubeSchema {
        CubeSchema::new(
            self.dimensions.iter().map(|d| d.name().to_string()),
            self.measure_name.clone(),
        )
        .with_agg(self.agg)
    }
}

/// Builder for [`CubeDef`]; path expressions are compiled at `build` time.
#[derive(Debug)]
pub struct CubeDefBuilder {
    format: SourceFormat,
    record_path: String,
    timestamp_path: Option<String>,
    dimensions: Vec<(String, DimSpecKind)>,
    measure: Option<String>,
    measure_name: String,
    agg: AggFn,
}

#[derive(Debug)]
enum DimSpecKind {
    Path(String),
    Time(TimeField),
}

/// Errors building a definition.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CubeDefError {
    /// Description, naming the offending path.
    pub message: String,
}

impl std::fmt::Display for CubeDefError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "invalid cube definition: {}", self.message)
    }
}

impl std::error::Error for CubeDefError {}

impl CubeDefBuilder {
    /// Declares a dimension fed from a record path.
    pub fn dimension(mut self, name: &str, path: &str) -> Self {
        self.dimensions
            .push((name.to_string(), DimSpecKind::Path(path.to_string())));
        self
    }

    /// Declares a dimension fed from a calendar field of the document
    /// timestamp.
    pub fn time_dimension(mut self, name: &str, field: TimeField) -> Self {
        self.dimensions
            .push((name.to_string(), DimSpecKind::Time(field)));
        self
    }

    /// Sets the document timestamp path (required with `time_dimension`).
    pub fn timestamp(mut self, path: &str) -> Self {
        self.timestamp_path = Some(path.to_string());
        self
    }

    /// Sets the measure path and name.
    pub fn measure(mut self, name: &str, path: &str) -> Self {
        self.measure = Some(path.to_string());
        self.measure_name = name.to_string();
        self
    }

    /// Counts records instead of reading a measure.
    pub fn count_records(mut self, name: &str) -> Self {
        self.measure = None;
        self.measure_name = name.to_string();
        self.agg = AggFn::Count;
        self
    }

    /// Sets the aggregate function.
    pub fn agg(mut self, agg: AggFn) -> Self {
        self.agg = agg;
        self
    }

    fn compile(&self, expr: &str) -> Result<ValuePath, CubeDefError> {
        match self.format {
            SourceFormat::Xml => {
                XmlPath::parse(expr)
                    .map(ValuePath::Xml)
                    .map_err(|e| CubeDefError {
                        message: format!("{expr:?}: {e}"),
                    })
            }
            SourceFormat::Json => {
                JsonPath::parse(expr)
                    .map(ValuePath::Json)
                    .map_err(|e| CubeDefError {
                        message: format!("{expr:?}: {e}"),
                    })
            }
        }
    }

    /// Compiles every path and produces the definition.
    pub fn build(self) -> Result<CubeDef, CubeDefError> {
        if self.dimensions.is_empty() {
            return Err(CubeDefError {
                message: "at least one dimension is required".into(),
            });
        }
        let record_path = self.compile(&self.record_path)?;
        let timestamp_path = match &self.timestamp_path {
            Some(p) => Some(self.compile(p)?),
            None => None,
        };
        let uses_time = self
            .dimensions
            .iter()
            .any(|(_, k)| matches!(k, DimSpecKind::Time(_)));
        if uses_time && timestamp_path.is_none() {
            return Err(CubeDefError {
                message: "time dimensions require .timestamp(path)".into(),
            });
        }
        let mut dimensions = Vec::with_capacity(self.dimensions.len());
        for (name, kind) in &self.dimensions {
            dimensions.push(match kind {
                DimSpecKind::Path(p) => DimensionSpec::Path {
                    name: name.clone(),
                    path: self.compile(p)?,
                },
                DimSpecKind::Time(f) => DimensionSpec::TimeField {
                    name: name.clone(),
                    field: *f,
                },
            });
        }
        let measure = match &self.measure {
            Some(p) => MeasureSpec::Path(self.compile(p)?),
            None => MeasureSpec::One,
        };
        Ok(CubeDef {
            format: self.format,
            record_path,
            timestamp_path,
            dimensions,
            measure,
            measure_name: self.measure_name,
            agg: self.agg,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn xml_builder_produces_schema() {
        let def = CubeDef::xml("/stations/station")
            .timestamp("@updated")
            .time_dimension("year", TimeField::Year)
            .time_dimension("day", TimeField::Day)
            .dimension("station", "name/text()")
            .measure("bikes", "bikes/text()")
            .build()
            .unwrap();
        let schema = def.schema();
        assert_eq!(schema.num_dims(), 3);
        assert_eq!(schema.dimensions(), ["year", "day", "station"]);
        assert_eq!(schema.measure(), "bikes");
    }

    #[test]
    fn json_builder() {
        let def = CubeDef::json("/readings/*")
            .dimension("sensor", "/sensor")
            .count_records("observations")
            .build()
            .unwrap();
        assert_eq!(def.schema().agg(), AggFn::Count);
        assert!(matches!(def.measure, MeasureSpec::One));
    }

    #[test]
    fn time_dimension_requires_timestamp() {
        let err = CubeDef::xml("/s/r")
            .time_dimension("year", TimeField::Year)
            .measure("m", "v/text()")
            .build()
            .unwrap_err();
        assert!(err.message.contains("timestamp"));
    }

    #[test]
    fn bad_paths_are_reported() {
        let err = CubeDef::xml("///")
            .dimension("d", "x/text()")
            .measure("m", "v/text()")
            .build()
            .unwrap_err();
        assert!(err.message.contains("\"///\""));
        let err = CubeDef::json("stations")
            .dimension("d", "/x")
            .measure("m", "/v")
            .build()
            .unwrap_err();
        assert!(err.message.contains("stations"));
    }

    #[test]
    fn no_dimensions_rejected() {
        assert!(CubeDef::xml("/a/b")
            .measure("m", "v/text()")
            .build()
            .is_err());
    }

    #[test]
    fn time_field_rendering() {
        let dt = crate::datetime::DateTime::parse("2016-03-15T09:05:00").unwrap();
        assert_eq!(TimeField::Year.render(&dt), "2016");
        assert_eq!(TimeField::Month.render(&dt), "03");
        assert_eq!(TimeField::Day.render(&dt), "15");
        assert_eq!(TimeField::Hour.render(&dt), "09");
        assert_eq!(TimeField::Weekday.render(&dt), "tue");
    }
}
