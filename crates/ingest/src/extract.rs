//! Evaluating a [`CubeDef`] over parsed documents.

use crate::cube_def::{CubeDef, DimensionSpec, MeasureSpec, SourceFormat, ValuePath};
use crate::datetime::DateTime;
use sc_dwarf::TupleSet;
use sc_json::JsonValue;
use sc_xml::Document;
use std::fmt;

/// What to do when a record lacks a dimension or measure value.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum MissingPolicy {
    /// Skip the record, counting it in [`ExtractStats::skipped`].
    #[default]
    Skip,
    /// Fail the extraction.
    Fail,
}

/// Counters from one extraction pass.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ExtractStats {
    /// Records that produced a tuple.
    pub extracted: usize,
    /// Records skipped for missing/unparseable values.
    pub skipped: usize,
}

impl ExtractStats {
    /// Merges counters from another pass.
    pub fn merge(&mut self, other: ExtractStats) {
        self.extracted += other.extracted;
        self.skipped += other.skipped;
    }
}

/// Extraction failure (under [`MissingPolicy::Fail`], or malformed input).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ExtractError {
    /// Description naming the record and field.
    pub message: String,
}

impl fmt::Display for ExtractError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "extraction failed: {}", self.message)
    }
}

impl std::error::Error for ExtractError {}

fn err(message: impl Into<String>) -> ExtractError {
    ExtractError {
        message: message.into(),
    }
}

/// A parsed document of either format.
#[derive(Debug)]
pub enum ParsedDoc {
    /// Parsed XML.
    Xml(Document),
    /// Parsed JSON.
    Json(JsonValue),
}

impl ParsedDoc {
    /// Parses `text` according to `format`.
    pub fn parse(format: SourceFormat, text: &str) -> Result<ParsedDoc, ExtractError> {
        match format {
            SourceFormat::Xml => Document::parse(text)
                .map(ParsedDoc::Xml)
                .map_err(|e| err(e.to_string())),
            SourceFormat::Json => sc_json::parse(text)
                .map(ParsedDoc::Json)
                .map_err(|e| err(e.to_string())),
        }
    }
}

fn first_value_xml(path: &ValuePath, el: &sc_xml::Element) -> Option<String> {
    match path {
        ValuePath::Xml(p) => p.select_first(el),
        ValuePath::Json(_) => None,
    }
}

fn first_value_json(path: &ValuePath, v: &JsonValue) -> Option<String> {
    match path {
        ValuePath::Json(p) => p.select(v).first().map(|f| f.to_display_string()),
        ValuePath::Xml(_) => None,
    }
}

/// Extracts every record of `doc` into `tuples`.
///
/// The document must have been parsed with the definition's format; a
/// mismatch is an error.
pub fn extract_into(
    def: &CubeDef,
    doc: &ParsedDoc,
    tuples: &mut TupleSet,
    policy: MissingPolicy,
) -> Result<ExtractStats, ExtractError> {
    match (def.format, doc) {
        (SourceFormat::Xml, ParsedDoc::Xml(document)) => extract_xml(def, document, tuples, policy),
        (SourceFormat::Json, ParsedDoc::Json(value)) => extract_json(def, value, tuples, policy),
        _ => Err(err("document format does not match the cube definition")),
    }
}

/// Convenience: parse text and extract.
pub fn extract_text(
    def: &CubeDef,
    text: &str,
    tuples: &mut TupleSet,
    policy: MissingPolicy,
) -> Result<ExtractStats, ExtractError> {
    let doc = ParsedDoc::parse(def.format, text)?;
    extract_into(def, &doc, tuples, policy)
}

fn doc_timestamp_xml(def: &CubeDef, document: &Document) -> Result<Option<DateTime>, ExtractError> {
    match &def.timestamp_path {
        None => Ok(None),
        Some(p) => {
            let raw = first_value_xml(p, &document.root)
                .ok_or_else(|| err("document timestamp not found"))?;
            DateTime::parse(&raw)
                .map(Some)
                .ok_or_else(|| err(format!("unparseable timestamp {raw:?}")))
        }
    }
}

fn extract_xml(
    def: &CubeDef,
    document: &Document,
    tuples: &mut TupleSet,
    policy: MissingPolicy,
) -> Result<ExtractStats, ExtractError> {
    let ValuePath::Xml(record_path) = &def.record_path else {
        return Err(err("record path is not an XML path"));
    };
    let ts = doc_timestamp_xml(def, document)?;
    let mut stats = ExtractStats::default();
    let mut dims: Vec<String> = Vec::with_capacity(def.dimensions.len());
    'records: for record in record_path.select(&document.root) {
        dims.clear();
        for spec in &def.dimensions {
            let value = match spec {
                DimensionSpec::Path { path, .. } => first_value_xml(path, record),
                DimensionSpec::TimeField { field, .. } => ts.as_ref().map(|dt| field.render(dt)),
            };
            match value {
                Some(v) => dims.push(v),
                None => match policy {
                    MissingPolicy::Skip => {
                        stats.skipped += 1;
                        continue 'records;
                    }
                    MissingPolicy::Fail => {
                        return Err(err(format!("record missing dimension {:?}", spec.name())))
                    }
                },
            }
        }
        let measure = match &def.measure {
            MeasureSpec::One => Some(1),
            MeasureSpec::Path(p) => {
                first_value_xml(p, record).and_then(|raw| raw.trim().parse::<i64>().ok())
            }
        };
        match measure {
            Some(m) => {
                tuples.push(dims.iter().map(String::as_str), m);
                stats.extracted += 1;
            }
            None => match policy {
                MissingPolicy::Skip => stats.skipped += 1,
                MissingPolicy::Fail => return Err(err("record missing or non-integer measure")),
            },
        }
    }
    Ok(stats)
}

fn extract_json(
    def: &CubeDef,
    root: &JsonValue,
    tuples: &mut TupleSet,
    policy: MissingPolicy,
) -> Result<ExtractStats, ExtractError> {
    let ValuePath::Json(record_path) = &def.record_path else {
        return Err(err("record path is not a JSON path"));
    };
    let ts = match &def.timestamp_path {
        None => None,
        Some(p) => {
            let raw =
                first_value_json(p, root).ok_or_else(|| err("document timestamp not found"))?;
            Some(
                DateTime::parse(&raw)
                    .ok_or_else(|| err(format!("unparseable timestamp {raw:?}")))?,
            )
        }
    };
    let mut stats = ExtractStats::default();
    let mut dims: Vec<String> = Vec::with_capacity(def.dimensions.len());
    'records: for record in record_path.select(root) {
        dims.clear();
        for spec in &def.dimensions {
            let value = match spec {
                DimensionSpec::Path { path, .. } => {
                    first_value_json(path, record).filter(|v| v != "null")
                }
                DimensionSpec::TimeField { field, .. } => ts.as_ref().map(|dt| field.render(dt)),
            };
            match value {
                Some(v) => dims.push(v),
                None => match policy {
                    MissingPolicy::Skip => {
                        stats.skipped += 1;
                        continue 'records;
                    }
                    MissingPolicy::Fail => {
                        return Err(err(format!("record missing dimension {:?}", spec.name())))
                    }
                },
            }
        }
        let measure = match &def.measure {
            MeasureSpec::One => Some(1),
            MeasureSpec::Path(p) => match p {
                ValuePath::Json(jp) => jp
                    .select(record)
                    .first()
                    .and_then(|v| v.as_f64())
                    .map(|f| f.round() as i64),
                ValuePath::Xml(_) => None,
            },
        };
        match measure {
            Some(m) => {
                tuples.push(dims.iter().map(String::as_str), m);
                stats.extracted += 1;
            }
            None => match policy {
                MissingPolicy::Skip => stats.skipped += 1,
                MissingPolicy::Fail => return Err(err("record missing numeric measure")),
            },
        }
    }
    Ok(stats)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cube_def::TimeField;
    use sc_dwarf::{Dwarf, Selection};

    const FEED: &str = r#"<stations updated="2016-03-15T10:00:00">
      <station id="17"><name>Fenian St</name><area>D2</area><bikes>3</bikes></station>
      <station id="42"><name>Smithfield</name><area>D7</area><bikes>11</bikes></station>
      <station id="43"><name>Broken</name><area>D7</area></station>
    </stations>"#;

    fn bikes_def() -> CubeDef {
        CubeDef::xml("/stations/station")
            .timestamp("@updated")
            .time_dimension("day", TimeField::Day)
            .time_dimension("hour", TimeField::Hour)
            .dimension("area", "area/text()")
            .dimension("station", "name/text()")
            .measure("bikes", "bikes/text()")
            .build()
            .unwrap()
    }

    #[test]
    fn xml_extraction_end_to_end() {
        let def = bikes_def();
        let mut tuples = TupleSet::new(&def.schema());
        let stats = extract_text(&def, FEED, &mut tuples, MissingPolicy::Skip).unwrap();
        assert_eq!(stats.extracted, 2);
        assert_eq!(stats.skipped, 1, "the measureless station is skipped");
        let cube = Dwarf::build(def.schema(), tuples);
        assert_eq!(
            cube.point(&[
                Selection::value("15"),
                Selection::value("10"),
                Selection::value("D7"),
                Selection::value("Smithfield"),
            ]),
            Some(11)
        );
        assert_eq!(
            cube.point(&[
                Selection::All,
                Selection::All,
                Selection::All,
                Selection::All
            ]),
            Some(14)
        );
    }

    #[test]
    fn fail_policy_raises() {
        let def = bikes_def();
        let mut tuples = TupleSet::new(&def.schema());
        let e = extract_text(&def, FEED, &mut tuples, MissingPolicy::Fail).unwrap_err();
        assert!(e.message.contains("measure"), "{e}");
    }

    #[test]
    fn missing_timestamp_is_an_error() {
        let def = bikes_def();
        let mut tuples = TupleSet::new(&def.schema());
        let doc =
            "<stations><station><name>x</name><area>a</area><bikes>1</bikes></station></stations>";
        assert!(extract_text(&def, doc, &mut tuples, MissingPolicy::Skip).is_err());
    }

    #[test]
    fn json_extraction() {
        let def = CubeDef::json("/readings/*")
            .timestamp("/updated")
            .time_dimension("hour", TimeField::Hour)
            .dimension("sensor", "/sensor")
            .dimension("pollutant", "/pollutant")
            .measure("level", "/value")
            .build()
            .unwrap();
        let feed = r#"{
          "updated": "2016-03-15T08:30:00",
          "readings": [
            {"sensor": "AQ1", "pollutant": "NO2", "value": 41.4},
            {"sensor": "AQ1", "pollutant": "PM10", "value": 18},
            {"sensor": "AQ2", "pollutant": "NO2", "value": null}
          ]
        }"#;
        let mut tuples = TupleSet::new(&def.schema());
        let stats = extract_text(&def, feed, &mut tuples, MissingPolicy::Skip).unwrap();
        assert_eq!(stats.extracted, 2);
        assert_eq!(stats.skipped, 1);
        let cube = Dwarf::build(def.schema(), tuples);
        assert_eq!(
            cube.point(&[
                Selection::value("08"),
                Selection::value("AQ1"),
                Selection::All
            ]),
            Some(41 + 18)
        );
    }

    #[test]
    fn count_records_measure() {
        let def = CubeDef::json("/events/*")
            .dimension("kind", "/kind")
            .count_records("events")
            .build()
            .unwrap();
        let feed = r#"{"events": [{"kind": "sale"}, {"kind": "sale"}, {"kind": "bid"}]}"#;
        let mut tuples = TupleSet::new(&def.schema());
        extract_text(&def, feed, &mut tuples, MissingPolicy::Skip).unwrap();
        let cube = Dwarf::build(def.schema(), tuples);
        assert_eq!(cube.point(&[Selection::value("sale")]), Some(2));
        assert_eq!(cube.point(&[Selection::value("bid")]), Some(1));
    }

    #[test]
    fn format_mismatch_is_an_error() {
        let def = bikes_def();
        let doc = ParsedDoc::parse(SourceFormat::Json, "{}").unwrap();
        let mut tuples = TupleSet::new(&def.schema());
        assert!(extract_into(&def, &doc, &mut tuples, MissingPolicy::Skip).is_err());
    }

    #[test]
    fn malformed_document_is_an_error() {
        let def = bikes_def();
        let mut tuples = TupleSet::new(&def.schema());
        assert!(extract_text(&def, "<broken", &mut tuples, MissingPolicy::Skip).is_err());
    }
}
