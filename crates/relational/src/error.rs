//! Relational engine errors.

use sc_encoding::DecodeError;
use sc_storage::StorageError;
use std::fmt;

/// Anything that can go wrong executing against the relational engine.
#[derive(Debug)]
pub enum SqlError {
    /// SQL text did not parse.
    Parse(String),
    /// A named database does not exist.
    UnknownDatabase(String),
    /// A named table does not exist.
    UnknownTable(String),
    /// A named column does not exist.
    UnknownColumn {
        /// Table name (or alias context).
        table: String,
        /// Column name.
        column: String,
    },
    /// A value's type does not match the column.
    TypeMismatch {
        /// Column name.
        column: String,
        /// Declared type.
        expected: String,
        /// What was supplied.
        found: String,
    },
    /// Duplicate primary key on insert.
    DuplicateKey(String),
    /// A foreign-key constraint failed.
    ForeignKeyViolation {
        /// Constraint description.
        constraint: String,
    },
    /// NOT NULL / primary-key null violations.
    NullViolation(String),
    /// Creating something that already exists.
    AlreadyExists(String),
    /// A query shape the engine does not support.
    Unsupported(String),
    /// Underlying storage failure.
    Storage(StorageError),
    /// Corrupt on-disk data.
    Corrupt(String),
}

impl fmt::Display for SqlError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SqlError::Parse(m) => write!(f, "SQL parse error: {m}"),
            SqlError::UnknownDatabase(d) => write!(f, "unknown database {d:?}"),
            SqlError::UnknownTable(t) => write!(f, "unknown table {t:?}"),
            SqlError::UnknownColumn { table, column } => {
                write!(f, "unknown column {column:?} on {table:?}")
            }
            SqlError::TypeMismatch {
                column,
                expected,
                found,
            } => write!(
                f,
                "type mismatch on {column:?}: expected {expected}, found {found}"
            ),
            SqlError::DuplicateKey(k) => write!(f, "duplicate primary key {k}"),
            SqlError::ForeignKeyViolation { constraint } => {
                write!(f, "foreign key violation: {constraint}")
            }
            SqlError::NullViolation(c) => write!(f, "column {c:?} may not be null"),
            SqlError::AlreadyExists(what) => write!(f, "{what} already exists"),
            SqlError::Unsupported(m) => write!(f, "unsupported query: {m}"),
            SqlError::Storage(e) => write!(f, "storage error: {e}"),
            SqlError::Corrupt(m) => write!(f, "corrupt data: {m}"),
        }
    }
}

impl std::error::Error for SqlError {}

impl From<StorageError> for SqlError {
    fn from(e: StorageError) -> Self {
        SqlError::Storage(e)
    }
}

impl From<DecodeError> for SqlError {
    fn from(e: DecodeError) -> Self {
        SqlError::Corrupt(e.to_string())
    }
}

/// Result alias.
pub type Result<T> = std::result::Result<T, SqlError>;
