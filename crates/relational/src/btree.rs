//! A from-scratch B+tree keyed by byte strings.
//!
//! This is the index structure behind every primary key and secondary index
//! in the relational engine (InnoDB clusters rows in a B+tree; we keep the
//! tree in memory and persist its entries at checkpoints, so index bytes
//! still land on disk for size accounting).
//!
//! Design notes:
//!
//! * Arena-allocated nodes addressed by `u32`, no pointer juggling.
//! * Leaves are chained for range scans.
//! * Deletion is **lazy**: entries are removed from leaves but nodes are not
//!   rebalanced. The paper's workloads are insert-dominated, and a sparse
//!   node only costs memory, never correctness.

const NONE: u32 = u32::MAX;

/// Maximum keys per node before a split.
const ORDER: usize = 32;

#[derive(Debug, Clone)]
enum Node<V> {
    Internal {
        /// Separator keys; child `i` holds keys `< keys[i]`, child `keys.len()`
        /// holds the rest.
        keys: Vec<Vec<u8>>,
        children: Vec<u32>,
    },
    Leaf {
        keys: Vec<Vec<u8>>,
        values: Vec<V>,
        next: u32,
    },
}

/// A B+tree mapping byte-string keys to values.
#[derive(Debug, Clone)]
pub struct BPlusTree<V> {
    nodes: Vec<Node<V>>,
    root: u32,
    len: usize,
}

impl<V: Clone> Default for BPlusTree<V> {
    fn default() -> Self {
        Self::new()
    }
}

impl<V: Clone> BPlusTree<V> {
    /// Creates an empty tree.
    pub fn new() -> Self {
        let nodes = vec![Node::Leaf {
            keys: Vec::new(),
            values: Vec::new(),
            next: NONE,
        }];
        BPlusTree {
            nodes,
            root: 0,
            len: 0,
        }
    }

    /// Number of live entries.
    pub fn len(&self) -> usize {
        self.len
    }

    /// Whether the tree has no entries.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Height of the tree (1 = just a root leaf). Exposed for tests.
    pub fn height(&self) -> usize {
        let mut h = 1;
        let mut id = self.root;
        loop {
            match &self.nodes[id as usize] {
                Node::Leaf { .. } => return h,
                Node::Internal { children, .. } => {
                    id = children[0];
                    h += 1;
                }
            }
        }
    }

    fn child_index(keys: &[Vec<u8>], key: &[u8]) -> usize {
        keys.partition_point(|k| key >= k.as_slice())
    }

    fn find_leaf(&self, key: &[u8]) -> u32 {
        let mut id = self.root;
        loop {
            match &self.nodes[id as usize] {
                Node::Leaf { .. } => return id,
                Node::Internal { keys, children } => {
                    id = children[Self::child_index(keys, key)];
                }
            }
        }
    }

    /// Point lookup.
    pub fn get(&self, key: &[u8]) -> Option<&V> {
        let leaf = self.find_leaf(key);
        match &self.nodes[leaf as usize] {
            Node::Leaf { keys, values, .. } => keys
                .binary_search_by(|k| k.as_slice().cmp(key))
                .ok()
                .map(|i| &values[i]),
            Node::Internal { .. } => unreachable!("find_leaf returns a leaf"),
        }
    }

    /// Inserts, returning the previous value for the key, if any.
    pub fn insert(&mut self, key: Vec<u8>, value: V) -> Option<V> {
        let (replaced, split) = self.insert_rec(self.root, key, value);
        if let Some((sep, right)) = split {
            let new_root = Node::Internal {
                keys: vec![sep],
                children: vec![self.root, right],
            };
            self.nodes.push(new_root);
            self.root = (self.nodes.len() - 1) as u32;
        }
        if replaced.is_none() {
            self.len += 1;
        }
        replaced
    }

    /// Recursive insert; returns (replaced value, optional split = (separator
    /// key, new right sibling id)).
    fn insert_rec(
        &mut self,
        id: u32,
        key: Vec<u8>,
        value: V,
    ) -> (Option<V>, Option<(Vec<u8>, u32)>) {
        match &mut self.nodes[id as usize] {
            Node::Leaf { keys, values, next } => {
                match keys.binary_search_by(|k| k.as_slice().cmp(&key)) {
                    Ok(i) => {
                        let old = std::mem::replace(&mut values[i], value);
                        (Some(old), None)
                    }
                    Err(i) => {
                        keys.insert(i, key);
                        values.insert(i, value);
                        if keys.len() <= ORDER {
                            return (None, None);
                        }
                        // Split the leaf.
                        let mid = keys.len() / 2;
                        let right_keys = keys.split_off(mid);
                        let right_values = values.split_off(mid);
                        let sep = right_keys[0].clone();
                        let old_next = *next;
                        let right = Node::Leaf {
                            keys: right_keys,
                            values: right_values,
                            next: old_next,
                        };
                        self.nodes.push(right);
                        let right_id = (self.nodes.len() - 1) as u32;
                        if let Node::Leaf { next, .. } = &mut self.nodes[id as usize] {
                            *next = right_id;
                        }
                        (None, Some((sep, right_id)))
                    }
                }
            }
            Node::Internal { keys, .. } => {
                let idx = Self::child_index(keys, &key);
                let child = match &self.nodes[id as usize] {
                    Node::Internal { children, .. } => children[idx],
                    Node::Leaf { .. } => unreachable!(),
                };
                let (replaced, split) = self.insert_rec(child, key, value);
                if let Some((sep, right_id)) = split {
                    if let Node::Internal { keys, children } = &mut self.nodes[id as usize] {
                        keys.insert(idx, sep);
                        children.insert(idx + 1, right_id);
                        if keys.len() > ORDER {
                            // Split this internal node; middle key moves up.
                            let mid = keys.len() / 2;
                            let up = keys[mid].clone();
                            let right_keys = keys.split_off(mid + 1);
                            keys.pop(); // drop the promoted key
                            let right_children = children.split_off(mid + 1);
                            let right = Node::Internal {
                                keys: right_keys,
                                children: right_children,
                            };
                            self.nodes.push(right);
                            let right_id = (self.nodes.len() - 1) as u32;
                            return (replaced, Some((up, right_id)));
                        }
                    }
                }
                (replaced, None)
            }
        }
    }

    /// Removes a key, returning its value. Lazy: no rebalancing.
    pub fn remove(&mut self, key: &[u8]) -> Option<V> {
        let leaf = self.find_leaf(key);
        match &mut self.nodes[leaf as usize] {
            Node::Leaf { keys, values, .. } => {
                match keys.binary_search_by(|k| k.as_slice().cmp(key)) {
                    Ok(i) => {
                        keys.remove(i);
                        let v = values.remove(i);
                        self.len -= 1;
                        Some(v)
                    }
                    Err(_) => None,
                }
            }
            Node::Internal { .. } => unreachable!("find_leaf returns a leaf"),
        }
    }

    /// Iterates all `(key, value)` pairs in key order.
    pub fn iter(&self) -> BTreeIter<'_, V> {
        // Leftmost leaf.
        let mut id = self.root;
        loop {
            match &self.nodes[id as usize] {
                Node::Leaf { .. } => break,
                Node::Internal { children, .. } => id = children[0],
            }
        }
        BTreeIter {
            tree: self,
            leaf: id,
            pos: 0,
            end: None,
        }
    }

    /// Iterates entries with `key >= start`, in key order.
    pub fn iter_from(&self, start: &[u8]) -> BTreeIter<'_, V> {
        let leaf = self.find_leaf(start);
        let pos = match &self.nodes[leaf as usize] {
            Node::Leaf { keys, .. } => keys.partition_point(|k| k.as_slice() < start),
            Node::Internal { .. } => unreachable!(),
        };
        BTreeIter {
            tree: self,
            leaf,
            pos,
            end: None,
        }
    }

    /// Iterates entries whose keys start with `prefix`.
    pub fn iter_prefix<'a>(&'a self, prefix: &[u8]) -> BTreeIter<'a, V> {
        let mut it = self.iter_from(prefix);
        it.end = Some(prefix.to_vec());
        it
    }
}

/// Iterator over tree entries.
pub struct BTreeIter<'a, V> {
    tree: &'a BPlusTree<V>,
    leaf: u32,
    pos: usize,
    /// When set, iteration stops at the first key that does not start with
    /// this prefix.
    end: Option<Vec<u8>>,
}

impl<'a, V> Iterator for BTreeIter<'a, V> {
    type Item = (&'a [u8], &'a V);

    fn next(&mut self) -> Option<Self::Item> {
        loop {
            if self.leaf == NONE {
                return None;
            }
            match &self.tree.nodes[self.leaf as usize] {
                Node::Leaf { keys, values, next } => {
                    if self.pos >= keys.len() {
                        self.leaf = *next;
                        self.pos = 0;
                        continue;
                    }
                    let key = keys[self.pos].as_slice();
                    if let Some(prefix) = &self.end {
                        if !key.starts_with(prefix) {
                            return None;
                        }
                    }
                    let value = &values[self.pos];
                    self.pos += 1;
                    return Some((key, value));
                }
                Node::Internal { .. } => unreachable!("leaf chain only links leaves"),
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sc_encoding::Rng;
    use std::collections::BTreeMap;

    #[test]
    fn insert_get_overwrite() {
        let mut t: BPlusTree<i32> = BPlusTree::new();
        assert!(t.is_empty());
        assert_eq!(t.insert(b"b".to_vec(), 2), None);
        assert_eq!(t.insert(b"a".to_vec(), 1), None);
        assert_eq!(t.insert(b"b".to_vec(), 20), Some(2));
        assert_eq!(t.len(), 2);
        assert_eq!(t.get(b"a"), Some(&1));
        assert_eq!(t.get(b"b"), Some(&20));
        assert_eq!(t.get(b"c"), None);
    }

    #[test]
    fn splits_grow_height() {
        let mut t: BPlusTree<u32> = BPlusTree::new();
        for i in 0..10_000u32 {
            t.insert(i.to_be_bytes().to_vec(), i);
        }
        assert_eq!(t.len(), 10_000);
        assert!(t.height() >= 3, "height {}", t.height());
        for i in (0..10_000u32).step_by(7) {
            assert_eq!(t.get(&i.to_be_bytes()), Some(&i));
        }
        // Full iteration is sorted and complete.
        let collected: Vec<u32> = t.iter().map(|(_, v)| *v).collect();
        assert_eq!(collected.len(), 10_000);
        assert!(collected.windows(2).all(|w| w[0] < w[1]));
    }

    #[test]
    fn reverse_and_random_orders() {
        let mut t: BPlusTree<u32> = BPlusTree::new();
        for i in (0..1000u32).rev() {
            t.insert(i.to_be_bytes().to_vec(), i);
        }
        let keys: Vec<u32> = t.iter().map(|(_, v)| *v).collect();
        assert_eq!(keys, (0..1000).collect::<Vec<_>>());
    }

    #[test]
    fn remove_is_lazy_but_correct() {
        let mut t: BPlusTree<u32> = BPlusTree::new();
        for i in 0..500u32 {
            t.insert(i.to_be_bytes().to_vec(), i);
        }
        for i in (0..500u32).step_by(2) {
            assert_eq!(t.remove(&i.to_be_bytes()), Some(i));
        }
        assert_eq!(t.remove(&0u32.to_be_bytes()), None);
        assert_eq!(t.len(), 250);
        let left: Vec<u32> = t.iter().map(|(_, v)| *v).collect();
        assert!(left.iter().all(|v| v % 2 == 1));
        assert_eq!(left.len(), 250);
    }

    #[test]
    fn iter_from_and_prefix() {
        let mut t: BPlusTree<i32> = BPlusTree::new();
        for (i, k) in ["apple", "apricot", "banana", "cherry"].iter().enumerate() {
            t.insert(k.as_bytes().to_vec(), i as i32);
        }
        let from_b: Vec<i32> = t.iter_from(b"b").map(|(_, v)| *v).collect();
        assert_eq!(from_b, vec![2, 3]);
        let ap: Vec<i32> = t.iter_prefix(b"ap").map(|(_, v)| *v).collect();
        assert_eq!(ap, vec![0, 1]);
        let none: Vec<i32> = t.iter_prefix(b"zz").map(|(_, v)| *v).collect();
        assert!(none.is_empty());
    }

    // Deterministic randomized sweeps (seeded xorshift, no proptest — the
    // build is offline): the tree is checked op-by-op against
    // `std::collections::BTreeMap` as a reference model. Short keys (≤12
    // bytes from a tiny alphabet) force plenty of collisions and overwrites.

    #[test]
    fn agrees_with_std_btreemap() {
        let mut rng = Rng::new(0xB7EE);
        for case in 0..64 {
            let mut tree: BPlusTree<u32> = BPlusTree::new();
            let mut model: BTreeMap<Vec<u8>, u32> = BTreeMap::new();
            for _ in 0..rng.gen_range(400) {
                let klen = rng.gen_range(12) as usize;
                let key: Vec<u8> = (0..klen).map(|_| rng.gen_range(4) as u8).collect();
                let value = rng.next_u64() as u32;
                if rng.gen_range(2) == 1 {
                    assert_eq!(
                        tree.insert(key.clone(), value),
                        model.insert(key, value),
                        "case {case}"
                    );
                } else {
                    assert_eq!(tree.remove(&key), model.remove(&key), "case {case}");
                }
                assert_eq!(tree.len(), model.len(), "case {case}");
            }
            let tree_entries: Vec<(Vec<u8>, u32)> =
                tree.iter().map(|(k, v)| (k.to_vec(), *v)).collect();
            let model_entries: Vec<(Vec<u8>, u32)> =
                model.iter().map(|(k, v)| (k.clone(), *v)).collect();
            assert_eq!(tree_entries, model_entries, "case {case}");
        }
    }

    #[test]
    fn range_scans_agree() {
        let mut rng = Rng::new(0xB7EF);
        for case in 0..64 {
            let mut keys: std::collections::BTreeSet<Vec<u8>> = std::collections::BTreeSet::new();
            for _ in 0..rng.gen_range(200) {
                let klen = rng.gen_range(8) as usize;
                keys.insert((0..klen).map(|_| rng.gen_range(8) as u8).collect());
            }
            let slen = rng.gen_range(8) as usize;
            let start: Vec<u8> = (0..slen).map(|_| rng.gen_range(8) as u8).collect();
            let mut tree: BPlusTree<u8> = BPlusTree::new();
            for k in &keys {
                tree.insert(k.clone(), 0);
            }
            let got: Vec<Vec<u8>> = tree.iter_from(&start).map(|(k, _)| k.to_vec()).collect();
            let want: Vec<Vec<u8>> = keys
                .iter()
                .filter(|k| k.as_slice() >= start.as_slice())
                .cloned()
                .collect();
            assert_eq!(got, want, "case {case}");
        }
    }
}
