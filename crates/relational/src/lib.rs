//! # sc-relational
//!
//! An embedded relational engine modelled on MySQL/InnoDB, the comparison
//! store in the paper's evaluation (the MySQL-DWARF and MySQL-Min schemas).
//! It implements the mechanisms those comparisons exercise:
//!
//! * **clustered row storage** in 16 KiB pages with InnoDB-compact-style
//!   per-row headers (5-byte header, 6-byte transaction id, 7-byte roll
//!   pointer, null bitmap, variable-length map) — Table 4's MySQL sizes are
//!   real bytes in these pages,
//! * a from-scratch **B+tree** for the primary key and every secondary
//!   index, with index contents serialized to disk at checkpoints so index
//!   storage is measured too,
//! * **foreign keys** validated on insert (the Figure 4 schema is
//!   relationship-heavy; validation cost is part of the relational story),
//! * a **SQL subset**: `CREATE DATABASE/TABLE/INDEX`, multi-row `INSERT`,
//!   `SELECT` with equality `WHERE`, a two-table equi-`JOIN`, `DELETE`,
//!   `TRUNCATE`.
//!
//! ```
//! use sc_relational::{Db, SqlValue};
//!
//! let mut db = Db::in_memory();
//! db.execute_sql("CREATE DATABASE dwarf").unwrap();
//! db.execute_sql(
//!     "CREATE TABLE dwarf.cell (id INT, name TEXT, PRIMARY KEY (id))",
//! ).unwrap();
//! db.execute_sql("INSERT INTO dwarf.cell (id, name) VALUES (1, 'Fenian St'), (2, 'Smithfield')")
//!     .unwrap();
//! let r = db.execute_sql("SELECT name FROM dwarf.cell WHERE id = 2").unwrap();
//! assert_eq!(r.rows[0][0], SqlValue::Text("Smithfield".into()));
//! ```

pub mod btree;
pub mod engine;
pub mod error;
pub mod page;
pub mod rowfmt;
pub mod sql;
pub mod table;
pub mod value;
pub mod wal;

pub use engine::{Db, QueryResult};
pub use error::SqlError;
pub use sql::ast::SqlStatement;
pub use sql::parse_sql;
pub use value::{SqlType, SqlValue};
