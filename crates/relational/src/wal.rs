//! The redo log (write-ahead log).
//!
//! InnoDB writes every row change to its redo log before the change reaches
//! a data page; the paper's MySQL insert times include that cost, so ours
//! must too. Each mutation is framed as `[len u32][crc u32][payload]`
//! (payload = table name, primary-key bytes, row image) and appended before
//! the heap/B+tree are touched.
//!
//! The log is truncated at checkpoints — once pages and indexes are
//! persisted the redo entries are redundant, exactly like InnoDB's
//! checkpoint advancing the log's low-water mark.

use crate::error::Result;
use sc_encoding::{Crc32, Decoder, Encoder};
use sc_storage::Vfs;

/// One redo record.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RedoRecord {
    /// Qualified `db.table` the change applies to.
    pub table: String,
    /// Encoded primary key.
    pub key: Vec<u8>,
    /// Encoded row image (empty for a delete).
    pub row: Vec<u8>,
}

/// Append handle for the engine-wide redo log.
#[derive(Debug)]
pub struct RedoLog {
    vfs: Vfs,
    file: String,
}

impl RedoLog {
    /// Opens (or creates) the log.
    pub fn open(vfs: Vfs, file: impl Into<String>) -> RedoLog {
        RedoLog {
            vfs,
            file: file.into(),
        }
    }

    /// Appends one record.
    pub fn append(&self, record: &RedoRecord) -> Result<()> {
        let mut payload = Encoder::new();
        payload
            .put_str(&record.table)
            .put_bytes(&record.key)
            .put_bytes(&record.row);
        let payload = payload.into_bytes();
        let mut frame = Encoder::with_capacity(payload.len() + 8);
        frame.put_u32_fixed(payload.len() as u32);
        frame.put_u32_fixed(Crc32::of(&payload));
        frame.put_raw(&payload);
        self.vfs.append(&self.file, frame.bytes())?;
        Ok(())
    }

    /// Current log size in bytes.
    pub fn size(&self) -> u64 {
        self.vfs.len(&self.file).unwrap_or(0)
    }

    /// Truncates the log (after a checkpoint).
    pub fn truncate(&self) -> Result<()> {
        self.vfs.delete(&self.file)?;
        Ok(())
    }

    /// Replays intact records (diagnostics / tests); a torn tail ends the
    /// replay silently.
    pub fn replay(&self) -> Result<Vec<RedoRecord>> {
        let data = match self.vfs.read_all(&self.file) {
            Ok(d) => d,
            Err(sc_storage::StorageError::NotFound(_)) => return Ok(Vec::new()),
            Err(e) => return Err(e.into()),
        };
        let mut out = Vec::new();
        let mut dec = Decoder::new(&data);
        while dec.remaining() >= 8 {
            let len = dec.get_u32_fixed()? as usize;
            let crc = dec.get_u32_fixed()?;
            if dec.remaining() < len {
                break;
            }
            let payload = dec.get_raw(len)?;
            if Crc32::of(payload) != crc {
                break;
            }
            let mut p = Decoder::new(payload);
            out.push(RedoRecord {
                table: p.get_str()?.to_string(),
                key: p.get_bytes()?.to_vec(),
                row: p.get_bytes()?.to_vec(),
            });
        }
        Ok(out)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn rec(i: u8) -> RedoRecord {
        RedoRecord {
            table: "d.t".into(),
            key: vec![i],
            row: vec![i; 4],
        }
    }

    #[test]
    fn append_replay_truncate() {
        let log = RedoLog::open(Vfs::memory(), "redo");
        log.append(&rec(1)).unwrap();
        log.append(&rec(2)).unwrap();
        assert!(log.size() > 0);
        assert_eq!(log.replay().unwrap(), vec![rec(1), rec(2)]);
        log.truncate().unwrap();
        assert_eq!(log.size(), 0);
        assert!(log.replay().unwrap().is_empty());
    }

    #[test]
    fn torn_tail_is_ignored() {
        let vfs = Vfs::memory();
        let log = RedoLog::open(vfs.clone(), "redo");
        log.append(&rec(1)).unwrap();
        log.append(&rec(2)).unwrap();
        let data = vfs.read_all("redo").unwrap();
        vfs.delete("redo").unwrap();
        vfs.append("redo", &data[..data.len() - 2]).unwrap();
        assert_eq!(log.replay().unwrap(), vec![rec(1)]);
    }
}
