//! Page-organized heap storage.
//!
//! Rows live in 16 KiB pages, like InnoDB: each page carries a 38-byte file
//! header and an 8-byte trailer, rows fill the body, and a row that does not
//! fit starts a new page (the remainder is real, wasted, *measured* space —
//! exactly the fragmentation a MySQL data file exhibits).

use crate::error::{Result, SqlError};
use sc_storage::Vfs;

/// Page size (InnoDB default).
pub const PAGE_SIZE: usize = 16 * 1024;
/// FIL header bytes at the start of each page.
pub const PAGE_HEADER: usize = 38;
/// FIL trailer bytes at the end of each page.
pub const PAGE_TRAILER: usize = 8;
/// Usable bytes per page.
pub const PAGE_BODY: usize = PAGE_SIZE - PAGE_HEADER - PAGE_TRAILER;

/// Location of a row inside the heap file.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RowLoc {
    /// Byte offset from the start of the file.
    pub offset: u64,
    /// Encoded length.
    pub len: u32,
}

/// An append-only, page-structured heap file.
#[derive(Debug)]
pub struct Heap {
    vfs: Vfs,
    file: String,
    /// Bytes already flushed to the VFS (always a page multiple).
    flushed: u64,
    /// The open page being filled.
    buffer: Vec<u8>,
    page_no: u32,
    rows: u64,
}

impl Heap {
    /// Creates (or reopens for append) a heap file.
    pub fn new(vfs: Vfs, file: impl Into<String>) -> Heap {
        let file = file.into();
        let flushed = vfs.len(&file).unwrap_or(0);
        let page_no = (flushed / PAGE_SIZE as u64) as u32;
        Heap {
            vfs,
            file,
            flushed,
            buffer: Vec::new(),
            page_no,
            rows: 0,
        }
    }

    fn open_page(&mut self) {
        debug_assert!(self.buffer.is_empty());
        // FIL header: checksum placeholder (4), page number (4), prev/next
        // page (4+4), LSN (8), page type (2), flush LSN (8), space id (4).
        self.buffer.extend_from_slice(&0u32.to_be_bytes());
        self.buffer.extend_from_slice(&self.page_no.to_be_bytes());
        self.buffer.extend_from_slice(&u32::MAX.to_be_bytes());
        self.buffer.extend_from_slice(&u32::MAX.to_be_bytes());
        self.buffer.extend_from_slice(&0u64.to_be_bytes());
        self.buffer.extend_from_slice(&17855u16.to_be_bytes()); // FIL_PAGE_INDEX
        self.buffer.extend_from_slice(&0u64.to_be_bytes());
        self.buffer.extend_from_slice(&0u32.to_be_bytes());
        debug_assert_eq!(self.buffer.len(), PAGE_HEADER);
    }

    fn close_page(&mut self) -> Result<()> {
        if self.buffer.is_empty() {
            return Ok(());
        }
        // Pad the body, then the trailer (old-style checksum 4 + LSN low 4).
        self.buffer.resize(PAGE_SIZE - PAGE_TRAILER, 0);
        self.buffer
            .extend_from_slice(&sc_encoding::Crc32::of(&self.buffer).to_be_bytes());
        self.buffer.extend_from_slice(&0u32.to_be_bytes());
        debug_assert_eq!(self.buffer.len(), PAGE_SIZE);
        self.vfs.append(&self.file, &self.buffer)?;
        self.flushed += PAGE_SIZE as u64;
        self.buffer.clear();
        self.page_no += 1;
        Ok(())
    }

    /// Appends an encoded row, returning its location.
    pub fn append(&mut self, row: &[u8]) -> Result<RowLoc> {
        if row.len() > PAGE_BODY {
            return Err(SqlError::Unsupported(format!(
                "row of {} bytes exceeds the page body ({PAGE_BODY} bytes)",
                row.len()
            )));
        }
        if self.buffer.is_empty() {
            self.open_page();
        }
        if self.buffer.len() + row.len() > PAGE_SIZE - PAGE_TRAILER {
            self.close_page()?;
            self.open_page();
        }
        let offset = self.flushed + self.buffer.len() as u64;
        self.buffer.extend_from_slice(row);
        self.rows += 1;
        Ok(RowLoc {
            offset,
            len: row.len() as u32,
        })
    }

    /// Reads a row back.
    pub fn read(&self, loc: RowLoc) -> Result<Vec<u8>> {
        if loc.offset >= self.flushed {
            // Still in the open page buffer.
            let start = (loc.offset - self.flushed) as usize;
            let end = start + loc.len as usize;
            if end > self.buffer.len() {
                return Err(SqlError::Corrupt(format!(
                    "row location {loc:?} beyond heap tail"
                )));
            }
            return Ok(self.buffer[start..end].to_vec());
        }
        Ok(self.vfs.read_at(&self.file, loc.offset, loc.len as usize)?)
    }

    /// Flushes the open page (padded to a full page) so every row is on
    /// disk. Call before measuring sizes.
    pub fn checkpoint(&mut self) -> Result<()> {
        self.close_page()
    }

    /// Bytes the heap occupies on disk, counting the open page at its full
    /// eventual size (a partially filled InnoDB page still owns 16 KiB).
    pub fn disk_size(&self) -> u64 {
        self.flushed
            + if self.buffer.is_empty() {
                0
            } else {
                PAGE_SIZE as u64
            }
    }

    /// Number of rows ever appended.
    pub fn row_count(&self) -> u64 {
        self.rows
    }

    /// Drops the file and resets (TRUNCATE).
    pub fn reset(&mut self) -> Result<()> {
        self.vfs.delete(&self.file)?;
        self.flushed = 0;
        self.buffer.clear();
        self.page_no = 0;
        self.rows = 0;
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn append_and_read_within_open_page() {
        let mut h = Heap::new(Vfs::memory(), "db/t.ibd");
        let a = h.append(b"hello").unwrap();
        let b = h.append(b"world!").unwrap();
        assert_eq!(h.read(a).unwrap(), b"hello");
        assert_eq!(h.read(b).unwrap(), b"world!");
        assert_eq!(h.row_count(), 2);
    }

    #[test]
    fn rows_cross_page_boundaries() {
        let mut h = Heap::new(Vfs::memory(), "db/t.ibd");
        let row = vec![7u8; 5000];
        let mut locs = Vec::new();
        for _ in 0..10 {
            locs.push(h.append(&row).unwrap());
        }
        // 5000-byte rows: 3 per page -> 4 pages.
        assert!(h.disk_size() >= 4 * PAGE_SIZE as u64);
        for loc in locs {
            assert_eq!(h.read(loc).unwrap(), row);
        }
    }

    #[test]
    fn checkpoint_persists_open_page() {
        let vfs = Vfs::memory();
        let mut h = Heap::new(vfs.clone(), "db/t.ibd");
        let loc = h.append(b"durable").unwrap();
        h.checkpoint().unwrap();
        assert_eq!(vfs.len("db/t.ibd").unwrap(), PAGE_SIZE as u64);
        assert_eq!(h.read(loc).unwrap(), b"durable");
    }

    #[test]
    fn disk_size_counts_open_page_fully() {
        let mut h = Heap::new(Vfs::memory(), "db/t.ibd");
        assert_eq!(h.disk_size(), 0);
        h.append(b"x").unwrap();
        assert_eq!(h.disk_size(), PAGE_SIZE as u64);
    }

    #[test]
    fn oversized_rows_are_rejected() {
        let mut h = Heap::new(Vfs::memory(), "db/t.ibd");
        let huge = vec![0u8; PAGE_BODY + 1];
        assert!(matches!(h.append(&huge), Err(SqlError::Unsupported(_))));
    }

    #[test]
    fn reset_clears_everything() {
        let vfs = Vfs::memory();
        let mut h = Heap::new(vfs.clone(), "db/t.ibd");
        h.append(b"gone").unwrap();
        h.checkpoint().unwrap();
        h.reset().unwrap();
        assert_eq!(h.disk_size(), 0);
        assert_eq!(h.row_count(), 0);
        assert!(!vfs.exists("db/t.ibd"));
    }
}
