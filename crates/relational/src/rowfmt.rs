//! InnoDB-compact-style row encoding.
//!
//! Every stored row pays the same metadata a real InnoDB compact record
//! does, with real (not filler) values:
//!
//! ```text
//! [ record header: flags u8, heap_no u16, next u16 ]          5 bytes
//! [ transaction id ]                                           6 bytes
//! [ roll pointer ]                                             7 bytes
//! [ null bitmap: ceil(ncols / 8) ]
//! [ var-len map: one varint per non-null TEXT column ]
//! [ column bodies: INT 8B, BOOL 1B, TEXT raw bytes ]
//! ```
//!
//! This is why the MySQL-DWARF schema's edge tables cost what Table 4 shows:
//! each `(node, cell)` relationship stored as a row pays ~20 bytes of
//! metadata for ~10 bytes of payload.

use crate::error::{Result, SqlError};
use crate::value::{SqlType, SqlValue};
use sc_encoding::{Decoder, Encoder};

/// Metadata carried by each record.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RecordHeader {
    /// Info flags (deleted mark, min-rec mark).
    pub flags: u8,
    /// Ordinal of the record within its page.
    pub heap_no: u16,
    /// Offset of the next record in the page (0 = supremum).
    pub next: u16,
    /// Transaction id that wrote the record (48-bit in InnoDB).
    pub trx_id: u64,
    /// Rollback-segment pointer (56-bit in InnoDB).
    pub roll_ptr: u64,
}

/// Encodes a row in compact format.
///
/// Panics if `values` and `types` have different lengths or a value's type
/// mismatches — callers type-check at the executor layer first.
pub fn encode_row(values: &[SqlValue], types: &[SqlType], header: RecordHeader, enc: &mut Encoder) {
    assert_eq!(values.len(), types.len(), "row arity mismatch");
    // Record header (5 bytes).
    enc.put_u8(header.flags);
    enc.put_raw(&header.heap_no.to_le_bytes());
    enc.put_raw(&header.next.to_le_bytes());
    // Transaction id (6 bytes) and roll pointer (7 bytes).
    enc.put_raw(&header.trx_id.to_le_bytes()[..6]);
    enc.put_raw(&header.roll_ptr.to_le_bytes()[..7]);
    // Null bitmap.
    let mut bitmap = vec![0u8; values.len().div_ceil(8)];
    for (i, v) in values.iter().enumerate() {
        if v.is_null() {
            bitmap[i / 8] |= 1 << (i % 8);
        }
    }
    enc.put_raw(&bitmap);
    // Var-len map: lengths of non-null TEXT columns, in column order.
    for (v, ty) in values.iter().zip(types) {
        if *ty == SqlType::Text && !v.is_null() {
            let s = v.as_text().expect("type-checked above");
            enc.put_u64(s.len() as u64);
        }
    }
    // Column bodies.
    for (v, ty) in values.iter().zip(types) {
        match (v, ty) {
            (SqlValue::Null, _) => {}
            (SqlValue::Int(n), SqlType::Int) => {
                enc.put_raw(&n.to_le_bytes());
            }
            (SqlValue::Bool(b), SqlType::Bool) => {
                enc.put_u8(*b as u8);
            }
            (SqlValue::Text(s), SqlType::Text) => {
                enc.put_raw(s.as_bytes());
            }
            (v, ty) => panic!("value {v:?} does not match column type {ty:?}"),
        }
    }
}

/// Decodes a row written by [`encode_row`].
pub fn decode_row(
    types: &[SqlType],
    dec: &mut Decoder<'_>,
) -> Result<(Vec<SqlValue>, RecordHeader)> {
    let flags = dec.get_u8()?;
    let h = dec.get_raw(2)?;
    let heap_no = u16::from_le_bytes([h[0], h[1]]);
    let n = dec.get_raw(2)?;
    let next = u16::from_le_bytes([n[0], n[1]]);
    let t = dec.get_raw(6)?;
    let trx_id = u64::from_le_bytes([t[0], t[1], t[2], t[3], t[4], t[5], 0, 0]);
    let r = dec.get_raw(7)?;
    let roll_ptr = u64::from_le_bytes([r[0], r[1], r[2], r[3], r[4], r[5], r[6], 0]);
    let bitmap = dec.get_raw(types.len().div_ceil(8))?.to_vec();
    let is_null = |i: usize| bitmap[i / 8] & (1 << (i % 8)) != 0;
    // Var-len map.
    let mut text_lens = Vec::new();
    for (i, ty) in types.iter().enumerate() {
        if *ty == SqlType::Text && !is_null(i) {
            text_lens.push(dec.get_u64()? as usize);
        }
    }
    let mut text_lens = text_lens.into_iter();
    let mut values = Vec::with_capacity(types.len());
    for (i, ty) in types.iter().enumerate() {
        if is_null(i) {
            values.push(SqlValue::Null);
            continue;
        }
        match ty {
            SqlType::Int => {
                let b = dec.get_raw(8)?;
                values.push(SqlValue::Int(i64::from_le_bytes([
                    b[0], b[1], b[2], b[3], b[4], b[5], b[6], b[7],
                ])));
            }
            SqlType::Bool => {
                values.push(SqlValue::Bool(dec.get_u8()? != 0));
            }
            SqlType::Text => {
                let len = text_lens.next().expect("var-len map covered this column");
                let raw = dec.get_raw(len)?;
                let s = std::str::from_utf8(raw)
                    .map_err(|_| SqlError::Corrupt("TEXT column is not UTF-8".into()))?;
                values.push(SqlValue::Text(s.to_string()));
            }
        }
    }
    Ok((
        values,
        RecordHeader {
            flags,
            heap_no,
            next,
            trx_id,
            roll_ptr,
        },
    ))
}

#[cfg(test)]
mod tests {
    use super::*;
    use sc_encoding::Rng;

    fn header() -> RecordHeader {
        RecordHeader {
            flags: 0,
            heap_no: 3,
            next: 120,
            trx_id: 0x0000_1234_5678_9abc & 0x0000_ffff_ffff_ffff,
            roll_ptr: 0x00ab_cdef_0123_4567 & 0x00ff_ffff_ffff_ffff,
        }
    }

    #[test]
    fn roundtrip_mixed_row() {
        let types = [SqlType::Int, SqlType::Text, SqlType::Bool, SqlType::Text];
        let values = vec![
            SqlValue::Int(-42),
            SqlValue::Text("Fenian St".into()),
            SqlValue::Bool(true),
            SqlValue::Null,
        ];
        let mut enc = Encoder::new();
        encode_row(&values, &types, header(), &mut enc);
        let bytes = enc.into_bytes();
        let mut dec = Decoder::new(&bytes);
        let (back, h) = decode_row(&types, &mut dec).unwrap();
        assert_eq!(back, values);
        assert_eq!(h, header());
        assert!(dec.is_exhausted());
    }

    #[test]
    fn metadata_floor_is_18_bytes() {
        // header 5 + trx 6 + roll 7 = 18 bytes before any payload.
        let types = [SqlType::Int];
        let mut enc = Encoder::new();
        encode_row(&[SqlValue::Null], &types, header(), &mut enc);
        assert_eq!(enc.len(), 18 + 1 /* null bitmap */);
    }

    #[test]
    #[should_panic(expected = "row arity mismatch")]
    fn arity_mismatch_panics() {
        let mut enc = Encoder::new();
        encode_row(&[SqlValue::Int(1)], &[], header(), &mut enc);
    }

    // Deterministic randomized sweep (seeded xorshift, no proptest — the
    // build is offline): random mixes of nullable int and text columns.

    #[test]
    fn roundtrip_random_rows() {
        let mut rng = Rng::new(0x80F7);
        for _ in 0..1024 {
            let mut types = Vec::new();
            let mut values = Vec::new();
            for _ in 0..rng.gen_range(5) {
                types.push(SqlType::Int);
                values.push(if rng.gen_range(4) == 0 {
                    SqlValue::Null
                } else {
                    SqlValue::Int(rng.gen_i64())
                });
            }
            for _ in 0..rng.gen_range(5) {
                types.push(SqlType::Text);
                values.push(if rng.gen_range(4) == 0 {
                    SqlValue::Null
                } else {
                    SqlValue::Text(rng.gen_ascii(16))
                });
            }
            if types.is_empty() {
                continue;
            }
            let mut enc = Encoder::new();
            encode_row(&values, &types, header(), &mut enc);
            let bytes = enc.into_bytes();
            let mut dec = Decoder::new(&bytes);
            let (back, _) = decode_row(&types, &mut dec).unwrap();
            assert_eq!(back, values);
        }
    }
}
