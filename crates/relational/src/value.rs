//! SQL value types.

use sc_encoding::{DecodeError, Decoder, Encoder};
use std::fmt;

/// A column's declared type.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum SqlType {
    /// 64-bit signed integer (`INT` / `BIGINT`).
    Int,
    /// UTF-8 string (`TEXT` / `VARCHAR`).
    Text,
    /// Boolean (`BOOL` / `BOOLEAN`).
    Bool,
}

impl SqlType {
    /// Parses a SQL type name (length arguments like `VARCHAR(255)` are
    /// handled by the parser, which strips them).
    pub fn parse(s: &str) -> Option<SqlType> {
        match s.to_ascii_lowercase().as_str() {
            "int" | "integer" | "bigint" | "smallint" | "tinyint" => Some(SqlType::Int),
            "text" | "varchar" | "char" => Some(SqlType::Text),
            "bool" | "boolean" => Some(SqlType::Bool),
            _ => None,
        }
    }

    /// SQL name.
    pub fn name(self) -> &'static str {
        match self {
            SqlType::Int => "INT",
            SqlType::Text => "TEXT",
            SqlType::Bool => "BOOL",
        }
    }
}

impl fmt::Display for SqlType {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.name())
    }
}

/// A runtime value.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub enum SqlValue {
    /// SQL NULL.
    Null,
    /// Integer.
    Int(i64),
    /// String.
    Text(String),
    /// Boolean.
    Bool(bool),
}

impl SqlValue {
    /// Whether the runtime type matches `ty` (NULL matches all).
    pub fn matches(&self, ty: SqlType) -> bool {
        matches!(
            (self, ty),
            (SqlValue::Null, _)
                | (SqlValue::Int(_), SqlType::Int)
                | (SqlValue::Text(_), SqlType::Text)
                | (SqlValue::Bool(_), SqlType::Bool)
        )
    }

    /// Runtime type name for error messages.
    pub fn type_name(&self) -> &'static str {
        match self {
            SqlValue::Null => "NULL",
            SqlValue::Int(_) => "INT",
            SqlValue::Text(_) => "TEXT",
            SqlValue::Bool(_) => "BOOL",
        }
    }

    /// The integer, if this is an [`SqlValue::Int`].
    pub fn as_int(&self) -> Option<i64> {
        match self {
            SqlValue::Int(v) => Some(*v),
            _ => None,
        }
    }

    /// The string, if this is a [`SqlValue::Text`].
    pub fn as_text(&self) -> Option<&str> {
        match self {
            SqlValue::Text(v) => Some(v),
            _ => None,
        }
    }

    /// The boolean, if this is a [`SqlValue::Bool`].
    pub fn as_bool(&self) -> Option<bool> {
        match self {
            SqlValue::Bool(v) => Some(*v),
            _ => None,
        }
    }

    /// Whether this is NULL.
    pub fn is_null(&self) -> bool {
        matches!(self, SqlValue::Null)
    }

    /// Order-preserving key encoding (B+tree keys).
    pub fn encode_key(&self) -> Vec<u8> {
        match self {
            SqlValue::Null => vec![0x00],
            SqlValue::Int(v) => {
                let mut out = vec![0x01];
                out.extend_from_slice(&(((*v as u64) ^ (1u64 << 63)).to_be_bytes()));
                out
            }
            SqlValue::Text(s) => {
                let mut out = vec![0x02];
                out.extend_from_slice(s.as_bytes());
                out
            }
            SqlValue::Bool(b) => vec![0x03, *b as u8],
        }
    }

    /// Tagged value encoding (row bodies).
    pub fn encode(&self, enc: &mut Encoder) {
        match self {
            SqlValue::Null => {
                enc.put_u8(0);
            }
            SqlValue::Int(v) => {
                enc.put_u8(1).put_i64(*v);
            }
            SqlValue::Text(s) => {
                enc.put_u8(2).put_str(s);
            }
            SqlValue::Bool(b) => {
                enc.put_u8(3).put_bool(*b);
            }
        }
    }

    /// Decodes a value written by [`SqlValue::encode`].
    pub fn decode(dec: &mut Decoder<'_>) -> Result<SqlValue, DecodeError> {
        match dec.get_u8()? {
            0 => Ok(SqlValue::Null),
            1 => Ok(SqlValue::Int(dec.get_i64()?)),
            2 => Ok(SqlValue::Text(dec.get_str()?.to_string())),
            3 => Ok(SqlValue::Bool(dec.get_bool()?)),
            tag => Err(DecodeError::BadTag {
                tag,
                context: "SqlValue",
            }),
        }
    }

    /// SQL literal form.
    pub fn to_sql_literal(&self) -> String {
        match self {
            SqlValue::Null => "NULL".to_string(),
            SqlValue::Int(v) => v.to_string(),
            SqlValue::Text(s) => format!("'{}'", s.replace('\'', "''")),
            SqlValue::Bool(b) => if *b { "TRUE" } else { "FALSE" }.to_string(),
        }
    }
}

impl fmt::Display for SqlValue {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.to_sql_literal())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sc_encoding::Rng;

    #[test]
    fn type_parse() {
        assert_eq!(SqlType::parse("INT"), Some(SqlType::Int));
        assert_eq!(SqlType::parse("varchar"), Some(SqlType::Text));
        assert_eq!(SqlType::parse("BOOLEAN"), Some(SqlType::Bool));
        assert_eq!(SqlType::parse("blob"), None);
    }

    #[test]
    fn literals() {
        assert_eq!(SqlValue::Int(-1).to_sql_literal(), "-1");
        assert_eq!(
            SqlValue::Text("O'Brien".into()).to_sql_literal(),
            "'O''Brien'"
        );
        assert_eq!(SqlValue::Bool(false).to_sql_literal(), "FALSE");
        assert_eq!(SqlValue::Null.to_sql_literal(), "NULL");
    }

    #[test]
    fn key_encoding_sorts_types_then_values() {
        // NULL < ints < texts < bools by tag; ints numeric, texts lexicographic.
        let null = SqlValue::Null.encode_key();
        let int_small = SqlValue::Int(-5).encode_key();
        let int_big = SqlValue::Int(100).encode_key();
        let text_a = SqlValue::Text("a".into()).encode_key();
        let text_b = SqlValue::Text("b".into()).encode_key();
        assert!(null < int_small);
        assert!(int_small < int_big);
        assert!(int_big < text_a);
        assert!(text_a < text_b);
    }

    // Deterministic randomized sweeps (seeded xorshift, no proptest — the
    // build is offline).

    fn random_value(rng: &mut Rng) -> SqlValue {
        match rng.gen_range(4) {
            0 => SqlValue::Null,
            1 => SqlValue::Int(rng.gen_i64()),
            2 => SqlValue::Text(rng.gen_ascii(20)),
            _ => SqlValue::Bool(rng.gen_range(2) == 1),
        }
    }

    #[test]
    fn roundtrip_random() {
        let mut rng = Rng::new(0x5A11);
        for _ in 0..1024 {
            let v = random_value(&mut rng);
            let mut enc = Encoder::new();
            v.encode(&mut enc);
            let bytes = enc.into_bytes();
            let mut dec = Decoder::new(&bytes);
            assert_eq!(SqlValue::decode(&mut dec).unwrap(), v);
        }
    }

    #[test]
    fn int_keys_order_numerically() {
        let mut rng = Rng::new(0x5A12);
        for _ in 0..2048 {
            let (a, b) = (rng.gen_i64(), rng.gen_i64());
            let ka = SqlValue::Int(a).encode_key();
            let kb = SqlValue::Int(b).encode_key();
            assert_eq!(a.cmp(&b), ka.cmp(&kb));
        }
    }
}
