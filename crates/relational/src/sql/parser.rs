//! Recursive-descent SQL parser.

use super::ast::{
    ColumnRef, ColumnSpec, ForeignKeySpec, JoinSpec, Predicate, Projection, SqlStatement,
    TableFactor, TableName,
};
use super::lexer::{tokenize, Token};
use crate::error::{Result, SqlError};
use crate::value::{SqlType, SqlValue};

/// Parses one SQL statement (a trailing `;` is tolerated).
pub fn parse_sql(input: &str) -> Result<SqlStatement> {
    let tokens = tokenize(input)?;
    let mut p = Parser { tokens, pos: 0 };
    let stmt = p.statement()?;
    p.eat_symbol(';');
    if !p.is_done() {
        return Err(SqlError::Parse(format!(
            "trailing tokens after statement: {:?}",
            p.peek()
        )));
    }
    Ok(stmt)
}

struct Parser {
    tokens: Vec<Token>,
    pos: usize,
}

const RESERVED_AFTER_TABLE: &[&str] = &["join", "on", "where", "limit", "as"];

impl Parser {
    fn is_done(&self) -> bool {
        self.pos >= self.tokens.len()
    }

    fn peek(&self) -> Option<&Token> {
        self.tokens.get(self.pos)
    }

    fn bump(&mut self) -> Option<Token> {
        let t = self.tokens.get(self.pos).cloned();
        if t.is_some() {
            self.pos += 1;
        }
        t
    }

    fn expect_keyword(&mut self, kw: &str) -> Result<()> {
        match self.bump() {
            Some(t) if t.is_keyword(kw) => Ok(()),
            other => Err(SqlError::Parse(format!("expected {kw}, found {other:?}"))),
        }
    }

    fn peek_keyword(&self, kw: &str) -> bool {
        self.peek().is_some_and(|t| t.is_keyword(kw))
    }

    fn eat_keyword(&mut self, kw: &str) -> bool {
        if self.peek_keyword(kw) {
            self.pos += 1;
            true
        } else {
            false
        }
    }

    fn expect_symbol(&mut self, sym: char) -> Result<()> {
        match self.bump() {
            Some(Token::Symbol(c)) if c == sym => Ok(()),
            other => Err(SqlError::Parse(format!(
                "expected {sym:?}, found {other:?}"
            ))),
        }
    }

    fn eat_symbol(&mut self, sym: char) -> bool {
        if matches!(self.peek(), Some(Token::Symbol(c)) if *c == sym) {
            self.pos += 1;
            true
        } else {
            false
        }
    }

    fn ident(&mut self) -> Result<String> {
        match self.bump() {
            Some(Token::Ident(s)) => Ok(s),
            other => Err(SqlError::Parse(format!(
                "expected identifier, found {other:?}"
            ))),
        }
    }

    fn table_name(&mut self) -> Result<TableName> {
        let database = self.ident()?;
        self.expect_symbol('.').map_err(|_| {
            SqlError::Parse(format!(
                "table references must be qualified as database.table (got {database:?})"
            ))
        })?;
        let table = self.ident()?;
        Ok(TableName { database, table })
    }

    fn table_factor(&mut self) -> Result<TableFactor> {
        let name = self.table_name()?;
        let explicit_as = self.eat_keyword("as");
        let alias = if explicit_as
            || matches!(self.peek(), Some(Token::Ident(s))
                if !RESERVED_AFTER_TABLE.iter().any(|k| s.eq_ignore_ascii_case(k)))
        {
            Some(self.ident()?)
        } else {
            None
        };
        Ok(TableFactor { name, alias })
    }

    fn column_ref(&mut self) -> Result<ColumnRef> {
        let first = self.ident()?;
        if self.eat_symbol('.') {
            let column = self.ident()?;
            Ok(ColumnRef {
                qualifier: Some(first),
                column,
            })
        } else {
            Ok(ColumnRef {
                qualifier: None,
                column: first,
            })
        }
    }

    fn literal(&mut self) -> Result<SqlValue> {
        match self.bump() {
            Some(Token::Number(n)) => Ok(SqlValue::Int(n)),
            Some(Token::Str(s)) => Ok(SqlValue::Text(s)),
            Some(t) if t.is_keyword("true") => Ok(SqlValue::Bool(true)),
            Some(t) if t.is_keyword("false") => Ok(SqlValue::Bool(false)),
            Some(t) if t.is_keyword("null") => Ok(SqlValue::Null),
            other => Err(SqlError::Parse(format!(
                "expected literal, found {other:?}"
            ))),
        }
    }

    fn type_name(&mut self) -> Result<SqlType> {
        let base = self.ident()?;
        let ty = SqlType::parse(&base)
            .ok_or_else(|| SqlError::Parse(format!("unknown type {base:?}")))?;
        // Optional length argument, e.g. VARCHAR(255).
        if self.eat_symbol('(') {
            match self.bump() {
                Some(Token::Number(_)) => {}
                other => {
                    return Err(SqlError::Parse(format!(
                        "expected length in type, found {other:?}"
                    )))
                }
            }
            self.expect_symbol(')')?;
        }
        Ok(ty)
    }

    fn statement(&mut self) -> Result<SqlStatement> {
        if self.eat_keyword("create") {
            if self.eat_keyword("database") {
                return Ok(SqlStatement::CreateDatabase {
                    name: self.ident()?,
                });
            }
            if self.eat_keyword("table") {
                return self.create_table();
            }
            if self.eat_keyword("index") {
                if !self.peek_keyword("on") {
                    let _name = self.ident()?;
                }
                self.expect_keyword("on")?;
                let table = self.table_name()?;
                self.expect_symbol('(')?;
                let column = self.ident()?;
                self.expect_symbol(')')?;
                return Ok(SqlStatement::CreateIndex { table, column });
            }
            return Err(SqlError::Parse(
                "expected DATABASE, TABLE or INDEX after CREATE".into(),
            ));
        }
        if self.eat_keyword("insert") {
            self.expect_keyword("into")?;
            return self.insert();
        }
        if self.eat_keyword("select") {
            return self.select();
        }
        if self.eat_keyword("update") {
            let table = self.table_name()?;
            self.expect_keyword("set")?;
            let mut assignments = Vec::new();
            loop {
                let column = self.ident()?;
                self.expect_symbol('=')?;
                let value = self.literal()?;
                assignments.push((column, value));
                if !self.eat_symbol(',') {
                    break;
                }
            }
            self.expect_keyword("where")?;
            let column = self.column_ref()?;
            self.expect_symbol('=')?;
            let value = self.literal()?;
            return Ok(SqlStatement::Update {
                table,
                assignments,
                predicate: Predicate { column, value },
            });
        }
        if self.eat_keyword("delete") {
            self.expect_keyword("from")?;
            let table = self.table_name()?;
            self.expect_keyword("where")?;
            let column = self.column_ref()?;
            self.expect_symbol('=')?;
            let value = self.literal()?;
            return Ok(SqlStatement::Delete {
                table,
                predicate: Predicate { column, value },
            });
        }
        if self.eat_keyword("truncate") {
            self.eat_keyword("table");
            let table = self.table_name()?;
            return Ok(SqlStatement::Truncate { table });
        }
        Err(SqlError::Parse(format!(
            "unrecognized statement start: {:?}",
            self.peek()
        )))
    }

    fn create_table(&mut self) -> Result<SqlStatement> {
        let name = self.table_name()?;
        self.expect_symbol('(')?;
        let mut columns = Vec::new();
        let mut primary_key = None;
        let mut indexes = Vec::new();
        let mut foreign_keys = Vec::new();
        loop {
            if self.eat_keyword("primary") {
                self.expect_keyword("key")?;
                self.expect_symbol('(')?;
                let pk = self.ident()?;
                self.expect_symbol(')')?;
                if primary_key.replace(pk).is_some() {
                    return Err(SqlError::Parse("duplicate PRIMARY KEY clause".into()));
                }
            } else if self.eat_keyword("index") || self.eat_keyword("key") {
                self.expect_symbol('(')?;
                indexes.push(self.ident()?);
                self.expect_symbol(')')?;
            } else if self.eat_keyword("foreign") {
                self.expect_keyword("key")?;
                self.expect_symbol('(')?;
                let column = self.ident()?;
                self.expect_symbol(')')?;
                self.expect_keyword("references")?;
                let ref_table = self.ident()?;
                self.expect_symbol('(')?;
                let ref_column = self.ident()?;
                self.expect_symbol(')')?;
                foreign_keys.push(ForeignKeySpec {
                    column,
                    ref_table,
                    ref_column,
                });
            } else {
                let col_name = self.ident()?;
                let ty = self.type_name()?;
                let not_null = if self.eat_keyword("not") {
                    self.expect_keyword("null")?;
                    true
                } else {
                    false
                };
                columns.push(ColumnSpec {
                    name: col_name,
                    ty,
                    not_null,
                });
            }
            if self.eat_symbol(')') {
                break;
            }
            self.expect_symbol(',')?;
        }
        let primary_key = primary_key
            .ok_or_else(|| SqlError::Parse("CREATE TABLE needs a PRIMARY KEY".into()))?;
        Ok(SqlStatement::CreateTable {
            name,
            columns,
            primary_key,
            indexes,
            foreign_keys,
        })
    }

    fn insert(&mut self) -> Result<SqlStatement> {
        let table = self.table_name()?;
        self.expect_symbol('(')?;
        let mut columns = Vec::new();
        loop {
            columns.push(self.ident()?);
            if self.eat_symbol(')') {
                break;
            }
            self.expect_symbol(',')?;
        }
        self.expect_keyword("values")?;
        let mut rows = Vec::new();
        loop {
            self.expect_symbol('(')?;
            let mut row = Vec::new();
            loop {
                row.push(self.literal()?);
                if self.eat_symbol(')') {
                    break;
                }
                self.expect_symbol(',')?;
            }
            if row.len() != columns.len() {
                return Err(SqlError::Parse(format!(
                    "row binds {} values for {} columns",
                    row.len(),
                    columns.len()
                )));
            }
            rows.push(row);
            if !self.eat_symbol(',') {
                break;
            }
        }
        Ok(SqlStatement::Insert {
            table,
            columns,
            rows,
        })
    }

    fn select(&mut self) -> Result<SqlStatement> {
        let projection = if self.eat_symbol('*') {
            Projection::All
        } else if self.peek_keyword("count") {
            self.pos += 1;
            self.expect_symbol('(')?;
            self.expect_symbol('*')?;
            self.expect_symbol(')')?;
            Projection::Count
        } else {
            let mut cols = Vec::new();
            loop {
                cols.push(self.column_ref()?);
                if !self.eat_symbol(',') {
                    break;
                }
            }
            Projection::Columns(cols)
        };
        self.expect_keyword("from")?;
        let from = self.table_factor()?;
        let join = if self.eat_keyword("join") {
            let factor = self.table_factor()?;
            self.expect_keyword("on")?;
            let on_left = self.column_ref()?;
            self.expect_symbol('=')?;
            let on_right = self.column_ref()?;
            Some(JoinSpec {
                factor,
                on_left,
                on_right,
            })
        } else {
            None
        };
        let mut predicates = Vec::new();
        if self.eat_keyword("where") {
            loop {
                let column = self.column_ref()?;
                self.expect_symbol('=')?;
                let value = self.literal()?;
                predicates.push(Predicate { column, value });
                if !self.eat_keyword("and") {
                    break;
                }
            }
        }
        let limit = if self.eat_keyword("limit") {
            match self.bump() {
                Some(Token::Number(n)) if n >= 0 => Some(n as usize),
                other => {
                    return Err(SqlError::Parse(format!(
                        "LIMIT needs a non-negative integer, found {other:?}"
                    )))
                }
            }
        } else {
            None
        };
        Ok(SqlStatement::Select {
            projection,
            from,
            join,
            predicates,
            limit,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn figure4_node_children_table() {
        // One of the Fig. 4 edge tables that make MySQL-DWARF expensive.
        let stmt = parse_sql(
            "CREATE TABLE dwarf.node_children (
                id INT NOT NULL,
                node_id INT NOT NULL,
                cell_id INT NOT NULL,
                PRIMARY KEY (id),
                INDEX (node_id),
                FOREIGN KEY (node_id) REFERENCES node (id),
                FOREIGN KEY (cell_id) REFERENCES cell (id)
             )",
        )
        .unwrap();
        match stmt {
            SqlStatement::CreateTable {
                columns,
                primary_key,
                indexes,
                foreign_keys,
                ..
            } => {
                assert_eq!(columns.len(), 3);
                assert!(columns[0].not_null);
                assert_eq!(primary_key, "id");
                assert_eq!(indexes, vec!["node_id"]);
                assert_eq!(foreign_keys.len(), 2);
                assert_eq!(foreign_keys[0].ref_table, "node");
            }
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn multi_row_insert() {
        let stmt = parse_sql("INSERT INTO d.cell (id, name) VALUES (1, 'a'), (2, 'b'), (3, NULL)")
            .unwrap();
        match stmt {
            SqlStatement::Insert { rows, .. } => {
                assert_eq!(rows.len(), 3);
                assert_eq!(rows[2][1], SqlValue::Null);
            }
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn select_with_join_and_where() {
        let stmt = parse_sql(
            "SELECT c.id, n.id FROM d.cell AS c \
             JOIN d.node AS n ON c.parent_id = n.id \
             WHERE c.leaf = TRUE AND n.root = FALSE LIMIT 5",
        )
        .unwrap();
        match &stmt {
            SqlStatement::Select {
                projection: Projection::Columns(cols),
                from,
                join: Some(j),
                predicates,
                limit: Some(5),
            } => {
                assert_eq!(cols.len(), 2);
                assert_eq!(cols[0].qualifier.as_deref(), Some("c"));
                assert_eq!(from.binding(), "c");
                assert_eq!(j.factor.binding(), "n");
                assert_eq!(j.on_left.column, "parent_id");
                assert_eq!(predicates.len(), 2);
            }
            other => panic!("unexpected {other:?}"),
        }
        // Round-trip through to_sql.
        assert_eq!(parse_sql(&stmt.to_sql()).unwrap(), stmt);
    }

    #[test]
    fn bare_alias_without_as() {
        let stmt = parse_sql("SELECT * FROM d.cell c WHERE c.id = 1").unwrap();
        match stmt {
            SqlStatement::Select { from, .. } => {
                assert_eq!(from.alias.as_deref(), Some("c"));
            }
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn varchar_length_is_accepted() {
        let stmt = parse_sql("CREATE TABLE d.t (name VARCHAR(255), PRIMARY KEY (name))").unwrap();
        match stmt {
            SqlStatement::CreateTable { columns, .. } => {
                assert_eq!(columns[0].ty, SqlType::Text);
            }
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn delete_and_truncate() {
        assert!(matches!(
            parse_sql("DELETE FROM d.t WHERE id = 3").unwrap(),
            SqlStatement::Delete { .. }
        ));
        assert!(matches!(
            parse_sql("TRUNCATE TABLE d.t").unwrap(),
            SqlStatement::Truncate { .. }
        ));
        assert!(matches!(
            parse_sql("TRUNCATE d.t").unwrap(),
            SqlStatement::Truncate { .. }
        ));
    }

    #[test]
    fn parse_errors() {
        for bad in [
            "",
            "SELECT * FROM t",                        // unqualified
            "INSERT INTO d.t (a, b) VALUES (1)",      // arity
            "CREATE TABLE d.t (id INT)",              // no PK
            "SELECT * FROM d.t WHERE a = 1 OR b = 2", // OR unsupported
            "DELETE FROM d.t",                        // no WHERE
            "SELECT * FROM d.t LIMIT -2",
            "CREATE TABLE d.t (id BLOB, PRIMARY KEY (id))",
            "SELECT * FROM d.t; SELECT * FROM d.t",
        ] {
            assert!(parse_sql(bad).is_err(), "{bad:?} should fail");
        }
    }
}
