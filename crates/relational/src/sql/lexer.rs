//! SQL tokenizer (shares conventions with the CQL lexer; SQL adds no new
//! token kinds for our subset).

use crate::error::{Result, SqlError};

/// A lexical token.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Token {
    /// Identifier or keyword (case preserved; keywords match
    /// case-insensitively). Backquoted identifiers are unquoted.
    Ident(String),
    /// Integer literal.
    Number(i64),
    /// Single-quoted string, unescaped.
    Str(String),
    /// Punctuation: `( ) , . = ; *`.
    Symbol(char),
}

impl Token {
    /// Case-insensitive keyword check.
    pub fn is_keyword(&self, kw: &str) -> bool {
        matches!(self, Token::Ident(s) if s.eq_ignore_ascii_case(kw))
    }
}

/// Tokenizes SQL text.
pub fn tokenize(input: &str) -> Result<Vec<Token>> {
    let mut out = Vec::new();
    let bytes = input.as_bytes();
    let mut i = 0;
    while i < bytes.len() {
        let c = bytes[i] as char;
        match c {
            ' ' | '\t' | '\r' | '\n' => i += 1,
            '-' if bytes.get(i + 1) == Some(&b'-') => {
                while i < bytes.len() && bytes[i] != b'\n' {
                    i += 1;
                }
            }
            '(' | ')' | ',' | '.' | '=' | ';' | '*' => {
                out.push(Token::Symbol(c));
                i += 1;
            }
            '`' => {
                let start = i + 1;
                let end = input[start..]
                    .find('`')
                    .ok_or_else(|| SqlError::Parse("unterminated ` identifier".into()))?;
                out.push(Token::Ident(input[start..start + end].to_string()));
                i = start + end + 1;
            }
            '\'' => {
                i += 1;
                let mut s = String::new();
                loop {
                    match bytes.get(i) {
                        None => return Err(SqlError::Parse("unterminated string".into())),
                        Some(b'\'') if bytes.get(i + 1) == Some(&b'\'') => {
                            s.push('\'');
                            i += 2;
                        }
                        Some(b'\'') => {
                            i += 1;
                            break;
                        }
                        Some(_) => {
                            let ch = input[i..].chars().next().expect("in-bounds");
                            s.push(ch);
                            i += ch.len_utf8();
                        }
                    }
                }
                out.push(Token::Str(s));
            }
            '-' | '0'..='9' => {
                let start = i;
                if c == '-' {
                    i += 1;
                    if !matches!(bytes.get(i), Some(b'0'..=b'9')) {
                        return Err(SqlError::Parse(format!("stray '-' at byte {start}")));
                    }
                }
                while matches!(bytes.get(i), Some(b'0'..=b'9')) {
                    i += 1;
                }
                let text = &input[start..i];
                out.push(Token::Number(
                    text.parse()
                        .map_err(|_| SqlError::Parse(format!("bad number {text:?}")))?,
                ));
            }
            c if c.is_alphabetic() || c == '_' => {
                let start = i;
                while i < bytes.len() {
                    let ch = input[i..].chars().next().expect("in-bounds");
                    if ch.is_alphanumeric() || ch == '_' {
                        i += ch.len_utf8();
                    } else {
                        break;
                    }
                }
                out.push(Token::Ident(input[start..i].to_string()));
            }
            other => {
                return Err(SqlError::Parse(format!(
                    "unexpected character {other:?} at byte {i}"
                )))
            }
        }
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn multi_row_insert_tokenizes() {
        let toks = tokenize("INSERT INTO d.t (id) VALUES (1), (2), (3)").unwrap();
        assert_eq!(toks.iter().filter(|t| **t == Token::Symbol('(')).count(), 4);
    }

    #[test]
    fn backquoted_identifiers() {
        let toks = tokenize("SELECT `key` FROM d.`order`").unwrap();
        assert_eq!(toks[1], Token::Ident("key".into()));
        assert_eq!(toks[5], Token::Ident("order".into()));
    }

    #[test]
    fn strings_and_escapes() {
        assert_eq!(
            tokenize("'it''s'").unwrap(),
            vec![Token::Str("it's".into())]
        );
    }

    #[test]
    fn errors() {
        assert!(tokenize("'open").is_err());
        assert!(tokenize("`open").is_err());
        assert!(tokenize("a % b").is_err());
    }
}
