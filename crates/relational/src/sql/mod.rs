//! SQL subset: lexer, AST and parser.
//!
//! Supported statements (enough to express the paper's Figure 4 schema, the
//! MySQL-Min schema, bulk loading and the rebuild queries):
//!
//! ```text
//! CREATE DATABASE <name>
//! CREATE TABLE <db>.<t> (
//!     <col> <type> [NOT NULL], ...,
//!     PRIMARY KEY (<col>),
//!     [INDEX (<col>), ...]
//!     [FOREIGN KEY (<col>) REFERENCES <t2> (<col>), ...]
//! )
//! CREATE INDEX ON <db>.<t> (<col>)
//! INSERT INTO <db>.<t> (<cols>) VALUES (<lits>), (<lits>), ...
//! SELECT *|<cols> FROM <db>.<t> [AS <alias>]
//!     [JOIN <db>.<t2> [AS <alias>] ON <q.col> = <q.col>]
//!     [WHERE <q.col> = <lit> [AND ...]] [LIMIT <n>]
//! DELETE FROM <db>.<t> WHERE <col> = <lit>
//! TRUNCATE [TABLE] <db>.<t>
//! ```

pub mod ast;
pub mod lexer;
pub mod parser;

pub use parser::parse_sql;
