//! SQL statement AST.

use crate::value::{SqlType, SqlValue};

/// `database.table` reference.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TableName {
    /// Database name.
    pub database: String,
    /// Table name.
    pub table: String,
}

impl TableName {
    /// `db.table` rendering.
    pub fn qualified(&self) -> String {
        format!("{}.{}", self.database, self.table)
    }
}

/// A possibly-qualified column reference (`t.col` or `col`).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ColumnRef {
    /// Table name or alias qualifier, when written.
    pub qualifier: Option<String>,
    /// Column name.
    pub column: String,
}

/// One column in a CREATE TABLE.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ColumnSpec {
    /// Column name.
    pub name: String,
    /// Declared type.
    pub ty: SqlType,
    /// Whether `NOT NULL` was written.
    pub not_null: bool,
}

/// A foreign-key constraint.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ForeignKeySpec {
    /// Referencing column in this table.
    pub column: String,
    /// Referenced table (same database).
    pub ref_table: String,
    /// Referenced column (must be that table's primary key).
    pub ref_column: String,
}

/// A `FROM`/`JOIN` table factor with an optional alias.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TableFactor {
    /// The table.
    pub name: TableName,
    /// `AS alias` (or bare alias).
    pub alias: Option<String>,
}

impl TableFactor {
    /// The name WHERE/projection qualifiers match against.
    pub fn binding(&self) -> &str {
        self.alias.as_deref().unwrap_or(&self.name.table)
    }
}

/// `JOIN t2 ON a.x = b.y`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct JoinSpec {
    /// Joined table.
    pub factor: TableFactor,
    /// Left side of the ON equality.
    pub on_left: ColumnRef,
    /// Right side of the ON equality.
    pub on_right: ColumnRef,
}

/// SELECT projection.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Projection {
    /// `SELECT *`.
    All,
    /// Explicit column references.
    Columns(Vec<ColumnRef>),
    /// `SELECT COUNT(*)`.
    Count,
}

/// An equality predicate `col = literal`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Predicate {
    /// Constrained column.
    pub column: ColumnRef,
    /// Required value.
    pub value: SqlValue,
}

/// A parsed SQL statement.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum SqlStatement {
    /// `CREATE DATABASE name`.
    CreateDatabase {
        /// Database name.
        name: String,
    },
    /// `CREATE TABLE db.t (...)`.
    CreateTable {
        /// Target table.
        name: TableName,
        /// Column specs in order.
        columns: Vec<ColumnSpec>,
        /// Primary-key column.
        primary_key: String,
        /// Inline `INDEX (col)` declarations.
        indexes: Vec<String>,
        /// Foreign keys.
        foreign_keys: Vec<ForeignKeySpec>,
    },
    /// `CREATE INDEX ON db.t (col)`.
    CreateIndex {
        /// Target table.
        table: TableName,
        /// Indexed column.
        column: String,
    },
    /// `INSERT INTO db.t (cols) VALUES (...), (...)`.
    Insert {
        /// Target table.
        table: TableName,
        /// Bound columns.
        columns: Vec<String>,
        /// One or more literal rows.
        rows: Vec<Vec<SqlValue>>,
    },
    /// `SELECT ... FROM ... [JOIN ...] [WHERE ...] [LIMIT n]`.
    Select {
        /// Projection.
        projection: Projection,
        /// Primary table.
        from: TableFactor,
        /// Optional single join.
        join: Option<JoinSpec>,
        /// ANDed equality predicates.
        predicates: Vec<Predicate>,
        /// Optional limit.
        limit: Option<usize>,
    },
    /// `UPDATE db.t SET c = v, ... WHERE pk = v`.
    Update {
        /// Target table.
        table: TableName,
        /// Column/value assignments.
        assignments: Vec<(String, SqlValue)>,
        /// Key predicate.
        predicate: Predicate,
    },
    /// `DELETE FROM db.t WHERE col = v`.
    Delete {
        /// Target table.
        table: TableName,
        /// Key predicate.
        predicate: Predicate,
    },
    /// `TRUNCATE [TABLE] db.t`.
    Truncate {
        /// Target table.
        table: TableName,
    },
}

impl SqlStatement {
    /// Renders back to SQL (used for DDL journaling and tests).
    pub fn to_sql(&self) -> String {
        fn col_ref(c: &ColumnRef) -> String {
            match &c.qualifier {
                Some(q) => format!("{q}.{}", c.column),
                None => c.column.clone(),
            }
        }
        match self {
            SqlStatement::CreateDatabase { name } => format!("CREATE DATABASE {name}"),
            SqlStatement::CreateTable {
                name,
                columns,
                primary_key,
                indexes,
                foreign_keys,
            } => {
                let mut parts: Vec<String> = columns
                    .iter()
                    .map(|c| {
                        let mut s = format!("{} {}", c.name, c.ty);
                        if c.not_null {
                            s.push_str(" NOT NULL");
                        }
                        s
                    })
                    .collect();
                parts.push(format!("PRIMARY KEY ({primary_key})"));
                for i in indexes {
                    parts.push(format!("INDEX ({i})"));
                }
                for fk in foreign_keys {
                    parts.push(format!(
                        "FOREIGN KEY ({}) REFERENCES {} ({})",
                        fk.column, fk.ref_table, fk.ref_column
                    ));
                }
                format!("CREATE TABLE {} ({})", name.qualified(), parts.join(", "))
            }
            SqlStatement::CreateIndex { table, column } => {
                format!("CREATE INDEX ON {} ({column})", table.qualified())
            }
            SqlStatement::Insert {
                table,
                columns,
                rows,
            } => {
                let row_texts: Vec<String> = rows
                    .iter()
                    .map(|r| {
                        let vals: Vec<String> = r.iter().map(SqlValue::to_sql_literal).collect();
                        format!("({})", vals.join(", "))
                    })
                    .collect();
                format!(
                    "INSERT INTO {} ({}) VALUES {}",
                    table.qualified(),
                    columns.join(", "),
                    row_texts.join(", ")
                )
            }
            SqlStatement::Select {
                projection,
                from,
                join,
                predicates,
                limit,
            } => {
                let proj = match projection {
                    Projection::All => "*".to_string(),
                    Projection::Columns(cols) => {
                        cols.iter().map(col_ref).collect::<Vec<_>>().join(", ")
                    }
                    Projection::Count => "COUNT(*)".to_string(),
                };
                let mut s = format!("SELECT {proj} FROM {}", from.name.qualified());
                if let Some(a) = &from.alias {
                    s.push_str(&format!(" AS {a}"));
                }
                if let Some(j) = join {
                    s.push_str(&format!(" JOIN {}", j.factor.name.qualified()));
                    if let Some(a) = &j.factor.alias {
                        s.push_str(&format!(" AS {a}"));
                    }
                    s.push_str(&format!(
                        " ON {} = {}",
                        col_ref(&j.on_left),
                        col_ref(&j.on_right)
                    ));
                }
                if !predicates.is_empty() {
                    let preds: Vec<String> = predicates
                        .iter()
                        .map(|p| format!("{} = {}", col_ref(&p.column), p.value.to_sql_literal()))
                        .collect();
                    s.push_str(&format!(" WHERE {}", preds.join(" AND ")));
                }
                if let Some(n) = limit {
                    s.push_str(&format!(" LIMIT {n}"));
                }
                s
            }
            SqlStatement::Update {
                table,
                assignments,
                predicate,
            } => {
                let sets: Vec<String> = assignments
                    .iter()
                    .map(|(c, v)| format!("{c} = {}", v.to_sql_literal()))
                    .collect();
                format!(
                    "UPDATE {} SET {} WHERE {} = {}",
                    table.qualified(),
                    sets.join(", "),
                    col_ref(&predicate.column),
                    predicate.value.to_sql_literal()
                )
            }
            SqlStatement::Delete { table, predicate } => format!(
                "DELETE FROM {} WHERE {} = {}",
                table.qualified(),
                col_ref(&predicate.column),
                predicate.value.to_sql_literal()
            ),
            SqlStatement::Truncate { table } => {
                format!("TRUNCATE TABLE {}", table.qualified())
            }
        }
    }
}
