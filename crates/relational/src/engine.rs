//! The relational engine: catalog, executor, sizes.

use crate::error::{Result, SqlError};
use crate::sql::ast::{
    ColumnRef, JoinSpec, Predicate, Projection, SqlStatement, TableFactor, TableName,
};
use crate::sql::parse_sql;
use crate::table::{TableData, TableMeta};
use crate::value::SqlValue;
use crate::wal::{RedoLog, RedoRecord};
use sc_encoding::ByteSize;
use sc_storage::Vfs;
use std::collections::BTreeMap;

/// Rows returned by a SELECT.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct QueryResult {
    /// Projected column names (qualified as `binding.column` when a join is
    /// present).
    pub columns: Vec<String>,
    /// Result rows.
    pub rows: Vec<Vec<SqlValue>>,
}

impl QueryResult {
    fn empty() -> QueryResult {
        QueryResult {
            columns: Vec::new(),
            rows: Vec::new(),
        }
    }
}

/// An embedded MySQL-like database engine.
#[derive(Debug)]
pub struct Db {
    vfs: Vfs,
    databases: BTreeMap<String, BTreeMap<String, TableData>>,
    redo: RedoLog,
    undo: RedoLog,
    trx: u64,
}

impl Db {
    /// Creates an engine over an in-memory VFS.
    pub fn in_memory() -> Db {
        Db::with_vfs(Vfs::memory())
    }

    /// Creates an engine over an explicit VFS.
    pub fn with_vfs(vfs: Vfs) -> Db {
        let redo = RedoLog::open(vfs.clone(), "redolog");
        let undo = RedoLog::open(vfs.clone(), "undolog");
        Db {
            vfs,
            databases: BTreeMap::new(),
            redo,
            undo,
            trx: 0,
        }
    }

    /// Parses and executes one SQL statement.
    pub fn execute_sql(&mut self, sql: &str) -> Result<QueryResult> {
        let stmt = parse_sql(sql)?;
        self.execute(&stmt)
    }

    /// Executes a pre-parsed statement.
    pub fn execute(&mut self, stmt: &SqlStatement) -> Result<QueryResult> {
        match stmt {
            SqlStatement::CreateDatabase { name } => {
                if self.databases.contains_key(name) {
                    return Err(SqlError::AlreadyExists(format!("database {name:?}")));
                }
                self.databases.insert(name.clone(), BTreeMap::new());
                Ok(QueryResult::empty())
            }
            SqlStatement::CreateTable {
                name,
                columns,
                primary_key,
                indexes,
                foreign_keys,
            } => {
                self.create_table(name, columns, primary_key, indexes, foreign_keys)?;
                Ok(QueryResult::empty())
            }
            SqlStatement::CreateIndex { table, column } => {
                self.table_mut(table)?.add_index(column)?;
                Ok(QueryResult::empty())
            }
            SqlStatement::Insert {
                table,
                columns,
                rows,
            } => {
                self.insert(table, columns, rows)?;
                Ok(QueryResult::empty())
            }
            SqlStatement::Select {
                projection,
                from,
                join,
                predicates,
                limit,
            } => self.select(projection, from, join.as_ref(), predicates, *limit),
            SqlStatement::Update {
                table,
                assignments,
                predicate,
            } => {
                self.update(table, assignments, predicate)?;
                Ok(QueryResult::empty())
            }
            SqlStatement::Delete { table, predicate } => {
                self.delete(table, predicate)?;
                Ok(QueryResult::empty())
            }
            SqlStatement::Truncate { table } => {
                self.table_mut(table)?.truncate()?;
                Ok(QueryResult::empty())
            }
        }
    }

    fn table(&self, name: &TableName) -> Result<&TableData> {
        self.databases
            .get(&name.database)
            .ok_or_else(|| SqlError::UnknownDatabase(name.database.clone()))?
            .get(&name.table)
            .ok_or_else(|| SqlError::UnknownTable(name.qualified()))
    }

    fn table_mut(&mut self, name: &TableName) -> Result<&mut TableData> {
        self.databases
            .get_mut(&name.database)
            .ok_or_else(|| SqlError::UnknownDatabase(name.database.clone()))?
            .get_mut(&name.table)
            .ok_or_else(|| SqlError::UnknownTable(name.qualified()))
    }

    fn create_table(
        &mut self,
        name: &TableName,
        columns: &[crate::sql::ast::ColumnSpec],
        primary_key: &str,
        indexes: &[String],
        foreign_keys: &[crate::sql::ast::ForeignKeySpec],
    ) -> Result<()> {
        let db = self
            .databases
            .get(&name.database)
            .ok_or_else(|| SqlError::UnknownDatabase(name.database.clone()))?;
        if db.contains_key(&name.table) {
            return Err(SqlError::AlreadyExists(format!(
                "table {}",
                name.qualified()
            )));
        }
        if columns.is_empty() {
            return Err(SqlError::Parse(format!(
                "table {} must have at least one column",
                name.qualified()
            )));
        }
        for (i, c) in columns.iter().enumerate() {
            if columns[..i].iter().any(|o| o.name == c.name) {
                return Err(SqlError::Parse(format!("duplicate column {:?}", c.name)));
            }
        }
        let pk = columns
            .iter()
            .position(|c| c.name == primary_key)
            .ok_or_else(|| SqlError::UnknownColumn {
                table: name.table.clone(),
                column: primary_key.to_string(),
            })?;
        for idx in indexes {
            if !columns.iter().any(|c| &c.name == idx) {
                return Err(SqlError::UnknownColumn {
                    table: name.table.clone(),
                    column: idx.clone(),
                });
            }
        }
        // Foreign keys must reference the primary key of an existing table
        // in the same database.
        for fk in foreign_keys {
            if !columns.iter().any(|c| c.name == fk.column) {
                return Err(SqlError::UnknownColumn {
                    table: name.table.clone(),
                    column: fk.column.clone(),
                });
            }
            let target = db.get(&fk.ref_table).ok_or_else(|| {
                SqlError::UnknownTable(format!("{}.{}", name.database, fk.ref_table))
            })?;
            let target_pk = &target.meta().columns[target.meta().primary_key].name;
            if target_pk != &fk.ref_column {
                return Err(SqlError::Unsupported(format!(
                    "foreign keys must reference the primary key ({}.{})",
                    fk.ref_table, target_pk
                )));
            }
        }
        let meta = TableMeta {
            database: name.database.clone(),
            name: name.table.clone(),
            columns: columns.to_vec(),
            primary_key: pk,
            indexes: indexes.to_vec(),
            foreign_keys: foreign_keys.to_vec(),
        };
        let data = TableData::new(meta, self.vfs.clone());
        self.databases
            .get_mut(&name.database)
            .expect("checked above")
            .insert(name.table.clone(), data);
        Ok(())
    }

    fn insert(
        &mut self,
        table: &TableName,
        columns: &[String],
        rows: &[Vec<SqlValue>],
    ) -> Result<()> {
        let meta = self.table(table)?.meta().clone();
        // Map bound columns to positions and type-check once.
        let mut positions = Vec::with_capacity(columns.len());
        for c in columns {
            positions.push(
                meta.column_index(c)
                    .ok_or_else(|| SqlError::UnknownColumn {
                        table: meta.name.clone(),
                        column: c.clone(),
                    })?,
            );
        }
        for row in rows {
            let mut values = vec![SqlValue::Null; meta.columns.len()];
            for (&pos, v) in positions.iter().zip(row) {
                if !v.matches(meta.columns[pos].ty) {
                    return Err(SqlError::TypeMismatch {
                        column: meta.columns[pos].name.clone(),
                        expected: meta.columns[pos].ty.name().to_string(),
                        found: v.type_name().to_string(),
                    });
                }
                values[pos] = v.clone();
            }
            // Foreign-key validation: each non-null FK value must exist as
            // the referenced table's primary key.
            for fk in &meta.foreign_keys {
                let idx = meta.column_index(&fk.column).expect("validated at create");
                let v = &values[idx];
                if v.is_null() {
                    continue;
                }
                let target = self.table(&TableName {
                    database: meta.database.clone(),
                    table: fk.ref_table.clone(),
                })?;
                if !target.pk_exists(v) {
                    return Err(SqlError::ForeignKeyViolation {
                        constraint: format!(
                            "{}.{} -> {}({}) value {}",
                            meta.name,
                            fk.column,
                            fk.ref_table,
                            fk.ref_column,
                            v.to_sql_literal()
                        ),
                    });
                }
            }
            self.trx += 1;
            let trx = self.trx;
            // Write-ahead: the row image hits the redo log before the heap
            // and indexes, as InnoDB does.
            let mut row_image = sc_encoding::Encoder::new();
            for v in &values {
                v.encode(&mut row_image);
            }
            self.redo.append(&RedoRecord {
                table: meta.qualified(),
                key: values[meta.primary_key].encode_key(),
                row: row_image.into_bytes(),
            })?;
            // Undo record (InnoDB writes one per row for rollback; the undo
            // of an insert is a delete-by-key, so only the key is logged).
            self.undo.append(&RedoRecord {
                table: meta.qualified(),
                key: values[meta.primary_key].encode_key(),
                row: Vec::new(),
            })?;
            self.table_mut(table)?.insert(values, trx)?;
        }
        Ok(())
    }

    /// SQL UPDATE by primary key: reads the current row, applies the
    /// assignments, and rewrites it (delete + reinsert through the normal
    /// paths so indexes and logs stay consistent).
    fn update(
        &mut self,
        table: &TableName,
        assignments: &[(String, SqlValue)],
        predicate: &Predicate,
    ) -> Result<()> {
        let meta = self.table(table)?.meta().clone();
        let pk_name = &meta.columns[meta.primary_key].name;
        if &predicate.column.column != pk_name {
            return Err(SqlError::Unsupported(format!(
                "UPDATE is by primary key ({pk_name})"
            )));
        }
        let Some(mut values) = self.table(table)?.get(&predicate.value)? else {
            return Ok(()); // MySQL updates zero rows silently.
        };
        for (column, value) in assignments {
            let idx = meta
                .column_index(column)
                .ok_or_else(|| SqlError::UnknownColumn {
                    table: meta.name.clone(),
                    column: column.clone(),
                })?;
            if idx == meta.primary_key {
                return Err(SqlError::Unsupported(
                    "the primary key cannot be SET".into(),
                ));
            }
            if !value.matches(meta.columns[idx].ty) {
                return Err(SqlError::TypeMismatch {
                    column: column.clone(),
                    expected: meta.columns[idx].ty.name().to_string(),
                    found: value.type_name().to_string(),
                });
            }
            values[idx] = value.clone();
        }
        self.delete(table, predicate)?;
        let columns: Vec<String> = meta.columns.iter().map(|c| c.name.clone()).collect();
        self.insert(table, &columns, &[values])?;
        Ok(())
    }

    fn delete(&mut self, table: &TableName, predicate: &Predicate) -> Result<()> {
        let meta = self.table(table)?.meta().clone();
        let pk_name = &meta.columns[meta.primary_key].name;
        if &predicate.column.column != pk_name {
            return Err(SqlError::Unsupported(format!(
                "DELETE is by primary key ({pk_name})"
            )));
        }
        self.redo.append(&RedoRecord {
            table: meta.qualified(),
            key: predicate.value.encode_key(),
            row: Vec::new(),
        })?;
        self.table_mut(table)?.delete(&predicate.value)?;
        Ok(())
    }

    /// Resolves which side of the query a column reference binds to.
    /// Returns (side, column index): side 0 = from, 1 = join.
    fn resolve_column(
        from: &TableFactor,
        from_meta: &TableMeta,
        join: Option<(&TableFactor, &TableMeta)>,
        col: &ColumnRef,
    ) -> Result<(usize, usize)> {
        let mut candidates = Vec::new();
        let matches_side = |factor: &TableFactor, q: &Option<String>| match q {
            Some(q) => factor.binding() == q,
            None => true,
        };
        if matches_side(from, &col.qualifier) {
            if let Some(i) = from_meta.column_index(&col.column) {
                candidates.push((0, i));
            }
        }
        if let Some((jf, jm)) = join {
            if matches_side(jf, &col.qualifier) {
                if let Some(i) = jm.column_index(&col.column) {
                    candidates.push((1, i));
                }
            }
        }
        match candidates.len() {
            1 => Ok(candidates[0]),
            0 => Err(SqlError::UnknownColumn {
                table: col
                    .qualifier
                    .clone()
                    .unwrap_or_else(|| from.binding().to_string()),
                column: col.column.clone(),
            }),
            _ => Err(SqlError::Unsupported(format!(
                "ambiguous column {:?}; qualify it",
                col.column
            ))),
        }
    }

    fn select(
        &mut self,
        projection: &Projection,
        from: &TableFactor,
        join: Option<&JoinSpec>,
        predicates: &[Predicate],
        limit: Option<usize>,
    ) -> Result<QueryResult> {
        let from_meta = self.table(&from.name)?.meta().clone();
        let join_meta = match join {
            Some(j) => Some(self.table(&j.factor.name)?.meta().clone()),
            None => None,
        };
        let join_ctx = join.map(|j| (&j.factor, &**join_meta.as_ref().expect("set above")));

        // Split predicates by side.
        let mut from_preds: Vec<(usize, &SqlValue)> = Vec::new();
        let mut join_preds: Vec<(usize, &SqlValue)> = Vec::new();
        for p in predicates {
            let (side, idx) = Self::resolve_column(from, &from_meta, join_ctx, &p.column)?;
            if side == 0 {
                from_preds.push((idx, &p.value));
            } else {
                join_preds.push((idx, &p.value));
            }
        }

        let fetch_side = |db: &Self,
                          name: &TableName,
                          meta: &TableMeta,
                          preds: &[(usize, &SqlValue)]|
         -> Result<Vec<Vec<SqlValue>>> {
            let data = db.table(name)?;
            // Pick the best access path: pk equality, then index, then scan.
            for (idx, value) in preds {
                if *idx == meta.primary_key {
                    let row = data.get(value)?;
                    return Ok(row
                        .into_iter()
                        .filter(|r| preds.iter().all(|(i, v)| &&r[*i] == v))
                        .collect());
                }
            }
            for (idx, value) in preds {
                let col = &meta.columns[*idx].name;
                if let Some(rows) = data.find_by_index(col, value)? {
                    return Ok(rows
                        .into_iter()
                        .filter(|r| preds.iter().all(|(i, v)| &&r[*i] == v))
                        .collect());
                }
            }
            Ok(data
                .scan()?
                .into_iter()
                .filter(|r| preds.iter().all(|(i, v)| &&r[*i] == v))
                .collect())
        };

        let left_rows = fetch_side(self, &from.name, &from_meta, &from_preds)?;

        let mut combined: Vec<(Vec<SqlValue>, Option<Vec<SqlValue>>)> = Vec::new();
        if let (Some(j), Some(jm)) = (join, join_meta.as_ref()) {
            let right_rows = fetch_side(self, &j.factor.name, jm, &join_preds)?;
            // Resolve ON sides.
            let (l_side, l_idx) = Self::resolve_column(from, &from_meta, join_ctx, &j.on_left)?;
            let (r_side, r_idx) = Self::resolve_column(from, &from_meta, join_ctx, &j.on_right)?;
            if l_side == r_side {
                return Err(SqlError::Unsupported(
                    "JOIN ON must compare the two tables".into(),
                ));
            }
            let (from_on, join_on) = if l_side == 0 {
                (l_idx, r_idx)
            } else {
                (r_idx, l_idx)
            };
            // Hash join: build on the right side.
            let mut built: std::collections::HashMap<Vec<u8>, Vec<&Vec<SqlValue>>> =
                std::collections::HashMap::new();
            for r in &right_rows {
                if !r[join_on].is_null() {
                    built.entry(r[join_on].encode_key()).or_default().push(r);
                }
            }
            for l in left_rows {
                if l[from_on].is_null() {
                    continue;
                }
                if let Some(matches) = built.get(&l[from_on].encode_key()) {
                    for r in matches {
                        combined.push((l.clone(), Some((*r).clone())));
                    }
                }
            }
        } else {
            combined = left_rows.into_iter().map(|r| (r, None)).collect();
        }

        if let Some(n) = limit {
            combined.truncate(n);
        }
        if matches!(projection, Projection::Count) {
            return Ok(QueryResult {
                columns: vec!["COUNT(*)".to_string()],
                rows: vec![vec![SqlValue::Int(combined.len() as i64)]],
            });
        }

        // Projection.
        let qualified = join.is_some();
        let name_of = |factor: &TableFactor, col: &str| {
            if qualified {
                format!("{}.{col}", factor.binding())
            } else {
                col.to_string()
            }
        };
        let mut out_names = Vec::new();
        let mut selectors: Vec<(usize, usize)> = Vec::new();
        match projection {
            Projection::Count => unreachable!("handled above"),
            Projection::All => {
                for (i, c) in from_meta.columns.iter().enumerate() {
                    out_names.push(name_of(from, &c.name));
                    selectors.push((0, i));
                }
                if let (Some(j), Some(jm)) = (join, join_meta.as_ref()) {
                    for (i, c) in jm.columns.iter().enumerate() {
                        out_names.push(name_of(&j.factor, &c.name));
                        selectors.push((1, i));
                    }
                }
            }
            Projection::Columns(cols) => {
                for c in cols {
                    let (side, idx) = Self::resolve_column(from, &from_meta, join_ctx, c)?;
                    let factor = if side == 0 {
                        from
                    } else {
                        &join.expect("side 1 only with join").factor
                    };
                    let meta = if side == 0 {
                        &from_meta
                    } else {
                        join_meta.as_ref().expect("side 1 only with join")
                    };
                    out_names.push(name_of(factor, &meta.columns[idx].name));
                    selectors.push((side, idx));
                }
            }
        }
        let rows = combined
            .into_iter()
            .map(|(l, r)| {
                selectors
                    .iter()
                    .map(|(side, idx)| {
                        if *side == 0 {
                            l[*idx].clone()
                        } else {
                            r.as_ref().expect("join row present")[*idx].clone()
                        }
                    })
                    .collect()
            })
            .collect();
        Ok(QueryResult {
            columns: out_names,
            rows,
        })
    }

    /// Checkpoints every table (heap pages + index files) so sizes are
    /// accurate.
    pub fn checkpoint_all(&mut self) -> Result<()> {
        for db in self.databases.values_mut() {
            for t in db.values_mut() {
                t.checkpoint()?;
            }
        }
        // Checkpointed state makes the redo/undo entries redundant.
        self.redo.truncate()?;
        self.undo.truncate()?;
        Ok(())
    }

    /// Bytes currently in the redo log (not part of table sizes).
    pub fn redo_log_size(&self) -> u64 {
        self.redo.size()
    }

    /// On-disk size of one table (checkpoint first).
    pub fn table_size(&self, name: &TableName) -> Result<ByteSize> {
        Ok(ByteSize::bytes(self.table(name)?.disk_size()))
    }

    /// Total on-disk size of a database — the paper's Table 4 measurement
    /// for the MySQL schemas.
    pub fn database_size(&self, database: &str) -> Result<ByteSize> {
        let db = self
            .databases
            .get(database)
            .ok_or_else(|| SqlError::UnknownDatabase(database.to_string()))?;
        Ok(ByteSize::bytes(db.values().map(TableData::disk_size).sum()))
    }

    /// Live row count of a table.
    pub fn row_count(&self, name: &TableName) -> Result<u64> {
        Ok(self.table(name)?.row_count())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn name(t: &str) -> TableName {
        TableName {
            database: "d".into(),
            table: t.into(),
        }
    }

    fn setup() -> Db {
        let mut db = Db::in_memory();
        db.execute_sql("CREATE DATABASE d").unwrap();
        db.execute_sql("CREATE TABLE d.node (id INT NOT NULL, root BOOL, PRIMARY KEY (id))")
            .unwrap();
        db.execute_sql(
            "CREATE TABLE d.cell (id INT NOT NULL, name TEXT, node_id INT, \
             PRIMARY KEY (id), INDEX (node_id), \
             FOREIGN KEY (node_id) REFERENCES node (id))",
        )
        .unwrap();
        db
    }

    #[test]
    fn insert_select_pk() {
        let mut db = setup();
        db.execute_sql("INSERT INTO d.node (id, root) VALUES (1, TRUE), (2, FALSE)")
            .unwrap();
        let r = db
            .execute_sql("SELECT root FROM d.node WHERE id = 2")
            .unwrap();
        assert_eq!(r.rows, vec![vec![SqlValue::Bool(false)]]);
    }

    #[test]
    fn foreign_keys_validated() {
        let mut db = setup();
        db.execute_sql("INSERT INTO d.node (id) VALUES (1)")
            .unwrap();
        db.execute_sql("INSERT INTO d.cell (id, node_id) VALUES (10, 1)")
            .unwrap();
        assert!(matches!(
            db.execute_sql("INSERT INTO d.cell (id, node_id) VALUES (11, 99)"),
            Err(SqlError::ForeignKeyViolation { .. })
        ));
        // NULL FK is allowed.
        db.execute_sql("INSERT INTO d.cell (id) VALUES (12)")
            .unwrap();
    }

    #[test]
    fn fk_must_reference_pk() {
        let mut db = setup();
        assert!(matches!(
            db.execute_sql(
                "CREATE TABLE d.bad (id INT, nid INT, PRIMARY KEY (id), \
                 FOREIGN KEY (nid) REFERENCES node (root))"
            ),
            Err(SqlError::Unsupported(_))
        ));
    }

    #[test]
    fn index_lookup_path() {
        let mut db = setup();
        db.execute_sql("INSERT INTO d.node (id) VALUES (1), (2)")
            .unwrap();
        for i in 0..10 {
            db.execute_sql(&format!(
                "INSERT INTO d.cell (id, name, node_id) VALUES ({i}, 'c{i}', {})",
                i % 2 + 1
            ))
            .unwrap();
        }
        let r = db
            .execute_sql("SELECT id FROM d.cell WHERE node_id = 1")
            .unwrap();
        assert_eq!(r.rows.len(), 5);
    }

    #[test]
    fn join_produces_qualified_columns() {
        let mut db = setup();
        db.execute_sql("INSERT INTO d.node (id, root) VALUES (1, TRUE), (2, FALSE)")
            .unwrap();
        db.execute_sql(
            "INSERT INTO d.cell (id, name, node_id) VALUES \
             (10, 'a', 1), (11, 'b', 1), (12, 'c', 2)",
        )
        .unwrap();
        let r = db
            .execute_sql(
                "SELECT c.name, n.root FROM d.cell AS c \
                 JOIN d.node AS n ON c.node_id = n.id \
                 WHERE n.root = TRUE",
            )
            .unwrap();
        assert_eq!(r.columns, vec!["c.name", "n.root"]);
        assert_eq!(r.rows.len(), 2);
        assert!(r.rows.iter().all(|row| row[1] == SqlValue::Bool(true)));
    }

    #[test]
    fn join_select_star() {
        let mut db = setup();
        db.execute_sql("INSERT INTO d.node (id) VALUES (1)")
            .unwrap();
        db.execute_sql("INSERT INTO d.cell (id, node_id) VALUES (10, 1)")
            .unwrap();
        let r = db
            .execute_sql("SELECT * FROM d.cell JOIN d.node ON cell.node_id = node.id")
            .unwrap();
        assert_eq!(r.columns.len(), 5); // 3 cell + 2 node
        assert!(r.columns[0].starts_with("cell."));
        assert_eq!(r.rows.len(), 1);
    }

    #[test]
    fn ambiguous_column_is_rejected() {
        let mut db = setup();
        db.execute_sql("INSERT INTO d.node (id) VALUES (1)")
            .unwrap();
        db.execute_sql("INSERT INTO d.cell (id, node_id) VALUES (10, 1)")
            .unwrap();
        assert!(matches!(
            db.execute_sql("SELECT id FROM d.cell JOIN d.node ON cell.node_id = node.id"),
            Err(SqlError::Unsupported(_))
        ));
    }

    #[test]
    fn delete_by_pk_only() {
        let mut db = setup();
        db.execute_sql("INSERT INTO d.node (id) VALUES (1)")
            .unwrap();
        db.execute_sql("DELETE FROM d.node WHERE id = 1").unwrap();
        assert_eq!(db.row_count(&name("node")).unwrap(), 0);
        assert!(matches!(
            db.execute_sql("DELETE FROM d.node WHERE root = TRUE"),
            Err(SqlError::Unsupported(_))
        ));
    }

    #[test]
    fn sizes_require_checkpoint() {
        let mut db = setup();
        for i in 0..500 {
            db.execute_sql(&format!("INSERT INTO d.node (id) VALUES ({i})"))
                .unwrap();
        }
        db.checkpoint_all().unwrap();
        let size = db.database_size("d").unwrap();
        assert!(size.as_bytes() >= 16 * 1024, "got {size}");
        let t = db.table_size(&name("node")).unwrap();
        assert!(t.as_bytes() > 0);
    }

    #[test]
    fn truncate() {
        let mut db = setup();
        db.execute_sql("INSERT INTO d.node (id) VALUES (1)")
            .unwrap();
        db.execute_sql("TRUNCATE TABLE d.node").unwrap();
        assert_eq!(
            db.execute_sql("SELECT * FROM d.node").unwrap().rows.len(),
            0
        );
    }

    #[test]
    fn errors_for_unknown_objects() {
        let mut db = Db::in_memory();
        assert!(matches!(
            db.execute_sql("INSERT INTO d.t (id) VALUES (1)"),
            Err(SqlError::UnknownDatabase(_))
        ));
        db.execute_sql("CREATE DATABASE d").unwrap();
        assert!(matches!(
            db.execute_sql("SELECT * FROM d.t"),
            Err(SqlError::UnknownTable(_))
        ));
        assert!(matches!(
            db.execute_sql("CREATE DATABASE d"),
            Err(SqlError::AlreadyExists(_))
        ));
    }

    #[test]
    fn type_mismatch_rejected() {
        let mut db = setup();
        assert!(matches!(
            db.execute_sql("INSERT INTO d.node (id, root) VALUES (1, 'yes')"),
            Err(SqlError::TypeMismatch { .. })
        ));
    }
}
