//! Per-table runtime: heap + primary/secondary B+tree indexes.

use crate::btree::BPlusTree;
use crate::error::{Result, SqlError};
use crate::page::{Heap, RowLoc};
use crate::rowfmt::{decode_row, encode_row, RecordHeader};
use crate::sql::ast::{ColumnSpec, ForeignKeySpec};
use crate::value::{SqlType, SqlValue};
use sc_encoding::{Decoder, Encoder};
use sc_storage::Vfs;
use std::sync::Arc;

/// Static description of a table.
#[derive(Debug, Clone)]
pub struct TableMeta {
    /// Owning database.
    pub database: String,
    /// Table name.
    pub name: String,
    /// Columns in declaration order.
    pub columns: Vec<ColumnSpec>,
    /// Index into `columns` of the primary key.
    pub primary_key: usize,
    /// Secondary-indexed column names.
    pub indexes: Vec<String>,
    /// Foreign keys.
    pub foreign_keys: Vec<ForeignKeySpec>,
}

impl TableMeta {
    /// Index of a column by name.
    pub fn column_index(&self, name: &str) -> Option<usize> {
        self.columns.iter().position(|c| c.name == name)
    }

    /// Column types in order.
    pub fn types(&self) -> Vec<SqlType> {
        self.columns.iter().map(|c| c.ty).collect()
    }

    /// `db.table`.
    pub fn qualified(&self) -> String {
        format!("{}.{}", self.database, self.name)
    }
}

/// Composite secondary-index key: `varint(len(value_key)) value_key pk_key`.
/// The embedded varint makes per-value prefix scans unambiguous.
fn composite_key(value: &SqlValue, pk_key: &[u8]) -> Vec<u8> {
    let vk = value.encode_key();
    let mut enc = Encoder::new();
    enc.put_bytes(&vk);
    enc.put_raw(pk_key);
    enc.into_bytes()
}

/// Prefix covering every composite key for `value`.
fn composite_prefix(value: &SqlValue) -> Vec<u8> {
    let vk = value.encode_key();
    let mut enc = Encoder::new();
    enc.put_bytes(&vk);
    enc.into_bytes()
}

/// Runtime state of one table.
#[derive(Debug)]
pub struct TableData {
    meta: Arc<TableMeta>,
    types: Vec<SqlType>,
    vfs: Vfs,
    heap: Heap,
    pk: BPlusTree<RowLoc>,
    secondary: Vec<(String, BPlusTree<RowLoc>)>,
    live_rows: u64,
}

impl TableData {
    /// Creates runtime state for a freshly created table.
    pub fn new(meta: TableMeta, vfs: Vfs) -> TableData {
        let heap = Heap::new(vfs.clone(), format!("{}/{}.ibd", meta.database, meta.name));
        let secondary = meta
            .indexes
            .iter()
            .map(|c| (c.clone(), BPlusTree::new()))
            .collect();
        let types = meta.types();
        TableData {
            meta: Arc::new(meta),
            types,
            vfs,
            heap,
            pk: BPlusTree::new(),
            secondary,
            live_rows: 0,
        }
    }

    /// The table's metadata (cheap `Arc` to clone for hot paths).
    pub fn meta(&self) -> &Arc<TableMeta> {
        &self.meta
    }

    /// Number of live rows.
    pub fn row_count(&self) -> u64 {
        self.live_rows
    }

    /// Adds (and backfills) a secondary index.
    pub fn add_index(&mut self, column: &str) -> Result<()> {
        if self.meta.indexes.iter().any(|c| c == column) {
            return Err(SqlError::AlreadyExists(format!("index on {column:?}")));
        }
        let col_idx = self
            .meta
            .column_index(column)
            .ok_or_else(|| SqlError::UnknownColumn {
                table: self.meta.name.clone(),
                column: column.to_string(),
            })?;
        Arc::make_mut(&mut self.meta)
            .indexes
            .push(column.to_string());
        let mut tree = BPlusTree::new();
        for (pk_key, loc) in self.pk.iter() {
            let row = self.read_row(*loc)?;
            if !row[col_idx].is_null() {
                tree.insert(composite_key(&row[col_idx], pk_key), *loc);
            }
        }
        self.secondary.push((column.to_string(), tree));
        Ok(())
    }

    fn read_row(&self, loc: RowLoc) -> Result<Vec<SqlValue>> {
        let bytes = self.heap.read(loc)?;
        let mut dec = Decoder::new(&bytes);
        let (values, _) = decode_row(&self.types, &mut dec)?;
        Ok(values)
    }

    /// Inserts a full row (already type-checked by the executor).
    pub fn insert(&mut self, values: Vec<SqlValue>, trx_id: u64) -> Result<()> {
        let pk_value = &values[self.meta.primary_key];
        if pk_value.is_null() {
            return Err(SqlError::NullViolation(
                self.meta.columns[self.meta.primary_key].name.clone(),
            ));
        }
        for (spec, v) in self.meta.columns.iter().zip(&values) {
            if spec.not_null && v.is_null() {
                return Err(SqlError::NullViolation(spec.name.clone()));
            }
        }
        let pk_key = pk_value.encode_key();
        if self.pk.get(&pk_key).is_some() {
            return Err(SqlError::DuplicateKey(pk_value.to_sql_literal()));
        }
        let header = RecordHeader {
            flags: 0,
            heap_no: (self.heap.row_count() % u64::from(u16::MAX)) as u16,
            next: 0,
            trx_id: trx_id & 0x0000_ffff_ffff_ffff,
            roll_ptr: 0,
        };
        let mut enc = Encoder::new();
        encode_row(&values, &self.types, header, &mut enc);
        let loc = self.heap.append(enc.bytes())?;
        self.pk.insert(pk_key.clone(), loc);
        for (column, tree) in &mut self.secondary {
            let idx = self
                .meta
                .column_index(column)
                .expect("index on known column");
            if !values[idx].is_null() {
                tree.insert(composite_key(&values[idx], &pk_key), loc);
            }
        }
        self.live_rows += 1;
        Ok(())
    }

    /// Point lookup by primary key.
    pub fn get(&self, pk_value: &SqlValue) -> Result<Option<Vec<SqlValue>>> {
        match self.pk.get(&pk_value.encode_key()) {
            Some(loc) => Ok(Some(self.read_row(*loc)?)),
            None => Ok(None),
        }
    }

    /// Deletes by primary key; returns whether a row was removed.
    pub fn delete(&mut self, pk_value: &SqlValue) -> Result<bool> {
        let pk_key = pk_value.encode_key();
        let Some(loc) = self.pk.remove(&pk_key) else {
            return Ok(false);
        };
        let row = self.read_row(loc)?;
        for (column, tree) in &mut self.secondary {
            let idx = self
                .meta
                .column_index(column)
                .expect("index on known column");
            if !row[idx].is_null() {
                tree.remove(&composite_key(&row[idx], &pk_key));
            }
        }
        self.live_rows -= 1;
        Ok(true)
    }

    /// Full scan in primary-key order.
    pub fn scan(&self) -> Result<Vec<Vec<SqlValue>>> {
        let mut out = Vec::with_capacity(self.pk.len());
        for (_, loc) in self.pk.iter() {
            out.push(self.read_row(*loc)?);
        }
        Ok(out)
    }

    /// Rows whose indexed `column` equals `value` (via the secondary index).
    /// Returns `None` if no index exists on the column.
    pub fn find_by_index(
        &self,
        column: &str,
        value: &SqlValue,
    ) -> Result<Option<Vec<Vec<SqlValue>>>> {
        let Some((_, tree)) = self.secondary.iter().find(|(c, _)| c == column) else {
            return Ok(None);
        };
        let prefix = composite_prefix(value);
        let mut out = Vec::new();
        for (_, loc) in tree.iter_prefix(&prefix) {
            out.push(self.read_row(*loc)?);
        }
        Ok(Some(out))
    }

    /// Whether the primary key exists (foreign-key validation).
    pub fn pk_exists(&self, value: &SqlValue) -> bool {
        self.pk.get(&value.encode_key()).is_some()
    }

    fn index_file(&self, name: &str) -> String {
        format!("{}/{}.{}.idx", self.meta.database, self.meta.name, name)
    }

    /// Persists indexes and the open heap page; call before measuring size.
    ///
    /// Index files are rewritten wholesale with InnoDB-like per-entry
    /// metadata (record header + page pointer), so index storage is part of
    /// the measured footprint exactly as it is in MySQL.
    pub fn checkpoint(&mut self) -> Result<()> {
        self.heap.checkpoint()?;
        let write_index = |vfs: &Vfs,
                           file: &str,
                           entries: &mut dyn Iterator<Item = (&[u8], &RowLoc)>|
         -> Result<()> {
            vfs.delete(file)?;
            let mut enc = Encoder::new();
            for (i, (key, loc)) in entries.enumerate() {
                // Per-entry metadata: record header (5B: flags + heap_no +
                // next) + child/page pointer (4B) + owned slot (2B) + key
                // + row locator.
                enc.put_u8(0);
                enc.put_raw(&((i % usize::from(u16::MAX)) as u16).to_le_bytes());
                enc.put_raw(&0u16.to_le_bytes());
                enc.put_raw(&((loc.offset / crate::page::PAGE_SIZE as u64) as u32).to_le_bytes());
                enc.put_raw(&0u16.to_le_bytes());
                enc.put_bytes(key);
                enc.put_u64(loc.offset);
                enc.put_u32(loc.len);
            }
            if !enc.is_empty() {
                vfs.append(file, enc.bytes())?;
            }
            Ok(())
        };
        write_index(&self.vfs, &self.index_file("pk"), &mut self.pk.iter())?;
        for (column, tree) in &self.secondary {
            write_index(&self.vfs, &self.index_file(column), &mut tree.iter())?;
        }
        Ok(())
    }

    /// On-disk bytes: heap file plus checkpointed index files.
    pub fn disk_size(&self) -> u64 {
        let mut total = self.heap.disk_size();
        total += self.vfs.len(&self.index_file("pk")).unwrap_or(0);
        for (column, _) in &self.secondary {
            total += self.vfs.len(&self.index_file(column)).unwrap_or(0);
        }
        total
    }

    /// TRUNCATE: drop all rows and files.
    pub fn truncate(&mut self) -> Result<()> {
        self.heap.reset()?;
        self.pk = BPlusTree::new();
        for (_, tree) in &mut self.secondary {
            *tree = BPlusTree::new();
        }
        self.vfs.delete(&self.index_file("pk"))?;
        let columns: Vec<String> = self.secondary.iter().map(|(c, _)| c.clone()).collect();
        for c in columns {
            self.vfs.delete(&self.index_file(&c))?;
        }
        self.live_rows = 0;
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn meta() -> TableMeta {
        TableMeta {
            database: "d".into(),
            name: "cell".into(),
            columns: vec![
                ColumnSpec {
                    name: "id".into(),
                    ty: SqlType::Int,
                    not_null: true,
                },
                ColumnSpec {
                    name: "name".into(),
                    ty: SqlType::Text,
                    not_null: false,
                },
                ColumnSpec {
                    name: "parent".into(),
                    ty: SqlType::Int,
                    not_null: false,
                },
            ],
            primary_key: 0,
            indexes: vec!["parent".into()],
            foreign_keys: vec![],
        }
    }

    fn row(id: i64, name: &str, parent: i64) -> Vec<SqlValue> {
        vec![
            SqlValue::Int(id),
            SqlValue::Text(name.into()),
            SqlValue::Int(parent),
        ]
    }

    #[test]
    fn insert_get_scan() {
        let mut t = TableData::new(meta(), Vfs::memory());
        t.insert(row(2, "b", 10), 1).unwrap();
        t.insert(row(1, "a", 10), 2).unwrap();
        assert_eq!(t.row_count(), 2);
        assert_eq!(
            t.get(&SqlValue::Int(1)).unwrap().unwrap()[1],
            SqlValue::Text("a".into())
        );
        assert!(t.get(&SqlValue::Int(9)).unwrap().is_none());
        let rows = t.scan().unwrap();
        assert_eq!(rows[0][0], SqlValue::Int(1), "scan is pk-ordered");
    }

    #[test]
    fn duplicate_pk_rejected() {
        let mut t = TableData::new(meta(), Vfs::memory());
        t.insert(row(1, "a", 0), 1).unwrap();
        assert!(matches!(
            t.insert(row(1, "dup", 0), 2),
            Err(SqlError::DuplicateKey(_))
        ));
    }

    #[test]
    fn null_constraints() {
        let mut t = TableData::new(meta(), Vfs::memory());
        assert!(matches!(
            t.insert(vec![SqlValue::Null, SqlValue::Null, SqlValue::Null], 1),
            Err(SqlError::NullViolation(_))
        ));
    }

    #[test]
    fn secondary_index_lookup() {
        let mut t = TableData::new(meta(), Vfs::memory());
        for i in 0..20 {
            t.insert(row(i, "x", i % 4), 1).unwrap();
        }
        let hits = t
            .find_by_index("parent", &SqlValue::Int(2))
            .unwrap()
            .unwrap();
        assert_eq!(hits.len(), 5);
        assert!(hits.iter().all(|r| r[2] == SqlValue::Int(2)));
        assert!(t.find_by_index("name", &SqlValue::Null).unwrap().is_none());
    }

    #[test]
    fn add_index_backfills() {
        let mut t = TableData::new(meta(), Vfs::memory());
        for i in 0..10 {
            t.insert(row(i, if i % 2 == 0 { "even" } else { "odd" }, 0), 1)
                .unwrap();
        }
        t.add_index("name").unwrap();
        let evens = t
            .find_by_index("name", &SqlValue::Text("even".into()))
            .unwrap()
            .unwrap();
        assert_eq!(evens.len(), 5);
        assert!(matches!(
            t.add_index("name"),
            Err(SqlError::AlreadyExists(_))
        ));
    }

    #[test]
    fn delete_updates_indexes() {
        let mut t = TableData::new(meta(), Vfs::memory());
        for i in 0..10 {
            t.insert(row(i, "x", 7), 1).unwrap();
        }
        assert!(t.delete(&SqlValue::Int(3)).unwrap());
        assert!(!t.delete(&SqlValue::Int(3)).unwrap());
        assert_eq!(t.row_count(), 9);
        let hits = t
            .find_by_index("parent", &SqlValue::Int(7))
            .unwrap()
            .unwrap();
        assert_eq!(hits.len(), 9);
    }

    #[test]
    fn checkpoint_writes_heap_and_indexes() {
        let mut t = TableData::new(meta(), Vfs::memory());
        for i in 0..100 {
            t.insert(row(i, "station", i % 5), 1).unwrap();
        }
        t.checkpoint().unwrap();
        let size = t.disk_size();
        assert!(size >= crate::page::PAGE_SIZE as u64, "heap page + indexes");
        assert!(t.vfs.exists("d/cell.pk.idx"));
        assert!(t.vfs.exists("d/cell.parent.idx"));
        // Checkpoint again: sizes stay stable (indexes rewritten, not
        // appended).
        t.checkpoint().unwrap();
        assert_eq!(t.disk_size(), size);
    }

    #[test]
    fn truncate_resets_files_and_indexes() {
        let mut t = TableData::new(meta(), Vfs::memory());
        t.insert(row(1, "x", 2), 1).unwrap();
        t.checkpoint().unwrap();
        t.truncate().unwrap();
        assert_eq!(t.row_count(), 0);
        assert_eq!(t.disk_size(), 0);
        assert!(t.scan().unwrap().is_empty());
        // Usable after truncate.
        t.insert(row(1, "y", 2), 2).unwrap();
        assert_eq!(t.row_count(), 1);
    }
}
