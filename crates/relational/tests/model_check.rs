//! Model checking the relational engine against an in-memory oracle,
//! across checkpoints and index lookups.

use proptest::prelude::*;
use sc_relational::{Db, SqlValue};
use std::collections::HashMap;

#[derive(Debug, Clone)]
enum Op {
    Insert { id: i64, tag: i64 },
    Update { id: i64, tag: i64 },
    Delete { id: i64 },
    Checkpoint,
}

fn arb_op() -> impl Strategy<Value = Op> {
    prop_oneof![
        5 => (0i64..40, 0i64..6).prop_map(|(id, tag)| Op::Insert { id, tag }),
        3 => (0i64..40, 0i64..6).prop_map(|(id, tag)| Op::Update { id, tag }),
        2 => (0i64..40).prop_map(|id| Op::Delete { id }),
        1 => Just(Op::Checkpoint),
    ]
}

fn fresh() -> Db {
    let mut db = Db::in_memory();
    db.execute_sql("CREATE DATABASE m").unwrap();
    db.execute_sql("CREATE TABLE m.t (id INT NOT NULL, tag INT, PRIMARY KEY (id), INDEX (tag))")
        .unwrap();
    db
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn engine_agrees_with_oracle(ops in proptest::collection::vec(arb_op(), 0..60)) {
        let mut db = fresh();
        let mut oracle: HashMap<i64, i64> = HashMap::new();
        for op in ops {
            match op {
                Op::Insert { id, tag } => {
                    let r = db.execute_sql(&format!(
                        "INSERT INTO m.t (id, tag) VALUES ({id}, {tag})"
                    ));
                    #[allow(clippy::map_entry)]
                    if oracle.contains_key(&id) {
                        prop_assert!(r.is_err(), "duplicate pk must be rejected");
                    } else {
                        prop_assert!(r.is_ok());
                        oracle.insert(id, tag);
                    }
                }
                Op::Update { id, tag } => {
                    db.execute_sql(&format!("UPDATE m.t SET tag = {tag} WHERE id = {id}"))
                        .unwrap();
                    if let Some(t) = oracle.get_mut(&id) {
                        *t = tag;
                    }
                }
                Op::Delete { id } => {
                    db.execute_sql(&format!("DELETE FROM m.t WHERE id = {id}"))
                        .unwrap();
                    oracle.remove(&id);
                }
                Op::Checkpoint => db.checkpoint_all().unwrap(),
            }
        }
        // Point lookups.
        for probe in [0i64, 13, 39] {
            let r = db
                .execute_sql(&format!("SELECT tag FROM m.t WHERE id = {probe}"))
                .unwrap();
            let got = r.rows.first().map(|row| row[0].clone());
            let want = oracle.get(&probe).map(|t| SqlValue::Int(*t));
            prop_assert_eq!(got, want);
        }
        // Index lookups per tag.
        for tag in 0..6i64 {
            let r = db
                .execute_sql(&format!("SELECT id FROM m.t WHERE tag = {tag}"))
                .unwrap();
            let mut got: Vec<i64> =
                r.rows.iter().map(|row| row[0].as_int().unwrap()).collect();
            got.sort_unstable();
            let mut want: Vec<i64> = oracle
                .iter()
                .filter(|(_, t)| **t == tag)
                .map(|(id, _)| *id)
                .collect();
            want.sort_unstable();
            prop_assert_eq!(got, want, "tag {}", tag);
        }
        // COUNT agrees.
        let r = db.execute_sql("SELECT COUNT(*) FROM m.t").unwrap();
        prop_assert_eq!(r.rows[0][0].as_int().unwrap() as usize, oracle.len());
    }

    #[test]
    fn join_agrees_with_nested_loop_oracle(
        nodes in proptest::collection::btree_set(0i64..15, 1..10),
        cells in proptest::collection::vec((0i64..40, 0i64..20), 0..40),
    ) {
        let mut db = Db::in_memory();
        db.execute_sql("CREATE DATABASE m").unwrap();
        db.execute_sql("CREATE TABLE m.n (id INT NOT NULL, PRIMARY KEY (id))").unwrap();
        db.execute_sql(
            "CREATE TABLE m.c (id INT NOT NULL, nid INT, PRIMARY KEY (id))"
        ).unwrap();
        for id in &nodes {
            db.execute_sql(&format!("INSERT INTO m.n (id) VALUES ({id})")).unwrap();
        }
        let mut inserted: HashMap<i64, i64> = HashMap::new();
        for (id, nid) in cells {
            if inserted.contains_key(&id) {
                continue;
            }
            db.execute_sql(&format!("INSERT INTO m.c (id, nid) VALUES ({id}, {nid})"))
                .unwrap();
            inserted.insert(id, nid);
        }
        let r = db
            .execute_sql("SELECT c.id, n.id FROM m.c JOIN m.n ON c.nid = n.id")
            .unwrap();
        let mut got: Vec<(i64, i64)> = r
            .rows
            .iter()
            .map(|row| (row[0].as_int().unwrap(), row[1].as_int().unwrap()))
            .collect();
        got.sort_unstable();
        let mut want: Vec<(i64, i64)> = inserted
            .iter()
            .filter(|(_, nid)| nodes.contains(nid))
            .map(|(id, nid)| (*id, *nid))
            .collect();
        want.sort_unstable();
        prop_assert_eq!(got, want);
    }
}
