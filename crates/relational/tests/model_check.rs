//! Model checking the relational engine against an in-memory oracle,
//! across checkpoints and index lookups.
//!
//! Deterministic randomized sweeps (seeded xorshift — the build is offline,
//! so no proptest): each case draws a random op sequence and replays it
//! against both the engine and a `HashMap` oracle.

use sc_encoding::Rng;
use sc_relational::{Db, SqlValue};
use std::collections::{BTreeSet, HashMap};

#[derive(Debug, Clone)]
enum Op {
    Insert { id: i64, tag: i64 },
    Update { id: i64, tag: i64 },
    Delete { id: i64 },
    Checkpoint,
}

/// Weighted random op: inserts 5, updates 3, deletes 2, checkpoint 1
/// (matching the old proptest weights).
fn random_op(rng: &mut Rng) -> Op {
    match rng.gen_range(11) {
        0..=4 => Op::Insert {
            id: rng.gen_range(40) as i64,
            tag: rng.gen_range(6) as i64,
        },
        5..=7 => Op::Update {
            id: rng.gen_range(40) as i64,
            tag: rng.gen_range(6) as i64,
        },
        8..=9 => Op::Delete {
            id: rng.gen_range(40) as i64,
        },
        _ => Op::Checkpoint,
    }
}

fn fresh() -> Db {
    let mut db = Db::in_memory();
    db.execute_sql("CREATE DATABASE m").unwrap();
    db.execute_sql("CREATE TABLE m.t (id INT NOT NULL, tag INT, PRIMARY KEY (id), INDEX (tag))")
        .unwrap();
    db
}

#[test]
fn engine_agrees_with_oracle() {
    let mut rng = Rng::new(0x5E1A);
    for case in 0..48 {
        let ops: Vec<Op> = (0..rng.gen_range(60))
            .map(|_| random_op(&mut rng))
            .collect();
        let mut db = fresh();
        let mut oracle: HashMap<i64, i64> = HashMap::new();
        for op in ops {
            match op {
                Op::Insert { id, tag } => {
                    let r =
                        db.execute_sql(&format!("INSERT INTO m.t (id, tag) VALUES ({id}, {tag})"));
                    #[allow(clippy::map_entry)]
                    if oracle.contains_key(&id) {
                        assert!(r.is_err(), "case {case}: duplicate pk must be rejected");
                    } else {
                        assert!(r.is_ok(), "case {case}");
                        oracle.insert(id, tag);
                    }
                }
                Op::Update { id, tag } => {
                    db.execute_sql(&format!("UPDATE m.t SET tag = {tag} WHERE id = {id}"))
                        .unwrap();
                    if let Some(t) = oracle.get_mut(&id) {
                        *t = tag;
                    }
                }
                Op::Delete { id } => {
                    db.execute_sql(&format!("DELETE FROM m.t WHERE id = {id}"))
                        .unwrap();
                    oracle.remove(&id);
                }
                Op::Checkpoint => db.checkpoint_all().unwrap(),
            }
        }
        // Point lookups.
        for probe in [0i64, 13, 39] {
            let r = db
                .execute_sql(&format!("SELECT tag FROM m.t WHERE id = {probe}"))
                .unwrap();
            let got = r.rows.first().map(|row| row[0].clone());
            let want = oracle.get(&probe).map(|t| SqlValue::Int(*t));
            assert_eq!(got, want, "case {case}");
        }
        // Index lookups per tag.
        for tag in 0..6i64 {
            let r = db
                .execute_sql(&format!("SELECT id FROM m.t WHERE tag = {tag}"))
                .unwrap();
            let mut got: Vec<i64> = r.rows.iter().map(|row| row[0].as_int().unwrap()).collect();
            got.sort_unstable();
            let mut want: Vec<i64> = oracle
                .iter()
                .filter(|(_, t)| **t == tag)
                .map(|(id, _)| *id)
                .collect();
            want.sort_unstable();
            assert_eq!(got, want, "case {case}: tag {tag}");
        }
        // COUNT agrees.
        let r = db.execute_sql("SELECT COUNT(*) FROM m.t").unwrap();
        assert_eq!(
            r.rows[0][0].as_int().unwrap() as usize,
            oracle.len(),
            "case {case}"
        );
    }
}

#[test]
fn join_agrees_with_nested_loop_oracle() {
    let mut rng = Rng::new(0x5E1B);
    for case in 0..48 {
        let mut nodes: BTreeSet<i64> = BTreeSet::new();
        for _ in 0..1 + rng.gen_range(9) {
            nodes.insert(rng.gen_range(15) as i64);
        }
        let cells: Vec<(i64, i64)> = (0..rng.gen_range(40))
            .map(|_| (rng.gen_range(40) as i64, rng.gen_range(20) as i64))
            .collect();
        let mut db = Db::in_memory();
        db.execute_sql("CREATE DATABASE m").unwrap();
        db.execute_sql("CREATE TABLE m.n (id INT NOT NULL, PRIMARY KEY (id))")
            .unwrap();
        db.execute_sql("CREATE TABLE m.c (id INT NOT NULL, nid INT, PRIMARY KEY (id))")
            .unwrap();
        for id in &nodes {
            db.execute_sql(&format!("INSERT INTO m.n (id) VALUES ({id})"))
                .unwrap();
        }
        let mut inserted: HashMap<i64, i64> = HashMap::new();
        for (id, nid) in cells {
            if inserted.contains_key(&id) {
                continue;
            }
            db.execute_sql(&format!("INSERT INTO m.c (id, nid) VALUES ({id}, {nid})"))
                .unwrap();
            inserted.insert(id, nid);
        }
        let r = db
            .execute_sql("SELECT c.id, n.id FROM m.c JOIN m.n ON c.nid = n.id")
            .unwrap();
        let mut got: Vec<(i64, i64)> = r
            .rows
            .iter()
            .map(|row| (row[0].as_int().unwrap(), row[1].as_int().unwrap()))
            .collect();
        got.sort_unstable();
        let mut want: Vec<(i64, i64)> = inserted
            .iter()
            .filter(|(_, nid)| nodes.contains(nid))
            .map(|(id, nid)| (*id, *nid))
            .collect();
        want.sort_unstable();
        assert_eq!(got, want, "case {case}");
    }
}
