//! UPDATE and COUNT(*) semantics in the relational engine.

use sc_relational::{Db, SqlError, SqlValue};

fn setup() -> Db {
    let mut db = Db::in_memory();
    db.execute_sql("CREATE DATABASE d").unwrap();
    db.execute_sql(
        "CREATE TABLE d.t (id INT NOT NULL, name TEXT, n INT, \
         PRIMARY KEY (id), INDEX (n))",
    )
    .unwrap();
    db
}

#[test]
fn update_modifies_only_assigned_columns() {
    let mut db = setup();
    db.execute_sql("INSERT INTO d.t (id, name, n) VALUES (1, 'keep', 10)")
        .unwrap();
    db.execute_sql("UPDATE d.t SET n = 20 WHERE id = 1")
        .unwrap();
    let r = db
        .execute_sql("SELECT name, n FROM d.t WHERE id = 1")
        .unwrap();
    assert_eq!(
        r.rows[0],
        vec![SqlValue::Text("keep".into()), SqlValue::Int(20)]
    );
}

#[test]
fn update_of_missing_row_is_a_noop() {
    let mut db = setup();
    db.execute_sql("UPDATE d.t SET n = 1 WHERE id = 42")
        .unwrap();
    assert_eq!(db.execute_sql("SELECT * FROM d.t").unwrap().rows.len(), 0);
}

#[test]
fn update_maintains_secondary_indexes() {
    let mut db = setup();
    db.execute_sql("INSERT INTO d.t (id, n) VALUES (1, 5)")
        .unwrap();
    db.execute_sql("UPDATE d.t SET n = 6 WHERE id = 1").unwrap();
    assert!(db
        .execute_sql("SELECT id FROM d.t WHERE n = 5")
        .unwrap()
        .rows
        .is_empty());
    assert_eq!(
        db.execute_sql("SELECT id FROM d.t WHERE n = 6")
            .unwrap()
            .rows
            .len(),
        1
    );
}

#[test]
fn update_rejections() {
    let mut db = setup();
    db.execute_sql("INSERT INTO d.t (id) VALUES (1)").unwrap();
    assert!(matches!(
        db.execute_sql("UPDATE d.t SET id = 2 WHERE id = 1"),
        Err(SqlError::Unsupported(_))
    ));
    assert!(matches!(
        db.execute_sql("UPDATE d.t SET n = 1 WHERE name = 'x'"),
        Err(SqlError::Unsupported(_))
    ));
    assert!(matches!(
        db.execute_sql("UPDATE d.t SET n = 'text' WHERE id = 1"),
        Err(SqlError::TypeMismatch { .. })
    ));
}

#[test]
fn count_star_variants() {
    let mut db = setup();
    for i in 0..9 {
        db.execute_sql(&format!("INSERT INTO d.t (id, n) VALUES ({i}, {})", i % 3))
            .unwrap();
    }
    let r = db.execute_sql("SELECT COUNT(*) FROM d.t").unwrap();
    assert_eq!(r.columns, vec!["COUNT(*)"]);
    assert_eq!(r.rows, vec![vec![SqlValue::Int(9)]]);
    let r = db
        .execute_sql("SELECT COUNT(*) FROM d.t WHERE n = 1")
        .unwrap();
    assert_eq!(r.rows, vec![vec![SqlValue::Int(3)]]);
}

#[test]
fn count_star_over_join() {
    let mut db = setup();
    db.execute_sql("CREATE TABLE d.s (id INT NOT NULL, t_id INT, PRIMARY KEY (id))")
        .unwrap();
    db.execute_sql("INSERT INTO d.t (id) VALUES (1), (2)")
        .unwrap();
    db.execute_sql("INSERT INTO d.s (id, t_id) VALUES (10, 1), (11, 1), (12, 2)")
        .unwrap();
    let r = db
        .execute_sql("SELECT COUNT(*) FROM d.s JOIN d.t ON s.t_id = t.id WHERE t.id = 1")
        .unwrap();
    assert_eq!(r.rows, vec![vec![SqlValue::Int(2)]]);
}

#[test]
fn update_roundtrips_through_sql_text() {
    let stmt = sc_relational::parse_sql("UPDATE d.t SET name = 'x', n = 3 WHERE id = 1").unwrap();
    assert_eq!(sc_relational::parse_sql(&stmt.to_sql()).unwrap(), stmt);
    let stmt = sc_relational::parse_sql("SELECT COUNT(*) FROM d.t").unwrap();
    assert_eq!(sc_relational::parse_sql(&stmt.to_sql()).unwrap(), stmt);
}
