//! End-to-end checks of the sharded streaming runtime against the
//! sequential pipeline: equivalence, backpressure, drain-on-shutdown.

use sc_datagen::{BikesGenerator, BikesSpec};
use sc_ingest::StreamPipeline;
use sc_stream::{StreamConfig, StreamIngestor};

/// The deterministic seeded bike feed used throughout: 480 observations in
/// 24 snapshot documents over the paper's 8-dimension schema.
fn snapshots() -> Vec<String> {
    BikesGenerator::new(BikesSpec::small())
        .map(|s| s.xml)
        .collect()
}

#[test]
fn sharded_ingestion_equals_sequential_pipeline() {
    let docs = snapshots();
    // Sequential reference: one pipeline, one thread.
    let mut sequential = StreamPipeline::new(BikesGenerator::cube_def());
    for doc in &docs {
        sequential.ingest(doc).unwrap();
    }
    let reference = sequential.build_cube();
    // Sharded: 4 workers, tiny watermark so many micro-cubes get merged.
    let config = StreamConfig {
        shards: 4,
        seal_tuple_watermark: 64,
        ..StreamConfig::default()
    };
    let ingestor = StreamIngestor::new(BikesGenerator::cube_def(), config);
    for doc in &docs {
        ingestor.ingest(doc.clone());
    }
    let result = ingestor.finish();
    // The merged cube must hold exactly the same facts...
    assert_eq!(result.cube.extract_tuples(), reference.extract_tuples());
    result.cube.validate();
    // ...and the counters must account for every document and tuple.
    assert_eq!(result.metrics.events_in, docs.len() as u64);
    assert_eq!(result.metrics.events_parsed, docs.len() as u64);
    assert_eq!(result.metrics.events_failed, 0);
    assert_eq!(result.metrics.tuples_extracted, 480);
    assert!(
        result.metrics.seals >= 4,
        "watermark 64 over 480 tuples must seal repeatedly"
    );
    assert_eq!(result.metrics.merges, result.metrics.seals);
}

#[test]
fn sharding_is_insensitive_to_shard_count() {
    let docs = snapshots();
    let mut cubes = Vec::new();
    for shards in [1, 2, 7] {
        let ingestor = StreamIngestor::new(
            BikesGenerator::cube_def(),
            StreamConfig::with_shards(shards),
        );
        for doc in &docs {
            ingestor.ingest(doc.clone());
        }
        cubes.push(ingestor.finish().cube.extract_tuples());
    }
    assert_eq!(cubes[0], cubes[1]);
    assert_eq!(cubes[1], cubes[2]);
}

#[test]
fn backpressure_blocks_without_deadlock() {
    let docs = snapshots();
    // One shard with a single-slot queue: the producer outruns XML parsing
    // almost immediately, so sends must block (and be counted) while the
    // whole run still completes and loses nothing.
    let config = StreamConfig {
        shards: 1,
        channel_capacity: 1,
        ..StreamConfig::default()
    };
    let ingestor = StreamIngestor::new(BikesGenerator::cube_def(), config);
    for doc in &docs {
        ingestor.ingest(doc.clone());
    }
    let result = ingestor.finish();
    assert_eq!(result.metrics.events_parsed, docs.len() as u64);
    assert_eq!(result.metrics.tuples_extracted, 480);
    assert!(
        result.metrics.backpressure_stalls > 0,
        "a 1-slot queue fed {} documents must stall at least once",
        docs.len()
    );
}

#[test]
fn shutdown_mid_stream_drains_queued_events() {
    let docs = snapshots();
    // Fill the queues faster than one worker drains them, then finish()
    // immediately: every queued payload must still reach the cube.
    let config = StreamConfig {
        shards: 2,
        channel_capacity: 64,
        ..StreamConfig::default()
    };
    let ingestor = StreamIngestor::new(BikesGenerator::cube_def(), config);
    for doc in &docs {
        ingestor.ingest(doc.clone());
    }
    // No barrier here: finish() races against workers mid-parse.
    let result = ingestor.finish();
    assert_eq!(result.metrics.events_in, docs.len() as u64);
    assert_eq!(result.metrics.events_parsed, docs.len() as u64);
    assert_eq!(result.metrics.tuples_extracted, 480);
    // Exactly the facts of a sequential run — nothing dropped in the drain.
    let mut sequential = StreamPipeline::new(BikesGenerator::cube_def());
    for doc in &docs {
        sequential.ingest(doc).unwrap();
    }
    assert_eq!(
        result.cube.extract_tuples(),
        sequential.build_cube().extract_tuples()
    );
}
