//! Tuning knobs for the streaming runtime.

/// Configuration of a [`StreamIngestor`](crate::StreamIngestor).
#[derive(Debug, Clone)]
pub struct StreamConfig {
    /// Number of worker shards (parallel parse/extract pipelines).
    pub shards: usize,
    /// Queued payloads each shard buffers before senders block.
    pub channel_capacity: usize,
    /// Seal a shard's micro-cube once it holds this many tuples.
    pub seal_tuple_watermark: usize,
    /// Seal a shard's micro-cube once its tuple set holds roughly this many
    /// bytes (see `TupleSet::approximate_bytes`).
    pub seal_byte_watermark: usize,
}

impl Default for StreamConfig {
    fn default() -> Self {
        StreamConfig {
            shards: 4,
            channel_capacity: 256,
            seal_tuple_watermark: 16_384,
            seal_byte_watermark: 4 << 20,
        }
    }
}

impl StreamConfig {
    /// Default configuration with `shards` workers.
    pub fn with_shards(shards: usize) -> Self {
        StreamConfig {
            shards,
            ..StreamConfig::default()
        }
    }

    /// Panics unless the configuration is usable.
    pub(crate) fn validate(&self) {
        assert!(self.shards > 0, "need at least one shard");
        assert!(
            self.channel_capacity > 0,
            "channel capacity must be at least 1"
        );
        assert!(
            self.seal_tuple_watermark > 0,
            "tuple watermark must be at least 1"
        );
        assert!(
            self.seal_byte_watermark > 0,
            "byte watermark must be at least 1"
        );
    }
}
