//! Runtime counters for the streaming pipeline.
//!
//! Workers, the merger and the ingest front-end all share one [`Metrics`]
//! registry through an `Arc`; every counter is a relaxed `AtomicU64`
//! (counters are independent — no ordering is implied between them, and a
//! snapshot is only ever taken after the threads it observes have quiesced
//! or for advisory progress reporting).

use std::sync::atomic::{AtomicU64, Ordering};

/// Shared atomic counters, incremented live by pipeline threads.
#[derive(Debug, Default)]
pub struct Metrics {
    /// Raw payloads accepted by [`StreamIngestor::ingest`](crate::StreamIngestor::ingest).
    pub events_in: AtomicU64,
    /// Payloads successfully parsed and extracted by a worker.
    pub events_parsed: AtomicU64,
    /// Payloads rejected (malformed document or failed extraction).
    pub events_failed: AtomicU64,
    /// Fact tuples extracted across all shards.
    pub tuples_extracted: AtomicU64,
    /// Micro-cubes sealed by watermark or final drain.
    pub seals: AtomicU64,
    /// Sealed micro-cubes absorbed by the merger.
    pub merges: AtomicU64,
    /// Merged cubes flushed to a storage backend.
    pub flushes: AtomicU64,
    /// Sends that blocked on a full shard queue.
    pub backpressure_stalls: AtomicU64,
}

impl Metrics {
    /// Creates a zeroed registry.
    pub fn new() -> Self {
        Self::default()
    }

    /// Adds `n` to a counter (counters are public so downstream flush
    /// stages — e.g. `sc-core`'s streaming warehouse — can record too).
    pub fn add(counter: &AtomicU64, n: u64) {
        counter.fetch_add(n, Ordering::Relaxed);
    }

    /// Copies every counter into a plain-value snapshot.
    pub fn snapshot(&self) -> MetricsSnapshot {
        MetricsSnapshot {
            events_in: self.events_in.load(Ordering::Relaxed),
            events_parsed: self.events_parsed.load(Ordering::Relaxed),
            events_failed: self.events_failed.load(Ordering::Relaxed),
            tuples_extracted: self.tuples_extracted.load(Ordering::Relaxed),
            seals: self.seals.load(Ordering::Relaxed),
            merges: self.merges.load(Ordering::Relaxed),
            flushes: self.flushes.load(Ordering::Relaxed),
            backpressure_stalls: self.backpressure_stalls.load(Ordering::Relaxed),
        }
    }
}

/// A point-in-time copy of [`Metrics`], safe to compare and print.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct MetricsSnapshot {
    /// Raw payloads accepted for ingestion.
    pub events_in: u64,
    /// Payloads successfully parsed and extracted.
    pub events_parsed: u64,
    /// Payloads rejected as malformed.
    pub events_failed: u64,
    /// Fact tuples extracted across all shards.
    pub tuples_extracted: u64,
    /// Micro-cubes sealed.
    pub seals: u64,
    /// Micro-cubes merged into the global cube.
    pub merges: u64,
    /// Merged cubes flushed to storage.
    pub flushes: u64,
    /// Sends that blocked on a full shard queue.
    pub backpressure_stalls: u64,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn snapshot_reflects_counters() {
        let m = Metrics::new();
        Metrics::add(&m.events_in, 3);
        Metrics::add(&m.tuples_extracted, 40);
        Metrics::add(&m.backpressure_stalls, 1);
        let snap = m.snapshot();
        assert_eq!(snap.events_in, 3);
        assert_eq!(snap.tuples_extracted, 40);
        assert_eq!(snap.backpressure_stalls, 1);
        assert_eq!(snap.events_failed, 0);
        assert_eq!(snap, m.snapshot());
    }
}
