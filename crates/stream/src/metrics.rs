//! Runtime counters for the streaming pipeline, backed by `sc-obs`.
//!
//! Workers, the merger and the ingest front-end all share one [`Metrics`]
//! view through an `Arc`. Each `Metrics` is a *child* of the global
//! [`sc_obs::Registry`]: the handles below keep per-pipeline local cells
//! (so concurrent pipelines — and tests — see only their own traffic)
//! while every increment also feeds the process-wide `stream.*` totals
//! that `repro obs` / `--stats` report.
//!
//! Counters are independent relaxed atomics — no ordering is implied
//! between them, and a snapshot is only ever taken after the threads it
//! observes have quiesced or for advisory progress reporting.

use sc_obs::{Counter, Registry};

/// Shared counters, incremented live by pipeline threads.
#[derive(Debug)]
pub struct Metrics {
    /// Raw payloads accepted by [`StreamIngestor::ingest`](crate::StreamIngestor::ingest).
    pub events_in: Counter,
    /// Payloads successfully parsed and extracted by a worker.
    pub events_parsed: Counter,
    /// Payloads rejected (malformed document or failed extraction).
    pub events_failed: Counter,
    /// Fact tuples extracted across all shards.
    pub tuples_extracted: Counter,
    /// Micro-cubes sealed by watermark or final drain.
    pub seals: Counter,
    /// Sealed micro-cubes absorbed by the merger.
    pub merges: Counter,
    /// Merged cubes flushed to a storage backend.
    pub flushes: Counter,
    /// Sends that blocked on a full shard queue.
    pub backpressure_stalls: Counter,
}

impl Default for Metrics {
    fn default() -> Self {
        Self::new()
    }
}

impl Metrics {
    /// Creates a zeroed per-pipeline view chained to the global registry.
    pub fn new() -> Self {
        let r = Registry::global().child();
        Metrics {
            events_in: r.counter("stream.ingest.events_in"),
            events_parsed: r.counter("stream.worker.events_parsed"),
            events_failed: r.counter("stream.worker.events_failed"),
            tuples_extracted: r.counter("stream.worker.tuples_extracted"),
            seals: r.counter("stream.worker.seals"),
            merges: r.counter("stream.merger.merges"),
            flushes: r.counter("stream.warehouse.flushes"),
            backpressure_stalls: r.counter("stream.ingest.backpressure_stalls"),
        }
    }

    /// Adds `n` to a counter (counters are public so downstream flush
    /// stages — e.g. `sc-core`'s streaming warehouse — can record too).
    pub fn add(counter: &Counter, n: u64) {
        counter.add(n);
    }

    /// Copies every counter's per-pipeline value into a plain snapshot.
    pub fn snapshot(&self) -> MetricsSnapshot {
        MetricsSnapshot {
            events_in: self.events_in.get(),
            events_parsed: self.events_parsed.get(),
            events_failed: self.events_failed.get(),
            tuples_extracted: self.tuples_extracted.get(),
            seals: self.seals.get(),
            merges: self.merges.get(),
            flushes: self.flushes.get(),
            backpressure_stalls: self.backpressure_stalls.get(),
        }
    }
}

/// A point-in-time copy of [`Metrics`], safe to compare and print.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct MetricsSnapshot {
    /// Raw payloads accepted for ingestion.
    pub events_in: u64,
    /// Payloads successfully parsed and extracted.
    pub events_parsed: u64,
    /// Payloads rejected as malformed.
    pub events_failed: u64,
    /// Fact tuples extracted across all shards.
    pub tuples_extracted: u64,
    /// Micro-cubes sealed.
    pub seals: u64,
    /// Micro-cubes merged into the global cube.
    pub merges: u64,
    /// Merged cubes flushed to storage.
    pub flushes: u64,
    /// Sends that blocked on a full shard queue.
    pub backpressure_stalls: u64,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn snapshot_reflects_counters() {
        let m = Metrics::new();
        Metrics::add(&m.events_in, 3);
        Metrics::add(&m.tuples_extracted, 40);
        Metrics::add(&m.backpressure_stalls, 1);
        let snap = m.snapshot();
        assert_eq!(snap.events_in, 3);
        assert_eq!(snap.tuples_extracted, 40);
        assert_eq!(snap.backpressure_stalls, 1);
        assert_eq!(snap.events_failed, 0);
        assert_eq!(snap, m.snapshot());
    }

    #[test]
    fn pipelines_do_not_see_each_other() {
        let a = Metrics::new();
        let b = Metrics::new();
        Metrics::add(&a.events_in, 5);
        assert_eq!(a.snapshot().events_in, 5);
        assert_eq!(b.snapshot().events_in, 0);
    }

    #[test]
    fn global_registry_accumulates_across_pipelines() {
        let before = sc_obs::Registry::global()
            .snapshot()
            .counter("stream.worker.seals")
            .unwrap_or(0);
        let a = Metrics::new();
        let b = Metrics::new();
        Metrics::add(&a.seals, 2);
        Metrics::add(&b.seals, 3);
        let after = sc_obs::Registry::global()
            .snapshot()
            .counter("stream.worker.seals")
            .unwrap_or(0);
        // Other tests may run concurrently and seal too, so >= not ==.
        assert!(after >= before + 5, "global total {after} < {before} + 5");
    }
}
