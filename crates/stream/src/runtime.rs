//! The sharded streaming runtime: worker pool, micro-cubes, merger.
//!
//! ```text
//!                    ingest(payload)
//!                          │  fnv1a(partition key) % shards
//!          ┌───────────────┼───────────────┐
//!          ▼               ▼               ▼
//!    [shard queue 0] [shard queue 1] [shard queue N-1]   bounded, blocking
//!          │               │               │
//!     worker thread   worker thread   worker thread      parse + extract
//!          │ seal on watermark         │
//!          └───────────────┼───────────────┘
//!                          ▼
//!                    [merge queue]                       sealed micro-cubes
//!                          │
//!                    merger thread                       MergeAccumulator
//!                          │ finish()
//!                          ▼
//!                     global Dwarf
//! ```
//!
//! Each worker owns a private `TupleSet` and seals it into a DWARF
//! micro-cube whenever it crosses the configured tuple- or byte-watermark;
//! sealed cubes flow to a dedicated merger thread that folds them into one
//! [`MergeAccumulator`]. Because every cube aggregate (Sum/Count/Min/Max) is
//! commutative and associative, the merged result is identical to feeding
//! all documents through one sequential [`StreamPipeline`]
//! (sc-stream's equivalence test asserts exactly that), no matter how
//! payloads were sharded or interleaved.

use crate::channel::{bounded, Receiver, Sender};
use crate::config::StreamConfig;
use crate::metrics::{Metrics, MetricsSnapshot};
use sc_dwarf::{Dwarf, MergeAccumulator, TupleSet};
use sc_encoding::fnv1a_64;
use sc_ingest::extract::extract_text;
use sc_ingest::{CubeDef, MissingPolicy};
use std::sync::Arc;
use std::thread::JoinHandle;

/// Everything the runtime hands back after a graceful drain.
#[derive(Debug)]
pub struct StreamResult {
    /// The merged global cube over every ingested document.
    pub cube: Dwarf,
    /// Final counter values.
    pub metrics: MetricsSnapshot,
}

/// A running sharded ingestion pipeline.
///
/// Create with [`StreamIngestor::new`], feed payloads with
/// [`ingest`](Self::ingest) (or [`ingest_keyed`](Self::ingest_keyed) to
/// control placement), then call [`finish`](Self::finish) to drain every
/// queue, seal the remainders and obtain the merged cube.
pub struct StreamIngestor {
    shards: Vec<Sender<String>>,
    workers: Vec<JoinHandle<()>>,
    merger: JoinHandle<Dwarf>,
    metrics: Arc<Metrics>,
}

impl StreamIngestor {
    /// Spawns the worker pool and merger for `def`.
    pub fn new(def: CubeDef, config: StreamConfig) -> StreamIngestor {
        config.validate();
        let metrics = Arc::new(Metrics::new());
        // The merge queue is sized to the shard count: at any moment each
        // worker contributes at most one in-flight sealed cube plus one
        // being built, so this never becomes the bottleneck.
        let (merge_tx, merge_rx) = bounded::<Dwarf>(config.shards.max(2));
        let merger = {
            let metrics = Arc::clone(&metrics);
            let schema = def.schema();
            std::thread::Builder::new()
                .name("sc-stream-merger".into())
                .spawn(move || run_merger(schema, merge_rx, &metrics))
                .expect("spawn merger thread")
        };
        let mut shards = Vec::with_capacity(config.shards);
        let mut workers = Vec::with_capacity(config.shards);
        for shard in 0..config.shards {
            let (tx, rx) = bounded::<String>(config.channel_capacity);
            let def = def.clone();
            let config = config.clone();
            let metrics = Arc::clone(&metrics);
            let merge_tx = merge_tx.clone();
            let worker = std::thread::Builder::new()
                .name(format!("sc-stream-worker-{shard}"))
                .spawn(move || run_worker(&def, &config, rx, merge_tx, &metrics))
                .expect("spawn worker thread");
            shards.push(tx);
            workers.push(worker);
        }
        // Workers hold the only remaining merge senders; once they exit the
        // merger sees end-of-stream.
        drop(merge_tx);
        StreamIngestor {
            shards,
            workers,
            merger,
            metrics,
        }
    }

    /// Queues one raw payload, sharding by a hash of the payload itself.
    pub fn ingest(&self, payload: String) {
        let shard = (fnv1a_64(payload.as_bytes()) as usize) % self.shards.len();
        self.dispatch(shard, payload);
    }

    /// Queues one raw payload, sharding by `partition_key` — payloads with
    /// equal keys land on the same worker (useful to keep one sensor's
    /// documents ordered within a shard).
    pub fn ingest_keyed(&self, partition_key: &str, payload: String) {
        let shard = (fnv1a_64(partition_key.as_bytes()) as usize) % self.shards.len();
        self.dispatch(shard, payload);
    }

    fn dispatch(&self, shard: usize, payload: String) {
        Metrics::add(&self.metrics.events_in, 1);
        match self.shards[shard].send(payload) {
            Ok(status) => {
                if status.stalled {
                    Metrics::add(&self.metrics.backpressure_stalls, 1);
                }
            }
            // A dead worker means a panic in parse/extract code; surface it
            // at the ingest site rather than deadlocking the producer.
            Err(_) => panic!("stream worker for shard {shard} terminated"),
        }
    }

    /// Live counters (shared with every pipeline thread).
    pub fn metrics(&self) -> &Arc<Metrics> {
        &self.metrics
    }

    /// Drains every queue, seals what remains, joins all threads and
    /// returns the merged cube plus final metrics.
    pub fn finish(self) -> StreamResult {
        let StreamIngestor {
            shards,
            workers,
            merger,
            metrics,
        } = self;
        // Dropping the senders signals end-of-stream; each worker drains
        // its queue, seals any partial micro-cube and exits.
        drop(shards);
        for worker in workers {
            if let Err(panic) = worker.join() {
                std::panic::resume_unwind(panic);
            }
        }
        let cube = match merger.join() {
            Ok(cube) => cube,
            Err(panic) => std::panic::resume_unwind(panic),
        };
        StreamResult {
            cube,
            metrics: metrics.snapshot(),
        }
    }
}

/// Worker loop: parse, extract, accumulate, seal on watermark.
fn run_worker(
    def: &CubeDef,
    config: &StreamConfig,
    rx: Receiver<String>,
    merge_tx: Sender<Dwarf>,
    metrics: &Metrics,
) {
    let schema = def.schema();
    let mut tuples = TupleSet::new(&schema);
    while let Some(payload) = rx.recv() {
        match extract_text(def, &payload, &mut tuples, MissingPolicy::Skip) {
            Ok(stats) => {
                Metrics::add(&metrics.events_parsed, 1);
                Metrics::add(&metrics.tuples_extracted, stats.extracted as u64);
            }
            Err(_) => {
                Metrics::add(&metrics.events_failed, 1);
            }
        }
        if tuples.len() >= config.seal_tuple_watermark
            || tuples.approximate_bytes() >= config.seal_byte_watermark
        {
            let sealed = std::mem::replace(&mut tuples, TupleSet::new(&schema));
            seal(def, sealed, &merge_tx, metrics);
        }
    }
    // End of stream: seal the partial remainder so nothing is lost.
    if !tuples.is_empty() {
        seal(def, tuples, &merge_tx, metrics);
    }
}

fn seal(def: &CubeDef, tuples: TupleSet, merge_tx: &Sender<Dwarf>, metrics: &Metrics) {
    let micro = Dwarf::build(def.schema(), tuples);
    Metrics::add(&metrics.seals, 1);
    if merge_tx.send(micro).is_err() {
        // The merger died (panicked); the worker's own exit will surface it
        // when the runtime joins the merger thread.
    }
}

/// Merger loop: fold sealed micro-cubes, build the global cube once.
fn run_merger(schema: sc_dwarf::CubeSchema, rx: Receiver<Dwarf>, metrics: &Metrics) -> Dwarf {
    let mut acc = MergeAccumulator::new(schema);
    while let Some(micro) = rx.recv() {
        acc.absorb(&micro);
        Metrics::add(&metrics.merges, 1);
    }
    acc.finish()
}

#[cfg(test)]
mod tests {
    use super::*;
    use sc_ingest::cube_def::TimeField;

    fn def() -> CubeDef {
        CubeDef::xml("/stations/station")
            .timestamp("@updated")
            .time_dimension("day", TimeField::Day)
            .dimension("station", "name/text()")
            .measure("bikes", "bikes/text()")
            .build()
            .unwrap()
    }

    fn feed(day: u8, station: &str, bikes: i64) -> String {
        format!(
            r#"<stations updated="2015-11-{day:02}T10:00:00">
              <station><name>{station}</name><bikes>{bikes}</bikes></station>
            </stations>"#
        )
    }

    #[test]
    fn empty_stream_produces_empty_cube() {
        let ingestor = StreamIngestor::new(def(), StreamConfig::with_shards(2));
        let result = ingestor.finish();
        assert_eq!(result.cube.tuple_count(), 0);
        assert_eq!(result.metrics, MetricsSnapshot::default());
    }

    #[test]
    fn malformed_payloads_are_counted_not_fatal() {
        let ingestor = StreamIngestor::new(def(), StreamConfig::with_shards(2));
        ingestor.ingest(feed(1, "A", 5));
        ingestor.ingest("<not-even".to_string());
        ingestor.ingest(feed(2, "B", 7));
        let result = ingestor.finish();
        assert_eq!(result.metrics.events_in, 3);
        assert_eq!(result.metrics.events_parsed, 2);
        assert_eq!(result.metrics.events_failed, 1);
        assert_eq!(result.cube.tuple_count(), 2);
    }

    #[test]
    fn keyed_ingest_routes_consistently() {
        // Same key → same shard; with one shard per key's hash the counts
        // must still add up globally.
        let ingestor = StreamIngestor::new(def(), StreamConfig::with_shards(3));
        for day in 1..=9 {
            ingestor.ingest_keyed("sensor-A", feed(day, "A", i64::from(day)));
        }
        let result = ingestor.finish();
        assert_eq!(result.metrics.events_parsed, 9);
        assert_eq!(result.cube.tuple_count(), 9);
    }

    #[test]
    fn tuple_watermark_seals_micro_cubes() {
        let config = StreamConfig {
            shards: 1,
            seal_tuple_watermark: 2,
            ..StreamConfig::default()
        };
        let ingestor = StreamIngestor::new(def(), config);
        for day in 1..=5 {
            ingestor.ingest(feed(day, "A", 1));
        }
        let result = ingestor.finish();
        // 5 tuples at watermark 2 → seals after docs 2 and 4, plus the
        // final drain seal of the remaining 1.
        assert_eq!(result.metrics.seals, 3);
        assert_eq!(result.metrics.merges, 3);
        assert_eq!(result.cube.tuple_count(), 5);
    }
}
