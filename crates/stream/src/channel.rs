//! A bounded MPSC channel with blocking backpressure, from scratch.
//!
//! `std::sync::mpsc` channels are either unbounded (`channel`) or rendezvous
//! at a fixed bound chosen per-`SyncSender` clone (`sync_channel`), and they
//! report nothing about *whether* a send had to wait. The streaming runtime
//! needs exactly that signal — a producer blocking on a full queue is the
//! backpressure event its metrics count — so this module implements the
//! queue directly on `Mutex` + `Condvar`.
//!
//! Shutdown semantics:
//!
//! * When every [`Sender`] is dropped, [`Receiver::recv`] drains what is
//!   queued and then returns `None` — the natural end-of-stream signal.
//! * When the [`Receiver`] is dropped (a worker died), blocked senders wake
//!   immediately and [`Sender::send`] returns the rejected value in
//!   [`SendError`] instead of deadlocking.
//! * Lock poisoning (a thread panicking while holding the mutex) is treated
//!   as ordinary disconnection: the queue state is a plain `VecDeque` whose
//!   invariants hold at every await point, so the poisoned payload is safe
//!   to reuse.

use std::collections::VecDeque;
use std::sync::{Arc, Condvar, Mutex, MutexGuard};

/// The receiver disappeared; the value could not be delivered.
#[derive(Debug, PartialEq, Eq)]
pub struct SendError<T>(pub T);

/// Whether a send had to wait for space.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SendStatus {
    /// True if the queue was full and the sender blocked at least once.
    pub stalled: bool,
}

struct State<T> {
    queue: VecDeque<T>,
    senders: usize,
    receiver_alive: bool,
}

struct Shared<T> {
    state: Mutex<State<T>>,
    capacity: usize,
    not_full: Condvar,
    not_empty: Condvar,
}

impl<T> Shared<T> {
    /// Locks the state, recovering from poisoning (see module docs).
    fn lock(&self) -> MutexGuard<'_, State<T>> {
        self.state
            .lock()
            .unwrap_or_else(|poisoned| poisoned.into_inner())
    }
}

/// Producer half; clonable across threads.
pub struct Sender<T> {
    shared: Arc<Shared<T>>,
}

/// Consumer half; exactly one per channel.
pub struct Receiver<T> {
    shared: Arc<Shared<T>>,
}

/// Creates a channel holding at most `capacity` queued values.
///
/// Panics if `capacity` is zero — a zero-capacity rendezvous queue can
/// never report "not stalled", which would make the backpressure metric
/// meaningless.
pub fn bounded<T>(capacity: usize) -> (Sender<T>, Receiver<T>) {
    assert!(capacity > 0, "channel capacity must be at least 1");
    let shared = Arc::new(Shared {
        state: Mutex::new(State {
            queue: VecDeque::with_capacity(capacity),
            senders: 1,
            receiver_alive: true,
        }),
        capacity,
        not_full: Condvar::new(),
        not_empty: Condvar::new(),
    });
    (
        Sender {
            shared: Arc::clone(&shared),
        },
        Receiver { shared },
    )
}

impl<T> Sender<T> {
    /// Delivers `value`, blocking while the queue is full.
    ///
    /// Returns how long the call had to wait (as a boolean stall flag), or
    /// the rejected value if the receiver is gone.
    pub fn send(&self, value: T) -> Result<SendStatus, SendError<T>> {
        let mut state = self.shared.lock();
        let mut stalled = false;
        loop {
            if !state.receiver_alive {
                return Err(SendError(value));
            }
            if state.queue.len() < self.shared.capacity {
                state.queue.push_back(value);
                drop(state);
                self.shared.not_empty.notify_one();
                return Ok(SendStatus { stalled });
            }
            stalled = true;
            state = self
                .shared
                .not_full
                .wait(state)
                .unwrap_or_else(|poisoned| poisoned.into_inner());
        }
    }
}

impl<T> Clone for Sender<T> {
    fn clone(&self) -> Self {
        self.shared.lock().senders += 1;
        Sender {
            shared: Arc::clone(&self.shared),
        }
    }
}

impl<T> Drop for Sender<T> {
    fn drop(&mut self) {
        let mut state = self.shared.lock();
        state.senders -= 1;
        let last = state.senders == 0;
        drop(state);
        if last {
            // The receiver may be blocked waiting for data that will never
            // arrive; wake it so it can observe end-of-stream.
            self.shared.not_empty.notify_all();
        }
    }
}

impl<T> Receiver<T> {
    /// Takes the next value, blocking while the queue is empty.
    ///
    /// Returns `None` once every sender is gone and the queue is drained.
    pub fn recv(&self) -> Option<T> {
        let mut state = self.shared.lock();
        loop {
            if let Some(value) = state.queue.pop_front() {
                drop(state);
                // Space freed: wake one blocked producer.
                self.shared.not_full.notify_one();
                return Some(value);
            }
            if state.senders == 0 {
                return None;
            }
            state = self
                .shared
                .not_empty
                .wait(state)
                .unwrap_or_else(|poisoned| poisoned.into_inner());
        }
    }
}

impl<T> Drop for Receiver<T> {
    fn drop(&mut self) {
        let mut state = self.shared.lock();
        state.receiver_alive = false;
        // Anything still queued is lost; release the memory eagerly and
        // wake every blocked producer so it can fail fast.
        state.queue.clear();
        drop(state);
        self.shared.not_full.notify_all();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::thread;

    #[test]
    fn values_arrive_in_order() {
        let (tx, rx) = bounded(4);
        let producer = thread::spawn(move || {
            for i in 0..100 {
                tx.send(i).unwrap();
            }
        });
        let got: Vec<i32> = std::iter::from_fn(|| rx.recv()).collect();
        producer.join().unwrap();
        assert_eq!(got, (0..100).collect::<Vec<_>>());
    }

    #[test]
    fn full_queue_stalls_and_reports_it() {
        let (tx, rx) = bounded(1);
        tx.send(1).unwrap();
        // The queue is now full; the next send must block until the
        // receiver makes room, and must say so.
        let handle = thread::spawn(move || tx.send(2).unwrap());
        // Give the producer a moment to actually block.
        thread::sleep(std::time::Duration::from_millis(20));
        assert_eq!(rx.recv(), Some(1));
        let status = handle.join().unwrap();
        assert!(status.stalled);
        assert_eq!(rx.recv(), Some(2));
    }

    #[test]
    fn sender_drop_ends_the_stream() {
        let (tx, rx) = bounded::<u8>(2);
        let tx2 = tx.clone();
        tx.send(7).unwrap();
        drop(tx);
        // A clone still holds the channel open.
        let blocked = thread::spawn(move || rx.recv());
        drop(tx2);
        assert_eq!(blocked.join().unwrap(), Some(7));
    }

    #[test]
    fn recv_none_after_drain() {
        let (tx, rx) = bounded(2);
        tx.send(1).unwrap();
        tx.send(2).unwrap();
        drop(tx);
        assert_eq!(rx.recv(), Some(1));
        assert_eq!(rx.recv(), Some(2));
        assert_eq!(rx.recv(), None);
    }

    #[test]
    fn receiver_drop_unblocks_senders() {
        let (tx, rx) = bounded(1);
        tx.send(1).unwrap();
        let blocked = thread::spawn(move || tx.send(2));
        thread::sleep(std::time::Duration::from_millis(20));
        drop(rx);
        assert_eq!(blocked.join().unwrap(), Err(SendError(2)));
    }

    #[test]
    fn send_after_receiver_drop_fails_immediately() {
        let (tx, rx) = bounded(4);
        drop(rx);
        assert_eq!(tx.send(9), Err(SendError(9)));
    }

    #[test]
    #[should_panic(expected = "capacity must be at least 1")]
    fn zero_capacity_is_rejected() {
        let _ = bounded::<u8>(0);
    }
}
