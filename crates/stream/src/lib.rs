//! # sc-stream
//!
//! Sharded parallel streaming ingestion for smart-city cube construction.
//!
//! The sequential path (`sc_ingest::StreamPipeline`) parses every feed
//! document on one thread. This crate scales that out while keeping results
//! bit-identical:
//!
//! 1. raw XML/JSON payloads are hash-sharded by partition key across a
//!    fixed pool of worker threads (a from-scratch bounded MPSC channel —
//!    [`channel`] — provides blocking backpressure per shard),
//! 2. each worker parses and extracts into a private tuple set, sealing it
//!    into a DWARF **micro-cube** whenever a tuple- or byte-watermark is
//!    crossed,
//! 3. a dedicated merger thread folds sealed micro-cubes into one
//!    `MergeAccumulator` and builds the global cube once at the end,
//! 4. the caller flushes the merged cube into a storage backend (see
//!    `sc_core::stream_warehouse` for the NoSQL column-family path).
//!
//! Everything is `std`-only: threads are `std::thread`, the channel is
//! `Mutex` + `Condvar`, counters are `AtomicU64` ([`metrics`]).
//!
//! ```
//! use sc_stream::{StreamConfig, StreamIngestor};
//! # use sc_ingest::cube_def::TimeField;
//! # use sc_ingest::CubeDef;
//! # let def = CubeDef::xml("/stations/station")
//! #     .timestamp("@updated")
//! #     .time_dimension("day", TimeField::Day)
//! #     .dimension("station", "name/text()")
//! #     .measure("bikes", "bikes/text()")
//! #     .build()
//! #     .unwrap();
//! let ingestor = StreamIngestor::new(def, StreamConfig::with_shards(4));
//! ingestor.ingest(r#"<stations updated="2015-11-01T10:00:00">
//!     <station><name>A</name><bikes>3</bikes></station>
//! </stations>"#.to_string());
//! let result = ingestor.finish();
//! assert_eq!(result.cube.tuple_count(), 1);
//! assert_eq!(result.metrics.events_parsed, 1);
//! ```

pub mod channel;
pub mod config;
pub mod metrics;
pub mod runtime;

pub use channel::{bounded, Receiver, SendError, SendStatus, Sender};
pub use config::StreamConfig;
pub use metrics::{Metrics, MetricsSnapshot};
pub use runtime::{StreamIngestor, StreamResult};
