//! # sc-obs
//!
//! Workspace-wide observability: a zero-dependency metric registry plus a
//! lightweight structured-tracing facility. Every crate in the data path
//! (`sc-storage`, `sc-nosql`, `sc-dwarf`, `sc-stream`) records into one
//! process-global [`Registry`]; `repro obs` / `repro ... --stats` render it.
//!
//! ## Model
//!
//! * **Counters** — monotonic `u64`s (`nosql.commitlog.append_bytes`).
//! * **Gauges** — signed instantaneous values (`nosql.memtable.bytes`).
//! * **Histograms** — log-bucketed (powers of two) latency/size
//!   distributions with count/sum/min/max and quantile estimates.
//! * **Spans** — RAII guards ([`SpanHandle::start`], or the [`span!`]
//!   macro) that time a region, feed a `<name>.duration_ns` histogram (plus
//!   `<name>.bytes` when bytes are attached) and push a [`SpanEvent`] into
//!   a bounded ring buffer that tests and the CLI can [`drain_events`].
//!
//! * **Traces** — per-request span *trees* with engine attribution
//!   counters, tail-sampled into a bounded store (see [`trace`]). Off by
//!   default; servers opt in with [`set_trace_enabled`].
//!
//! Metric names follow the convention **`crate.component.metric`**
//! (e.g. `storage.vfs.append_bytes`, `dwarf.build.nodes`).
//!
//! ## Hot-path cost
//!
//! Recording is lock-free: every metric cell is a relaxed `AtomicU64`.
//! A process-wide toggle ([`set_enabled`]) turns all recording off; the
//! disabled path of [`Counter::add`], [`Histogram::record`] and
//! [`SpanHandle::start`] is a **single relaxed atomic load** and never
//! allocates (proven by `tests/no_alloc.rs`). The registry lock is touched
//! only at handle registration time — instrumented code caches handles in
//! `OnceLock` statics or struct fields, never looks them up per operation.
//!
//! ## Scoped views
//!
//! [`Registry::child`] creates a registry whose metrics *chain* to their
//! same-named parents: one `add` increments both the local cell and the
//! global one. `sc_stream::Metrics` uses this to keep per-pipeline
//! snapshots (windows are independent) while the global registry still
//! accumulates process totals.
//!
//! ```
//! use sc_obs::Registry;
//!
//! let registry = Registry::new();
//! let puts = registry.counter("demo.engine.puts");
//! let latency = registry.histogram("demo.engine.put_ns");
//! puts.inc();
//! latency.record(850);
//! let snap = registry.snapshot();
//! assert_eq!(snap.counter("demo.engine.puts"), Some(1));
//! assert!(snap.to_json().contains("demo.engine.puts"));
//! ```

pub mod export;
pub mod histogram;
pub mod registry;
pub mod span;
pub mod trace;

pub use histogram::{Histogram, HistogramSnapshot};
pub use registry::{Counter, Gauge, Registry, RegistrySnapshot};
pub use span::{
    drain_events, events_dropped, set_event_capacity, SpanEvent, SpanGuard, SpanHandle,
};
pub use trace::{set_trace_enabled, trace_enabled, TailSampler, Trace, TraceGuard, TraceSpan};

use std::sync::atomic::{AtomicBool, Ordering};

/// Process-wide recording switch. `true` at startup.
static ENABLED: AtomicBool = AtomicBool::new(true);

/// Whether recording is enabled (one relaxed load — this is the entire
/// disabled fast path of every recording primitive).
#[inline(always)]
pub fn enabled() -> bool {
    ENABLED.load(Ordering::Relaxed)
}

/// Turns all metric recording and span tracing on or off at runtime.
///
/// Already-recorded values are kept; use [`Registry::reset`] to zero them.
pub fn set_enabled(on: bool) {
    ENABLED.store(on, Ordering::Relaxed);
}

// The global on/off toggle is tested in `tests/no_alloc.rs`, which runs in
// its own process: unit tests here share one binary and assume recording
// stays enabled, so flipping the process-wide switch mid-run would race.
