//! Per-request trace trees with tail sampling.
//!
//! A **trace** is the span tree of one request: the server calls
//! [`begin`] with a 64-bit trace ID when a statement arrives, code on the
//! request path opens named [`stage`]s (and every [`SpanHandle`]
//! (crate::SpanHandle) entered while the trace is active joins the tree
//! automatically), engine hot paths attach cheap attribution counters via
//! [`add`] ([`Attr`]: WAL commit-wait, memtable vs SSTable hits, blocks
//! read, bloom probes, block-cache hits/misses, VFS bytes), and
//! [`TraceGuard::finish`] yields the completed [`Trace`] which is offered
//! to the global [`TailSampler`].
//!
//! ## Cost discipline
//!
//! The same kill-switch discipline as the metric registry, one level
//! stricter: tracing is **off by default** ([`set_trace_enabled`]), and
//! every per-event primitive ([`stage`], [`add`], the span-tree hook
//! inside `SpanHandle::start`) first reads a thread-local flag that is
//! only set while a trace is active *on that thread*. With no active
//! trace the cost is one thread-local load and **zero allocations**
//! (proven alongside the registry's fast path in `tests/no_alloc.rs`).
//! Allocation happens only on traced requests, which the sampler bounds.
//!
//! ## Sampling policy
//!
//! Retaining every trace would turn a diagnostic into a second workload,
//! so completed traces are *tail-sampled*: per statement kind the sampler
//! keeps the slowest-K plus one in every N offered (the first of each
//! kind is always kept), each in a bounded ring. The request path never
//! blocks on the sampler — `offer` uses `try_lock` and discards the trace
//! if a scraper holds the lock (counted in [`TailSampler::contended_drops`]).

use std::cell::{Cell, RefCell};
use std::collections::{BTreeMap, VecDeque};
use std::marker::PhantomData;
use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};
use std::sync::{Arc, Mutex, OnceLock};
use std::time::{Duration, Instant};

/// Process-wide tracing switch, layered *under* [`crate::enabled`]:
/// [`begin`] starts a trace only when both are on.
static TRACING: AtomicU64 = AtomicU64::new(0);

/// Whether request tracing is enabled (tracing is off by default; servers
/// opt in).
#[inline(always)]
pub fn trace_enabled() -> bool {
    TRACING.load(Ordering::Relaxed) != 0
}

/// Turns request tracing on or off at runtime. Off is the default: with
/// tracing off, [`begin`] returns an inert guard and no request-path
/// primitive allocates.
pub fn set_trace_enabled(on: bool) {
    TRACING.store(u64::from(on), Ordering::Relaxed);
}

/// Per-request attribution counters, snapshotted into the innermost open
/// span so a trace shows *which stage* paid for what.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
#[repr(usize)]
pub enum Attr {
    /// Nanoseconds spent queued in the group-commit WAL (leader linger +
    /// follower wait).
    CommitWaitNs,
    /// Point reads answered definitively by the memtable (no disk).
    MemtableHits,
    /// SSTables probed by point reads.
    SstableProbes,
    /// Data blocks read (cache miss → VFS, cache hit → copy).
    BlocksRead,
    /// Bloom filters consulted.
    BloomProbes,
    /// Blocks served from the shared block cache.
    BlockCacheHits,
    /// Blocks that missed the shared block cache.
    BlockCacheMisses,
    /// Bytes read from the VFS leaf (disk or memory backend).
    VfsReadBytes,
    /// Bytes appended to the VFS leaf.
    VfsWriteBytes,
    /// Rows pulled from a child operator by a query-pipeline operator
    /// (charged to the consuming operator's span).
    OpRowsIn,
    /// Rows emitted by a query-pipeline operator (charged to the
    /// operator's own span).
    OpRowsOut,
}

impl Attr {
    /// Number of attribution counters (length of a span's `attrs` array).
    pub const COUNT: usize = 11;

    /// All attributes, index order.
    pub const ALL: [Attr; Attr::COUNT] = [
        Attr::CommitWaitNs,
        Attr::MemtableHits,
        Attr::SstableProbes,
        Attr::BlocksRead,
        Attr::BloomProbes,
        Attr::BlockCacheHits,
        Attr::BlockCacheMisses,
        Attr::VfsReadBytes,
        Attr::VfsWriteBytes,
        Attr::OpRowsIn,
        Attr::OpRowsOut,
    ];

    /// Stable snake_case name used in every export format.
    pub fn name(self) -> &'static str {
        match self {
            Attr::CommitWaitNs => "commit_wait_ns",
            Attr::MemtableHits => "memtable_hits",
            Attr::SstableProbes => "sstable_probes",
            Attr::BlocksRead => "blocks_read",
            Attr::BloomProbes => "bloom_probes",
            Attr::BlockCacheHits => "block_cache_hits",
            Attr::BlockCacheMisses => "block_cache_misses",
            Attr::VfsReadBytes => "vfs_read_bytes",
            Attr::VfsWriteBytes => "vfs_write_bytes",
            Attr::OpRowsIn => "op_rows_in",
            Attr::OpRowsOut => "op_rows_out",
        }
    }
}

/// One node of a trace's span tree.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TraceSpan {
    /// Stage or span name (e.g. `server.execute`, `nosql.flush`).
    pub name: &'static str,
    /// Index of the parent span in [`Trace::spans`]; `None` for a
    /// top-level stage.
    pub parent: Option<u32>,
    /// Start offset from the trace's begin, in nanoseconds.
    pub start_ns: u64,
    /// Elapsed wall time, in nanoseconds.
    pub duration_ns: u64,
    /// Attribution counters charged while this span was innermost-open.
    pub attrs: [u64; Attr::COUNT],
}

/// A completed request trace: identity, timing, span tree, attribution.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Trace {
    /// 64-bit trace ID (client-supplied or server-minted; never 0).
    pub trace_id: u64,
    /// Statement kind the sampler buckets by (`select`, `insert`, ...).
    pub kind: &'static str,
    /// Tenant that issued the request (filled in by the server; empty
    /// when untenanted).
    pub tenant: String,
    /// Free-form detail, e.g. the truncated statement text.
    pub detail: String,
    /// Total wall time from [`begin`] to [`TraceGuard::finish`], ns.
    pub total_ns: u64,
    /// Counters charged while no stage was open.
    pub root_attrs: [u64; Attr::COUNT],
    /// The span tree, in open order (parents precede children).
    pub spans: Vec<TraceSpan>,
}

impl Trace {
    /// The trace ID as the 16-hex-digit form used in URLs and logs.
    pub fn id_hex(&self) -> String {
        format!("{:016x}", self.trace_id)
    }

    /// Total of `attr` across the root and every span.
    pub fn attr_total(&self, attr: Attr) -> u64 {
        let i = attr as usize;
        self.root_attrs[i] + self.spans.iter().map(|s| s.attrs[i]).sum::<u64>()
    }

    /// The trace as a self-contained JSON object (span tree inline,
    /// per-span attrs elided when zero).
    pub fn to_json(&self) -> String {
        let mut out = String::with_capacity(256 + self.spans.len() * 96);
        out.push_str("{\"trace_id\": \"");
        out.push_str(&self.id_hex());
        out.push_str("\", \"kind\": \"");
        json_escape(self.kind, &mut out);
        out.push_str("\", \"tenant\": \"");
        json_escape(&self.tenant, &mut out);
        out.push_str("\", \"detail\": \"");
        json_escape(&self.detail, &mut out);
        out.push_str(&format!(
            "\", \"total_ns\": {}, \"attrs\": {{",
            self.total_ns
        ));
        for (i, attr) in Attr::ALL.iter().enumerate() {
            if i > 0 {
                out.push_str(", ");
            }
            out.push_str(&format!("\"{}\": {}", attr.name(), self.attr_total(*attr)));
        }
        out.push_str("}, \"spans\": [");
        for (i, span) in self.spans.iter().enumerate() {
            if i > 0 {
                out.push_str(", ");
            }
            out.push_str(&format!(
                "{{\"name\": \"{}\", \"parent\": {}, \"start_ns\": {}, \"duration_ns\": {}",
                span.name,
                match span.parent {
                    Some(p) => p.to_string(),
                    None => "null".to_string(),
                },
                span.start_ns,
                span.duration_ns
            ));
            let nonzero: Vec<(Attr, u64)> = Attr::ALL
                .iter()
                .map(|&a| (a, span.attrs[a as usize]))
                .filter(|&(_, v)| v > 0)
                .collect();
            if !nonzero.is_empty() {
                out.push_str(", \"attrs\": {");
                for (j, (a, v)) in nonzero.iter().enumerate() {
                    if j > 0 {
                        out.push_str(", ");
                    }
                    out.push_str(&format!("\"{}\": {v}", a.name()));
                }
                out.push('}');
            }
            out.push('}');
        }
        out.push_str("]}");
        out
    }

    /// The trace in Chrome trace-event format (JSON array of `ph: "X"`
    /// complete events, microsecond timestamps) — loadable as-is in
    /// `chrome://tracing` or [Perfetto](https://ui.perfetto.dev), which
    /// nest the events into a flame graph by time.
    pub fn to_chrome_trace(&self) -> String {
        let us = |ns: u64| format!("{:.3}", ns as f64 / 1000.0);
        let mut out = String::from("[\n");
        // Root event: the whole request.
        out.push_str(&format!(
            "  {{\"name\": \"{}\", \"cat\": \"request\", \"ph\": \"X\", \"ts\": 0.000, \
             \"dur\": {}, \"pid\": 1, \"tid\": 1, \"args\": {{\"trace_id\": \"{}\", \
             \"tenant\": \"",
            self.kind,
            us(self.total_ns),
            self.id_hex()
        ));
        json_escape(&self.tenant, &mut out);
        out.push_str("\", \"detail\": \"");
        json_escape(&self.detail, &mut out);
        out.push_str("\"}}");
        for span in &self.spans {
            out.push_str(",\n");
            out.push_str(&format!(
                "  {{\"name\": \"{}\", \"cat\": \"span\", \"ph\": \"X\", \"ts\": {}, \
                 \"dur\": {}, \"pid\": 1, \"tid\": 1",
                span.name,
                us(span.start_ns),
                us(span.duration_ns)
            ));
            let nonzero: Vec<(Attr, u64)> = Attr::ALL
                .iter()
                .map(|&a| (a, span.attrs[a as usize]))
                .filter(|&(_, v)| v > 0)
                .collect();
            if !nonzero.is_empty() {
                out.push_str(", \"args\": {");
                for (j, (a, v)) in nonzero.iter().enumerate() {
                    if j > 0 {
                        out.push_str(", ");
                    }
                    out.push_str(&format!("\"{}\": {v}", a.name()));
                }
                out.push('}');
            }
            out.push('}');
        }
        out.push_str("\n]\n");
        out
    }
}

fn json_escape(s: &str, out: &mut String) {
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
}

/// Parses the 16-hex-digit form produced by [`Trace::id_hex`] (leading
/// zeros optional).
pub fn parse_trace_id(hex: &str) -> Option<u64> {
    if hex.is_empty() || hex.len() > 16 {
        return None;
    }
    u64::from_str_radix(hex, 16).ok()
}

// ---------------------------------------------------------------------------
// Thread-local trace context
// ---------------------------------------------------------------------------

#[derive(Debug)]
struct TraceBuilder {
    trace_id: u64,
    kind: &'static str,
    started: Instant,
    spans: Vec<TraceSpan>,
    open: Vec<u32>,
    root_attrs: [u64; Attr::COUNT],
}

thread_local! {
    /// Fast flag: is a trace active on this thread? Every request-path
    /// primitive reads only this when idle.
    static ACTIVE: Cell<bool> = const { Cell::new(false) };
    static BUILDER: RefCell<Option<TraceBuilder>> = const { RefCell::new(None) };
}

/// Mints a fresh, never-zero 64-bit trace ID (a splitmix64 walk seeded
/// once from the wall clock and address-space layout — unique enough for
/// correlation, with no RNG dependency).
pub fn next_trace_id() -> u64 {
    static STATE: OnceLock<AtomicU64> = OnceLock::new();
    let state = STATE.get_or_init(|| {
        let t = std::time::SystemTime::now()
            .duration_since(std::time::UNIX_EPOCH)
            .map(|d| d.as_nanos() as u64)
            .unwrap_or(0xDEADBEEF);
        let aslr = &STATE as *const _ as u64;
        AtomicU64::new(t ^ aslr.rotate_left(32))
    });
    loop {
        let x = state.fetch_add(0x9E37_79B9_7F4A_7C15, Ordering::Relaxed);
        let mut z = x.wrapping_add(0x9E37_79B9_7F4A_7C15);
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^= z >> 31;
        if z != 0 {
            return z;
        }
    }
}

/// Begins a trace on the calling thread and returns its guard. Inert (no
/// thread-local state touched beyond one flag read) when tracing or
/// observability is disabled, or when a trace is already active on this
/// thread (traces do not nest).
pub fn begin(trace_id: u64, kind: &'static str) -> TraceGuard {
    if !trace_enabled() || !crate::enabled() || ACTIVE.with(Cell::get) {
        return TraceGuard {
            active: false,
            _not_send: PhantomData,
        };
    }
    BUILDER.with(|b| {
        *b.borrow_mut() = Some(TraceBuilder {
            trace_id,
            kind,
            started: Instant::now(),
            spans: Vec::with_capacity(8),
            open: Vec::with_capacity(4),
            root_attrs: [0; Attr::COUNT],
        });
    });
    ACTIVE.with(|a| a.set(true));
    TraceGuard {
        active: true,
        _not_send: PhantomData,
    }
}

/// The trace ID active on the calling thread, if any.
pub fn current_trace_id() -> Option<u64> {
    if !ACTIVE.with(Cell::get) {
        return None;
    }
    BUILDER.with(|b| b.borrow().as_ref().map(|t| t.trace_id))
}

/// RAII handle for an in-progress trace. Dropping without
/// [`TraceGuard::finish`] discards the trace.
#[derive(Debug)]
pub struct TraceGuard {
    active: bool,
    _not_send: PhantomData<*const ()>,
}

impl TraceGuard {
    /// Whether this guard owns an active trace (false when tracing was
    /// disabled at [`begin`]).
    pub fn is_active(&self) -> bool {
        self.active
    }

    /// Re-labels the trace's statement kind ([`begin`] often runs before
    /// the statement is parsed).
    pub fn set_kind(&mut self, kind: &'static str) {
        if !self.active {
            return;
        }
        BUILDER.with(|b| {
            if let Some(t) = b.borrow_mut().as_mut() {
                t.kind = kind;
            }
        });
    }

    /// Ends the trace and returns it (closing any span left open). `None`
    /// for an inert guard.
    pub fn finish(mut self) -> Option<Trace> {
        if !self.active {
            return None;
        }
        self.active = false;
        ACTIVE.with(|a| a.set(false));
        let builder = BUILDER.with(|b| b.borrow_mut().take())?;
        let total_ns = elapsed_ns(builder.started);
        let mut spans = builder.spans;
        // Close anything still open (a panic unwound through a stage, or
        // a caller finished early): charge it the full remaining time.
        for idx in builder.open {
            let span = &mut spans[idx as usize];
            span.duration_ns = total_ns.saturating_sub(span.start_ns);
        }
        Some(Trace {
            trace_id: builder.trace_id,
            kind: builder.kind,
            tenant: String::new(),
            detail: String::new(),
            total_ns,
            root_attrs: builder.root_attrs,
            spans,
        })
    }
}

impl Drop for TraceGuard {
    fn drop(&mut self) {
        if self.active {
            ACTIVE.with(|a| a.set(false));
            BUILDER.with(|b| *b.borrow_mut() = None);
        }
    }
}

fn elapsed_ns(since: Instant) -> u64 {
    u64::try_from(since.elapsed().as_nanos()).unwrap_or(u64::MAX)
}

/// Opens a named stage in the active trace's span tree. Inert — one
/// thread-local flag read, no allocation — when no trace is active on
/// this thread.
#[inline]
pub fn stage(name: &'static str) -> Stage {
    Stage {
        idx: open_span(name),
        _not_send: PhantomData,
    }
}

/// RAII guard for a [`stage`]; closes the tree node on drop.
#[derive(Debug)]
pub struct Stage {
    idx: Option<u32>,
    _not_send: PhantomData<*const ()>,
}

impl Drop for Stage {
    fn drop(&mut self) {
        close_span(self.idx);
    }
}

/// Opens a span node; used by [`stage`] and by `SpanHandle::start` so
/// every metric span entered during a trace joins the tree. Returns the
/// node index to pass to [`close_span`].
#[inline]
pub(crate) fn open_span(name: &'static str) -> Option<u32> {
    if !ACTIVE.with(Cell::get) {
        return None;
    }
    BUILDER.with(|b| {
        let mut b = b.borrow_mut();
        let t = b.as_mut()?;
        let idx = u32::try_from(t.spans.len()).ok()?;
        t.spans.push(TraceSpan {
            name,
            parent: t.open.last().copied(),
            start_ns: elapsed_ns(t.started),
            duration_ns: 0,
            attrs: [0; Attr::COUNT],
        });
        t.open.push(idx);
        Some(idx)
    })
}

/// Closes the span node opened by [`open_span`].
#[inline]
pub(crate) fn close_span(idx: Option<u32>) {
    let Some(idx) = idx else {
        return;
    };
    BUILDER.with(|b| {
        let mut b = b.borrow_mut();
        let Some(t) = b.as_mut() else {
            return;
        };
        if let Some(span) = t.spans.get_mut(idx as usize) {
            span.duration_ns = elapsed_ns(t.started).saturating_sub(span.start_ns);
        }
        // Guards drop LIFO in correct code; tolerate out-of-order closes.
        if t.open.last() == Some(&idx) {
            t.open.pop();
        } else {
            t.open.retain(|&i| i != idx);
        }
    });
}

/// Charges `n` to attribution counter `attr` of the innermost open stage
/// (or the trace root when none is open). Inert — one thread-local flag
/// read — when no trace is active on this thread.
#[inline]
pub fn add(attr: Attr, n: u64) {
    if !ACTIVE.with(Cell::get) {
        return;
    }
    BUILDER.with(|b| {
        let mut b = b.borrow_mut();
        let Some(t) = b.as_mut() else {
            return;
        };
        let cell = match t.open.last() {
            Some(&idx) => &mut t.spans[idx as usize].attrs[attr as usize],
            None => &mut t.root_attrs[attr as usize],
        };
        *cell = cell.saturating_add(n);
    });
}

/// Records an already-elapsed region as a completed child of the
/// innermost open stage — for waits measured by the code that waited
/// (e.g. the group-commit queue). The node's window is `[now - d, now]`
/// and `attr` (typically [`Attr::CommitWaitNs`]) is charged to it.
#[inline]
pub fn record_wait(name: &'static str, d: Duration, attr: Attr) {
    if !ACTIVE.with(Cell::get) {
        return;
    }
    let ns = u64::try_from(d.as_nanos()).unwrap_or(u64::MAX);
    BUILDER.with(|b| {
        let mut b = b.borrow_mut();
        let Some(t) = b.as_mut() else {
            return;
        };
        if u32::try_from(t.spans.len()).is_err() {
            return;
        }
        let mut attrs = [0; Attr::COUNT];
        attrs[attr as usize] = ns;
        let now = elapsed_ns(t.started);
        t.spans.push(TraceSpan {
            name,
            parent: t.open.last().copied(),
            start_ns: now.saturating_sub(ns),
            duration_ns: ns,
            attrs,
        });
    });
}

// ---------------------------------------------------------------------------
// Tail sampler
// ---------------------------------------------------------------------------

#[derive(Debug, Default)]
struct KindBucket {
    seen: u64,
    /// Slowest-K, sorted by `total_ns` descending.
    slowest: Vec<Arc<Trace>>,
    /// 1-in-N systematic sample, bounded ring (drop-oldest).
    sampled: VecDeque<Arc<Trace>>,
}

/// Retains a bounded, per-statement-kind selection of completed traces:
/// the slowest K plus one of every N offered. See the module docs for the
/// non-blocking offer discipline.
#[derive(Debug)]
pub struct TailSampler {
    slowest_k: AtomicUsize,
    sample_one_in: AtomicU64,
    sample_cap: AtomicUsize,
    offered: AtomicU64,
    contended: AtomicU64,
    inner: Mutex<BTreeMap<&'static str, KindBucket>>,
}

impl Default for TailSampler {
    fn default() -> TailSampler {
        TailSampler::new()
    }
}

impl TailSampler {
    /// A fresh sampler with the default policy: slowest 8 + 1-in-64
    /// (ring of 32) per statement kind.
    pub fn new() -> TailSampler {
        TailSampler {
            slowest_k: AtomicUsize::new(8),
            sample_one_in: AtomicU64::new(64),
            sample_cap: AtomicUsize::new(32),
            offered: AtomicU64::new(0),
            contended: AtomicU64::new(0),
            inner: Mutex::new(BTreeMap::new()),
        }
    }

    /// The process-global sampler (what servers offer into and
    /// `/debug/traces` reads from).
    pub fn global() -> &'static TailSampler {
        static GLOBAL: OnceLock<TailSampler> = OnceLock::new();
        GLOBAL.get_or_init(TailSampler::new)
    }

    /// Sets the retention policy: keep the slowest `k` and 1 in
    /// `one_in` offered traces (ring of `cap`) per statement kind.
    /// `one_in = 1` retains every offer (up to `cap`); `one_in = 0`
    /// disables the random sample; `k = 0` disables slowest-K.
    pub fn set_policy(&self, k: usize, one_in: u64, cap: usize) {
        self.slowest_k.store(k, Ordering::Relaxed);
        self.sample_one_in.store(one_in, Ordering::Relaxed);
        self.sample_cap.store(cap, Ordering::Relaxed);
    }

    /// Offers a completed trace. Returns whether it was retained. Never
    /// blocks: under lock contention the trace is dropped and counted.
    pub fn offer(&self, trace: Trace) -> bool {
        self.offered.fetch_add(1, Ordering::Relaxed);
        let Ok(mut map) = self.inner.try_lock() else {
            self.contended.fetch_add(1, Ordering::Relaxed);
            return false;
        };
        let bucket = map.entry(trace.kind).or_default();
        bucket.seen += 1;
        let trace = Arc::new(trace);
        let mut retained = false;

        let k = self.slowest_k.load(Ordering::Relaxed);
        if k > 0 {
            if bucket.slowest.len() < k {
                bucket.slowest.push(Arc::clone(&trace));
                retained = true;
            } else if bucket
                .slowest
                .last()
                .is_some_and(|slowest_min| trace.total_ns > slowest_min.total_ns)
            {
                bucket.slowest.pop();
                bucket.slowest.push(Arc::clone(&trace));
                retained = true;
            }
            if retained {
                bucket.slowest.sort_by(|a, b| b.total_ns.cmp(&a.total_ns));
                bucket.slowest.truncate(k);
            }
        }

        let one_in = self.sample_one_in.load(Ordering::Relaxed);
        // `seen % one_in == 1` keeps the *first* trace of every kind, so
        // a single traced request is always inspectable.
        if one_in > 0 && bucket.seen % one_in == 1 % one_in {
            let cap = self.sample_cap.load(Ordering::Relaxed).max(1);
            if bucket.sampled.len() >= cap {
                bucket.sampled.pop_front();
            }
            bucket.sampled.push_back(Arc::clone(&trace));
            retained = true;
        }
        retained
    }

    /// Every retained trace, de-duplicated, slowest first.
    pub fn traces(&self) -> Vec<Arc<Trace>> {
        let map = self.inner.lock().unwrap_or_else(|e| e.into_inner());
        let mut seen_ids = std::collections::BTreeSet::new();
        let mut out: Vec<Arc<Trace>> = Vec::new();
        for bucket in map.values() {
            for t in bucket.slowest.iter().chain(bucket.sampled.iter()) {
                if seen_ids.insert(t.trace_id) {
                    out.push(Arc::clone(t));
                }
            }
        }
        out.sort_by(|a, b| b.total_ns.cmp(&a.total_ns));
        out
    }

    /// Looks up a retained trace by ID.
    pub fn find(&self, trace_id: u64) -> Option<Arc<Trace>> {
        let map = self.inner.lock().unwrap_or_else(|e| e.into_inner());
        for bucket in map.values() {
            for t in bucket.slowest.iter().chain(bucket.sampled.iter()) {
                if t.trace_id == trace_id {
                    return Some(Arc::clone(t));
                }
            }
        }
        None
    }

    /// Discards every retained trace (policy and counters are kept).
    pub fn clear(&self) {
        self.inner.lock().unwrap_or_else(|e| e.into_inner()).clear();
    }

    /// Traces ever offered.
    pub fn offered(&self) -> u64 {
        self.offered.load(Ordering::Relaxed)
    }

    /// Traces dropped because `offer` found the sampler lock held.
    pub fn contended_drops(&self) -> u64 {
        self.contended.load(Ordering::Relaxed)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn enable() {
        crate::set_enabled(true);
        set_trace_enabled(true);
    }

    #[test]
    fn trace_builds_a_span_tree_with_attribution() {
        enable();
        let guard = begin(0x1234, "t.trace.select");
        assert!(guard.is_active());
        assert_eq!(current_trace_id(), Some(0x1234));
        add(Attr::VfsReadBytes, 5); // no stage open → root
        {
            let _parse = stage("parse");
            std::hint::black_box(());
        }
        {
            let _exec = stage("execute");
            add(Attr::BlocksRead, 3);
            {
                let _probe = stage("probe");
                add(Attr::BlocksRead, 4);
                add(Attr::BloomProbes, 2);
            }
            record_wait("commit_wait", Duration::from_nanos(500), Attr::CommitWaitNs);
        }
        let trace = guard.finish().expect("active trace finishes");
        assert_eq!(current_trace_id(), None);
        assert_eq!(trace.trace_id, 0x1234);
        assert_eq!(trace.kind, "t.trace.select");
        assert!(trace.total_ns > 0);
        assert_eq!(trace.root_attrs[Attr::VfsReadBytes as usize], 5);

        let names: Vec<&str> = trace.spans.iter().map(|s| s.name).collect();
        assert_eq!(names, vec!["parse", "execute", "probe", "commit_wait"]);
        let parse = &trace.spans[0];
        let exec = &trace.spans[1];
        let probe = &trace.spans[2];
        let wait = &trace.spans[3];
        assert_eq!(parse.parent, None);
        assert_eq!(exec.parent, None);
        assert_eq!(probe.parent, Some(1));
        assert_eq!(wait.parent, Some(1));
        // Attribution goes to the innermost open stage.
        assert_eq!(exec.attrs[Attr::BlocksRead as usize], 3);
        assert_eq!(probe.attrs[Attr::BlocksRead as usize], 4);
        assert_eq!(probe.attrs[Attr::BloomProbes as usize], 2);
        assert_eq!(wait.attrs[Attr::CommitWaitNs as usize], 500);
        assert_eq!(wait.duration_ns, 500);
        assert_eq!(trace.attr_total(Attr::BlocksRead), 7);
        // Children are time-nested within their parent.
        assert!(probe.start_ns >= exec.start_ns);
        assert!(probe.start_ns + probe.duration_ns <= exec.start_ns + exec.duration_ns + 1);
    }

    #[test]
    fn metric_spans_join_the_active_trace_tree() {
        enable();
        let registry = crate::Registry::new();
        let flush = registry.span("t.trace.flush");
        let guard = begin(next_trace_id(), "t.trace.spanjoin");
        {
            let _exec = stage("execute");
            let _flush = flush.start();
        }
        let trace = guard.finish().unwrap();
        let names: Vec<&str> = trace.spans.iter().map(|s| s.name).collect();
        assert_eq!(names, vec!["execute", "t.trace.flush"]);
        assert_eq!(trace.spans[1].parent, Some(0));
        // And the histogram recorded as before.
        assert_eq!(
            registry
                .snapshot()
                .histogram("t.trace.flush.duration_ns")
                .unwrap()
                .count,
            1
        );
    }

    #[test]
    fn inert_when_disabled_and_traces_do_not_nest() {
        enable();
        set_trace_enabled(false);
        let guard = begin(1, "t.trace.off");
        assert!(!guard.is_active());
        assert_eq!(current_trace_id(), None);
        add(Attr::BlocksRead, 1); // must not panic or record
        drop(stage("noop"));
        assert!(guard.finish().is_none());

        set_trace_enabled(true);
        let outer = begin(2, "t.trace.outer");
        let inner = begin(3, "t.trace.inner");
        assert!(outer.is_active());
        assert!(!inner.is_active(), "traces must not nest");
        drop(inner);
        // Dropping the inert inner guard must not kill the outer trace.
        assert_eq!(current_trace_id(), Some(2));
        let t = outer.finish().unwrap();
        assert_eq!(t.trace_id, 2);
    }

    #[test]
    fn dropping_a_guard_discards_the_trace() {
        enable();
        drop(begin(7, "t.trace.dropped"));
        assert_eq!(current_trace_id(), None);
        // A new trace can start afterwards.
        let g = begin(8, "t.trace.next");
        assert!(g.is_active());
        drop(g);
    }

    #[test]
    fn unclosed_stage_is_charged_to_trace_end() {
        enable();
        let guard = begin(9, "t.trace.leak");
        let leaked = stage("leaked");
        std::thread::sleep(Duration::from_millis(1));
        let trace = guard.finish().unwrap();
        drop(leaked); // late drop after finish: must be inert, not panic
        assert_eq!(trace.spans.len(), 1);
        assert!(trace.spans[0].duration_ns > 0, "open span charged to end");
    }

    #[test]
    fn sampler_keeps_slowest_k_and_one_in_n() {
        let s = TailSampler::new();
        s.set_policy(2, 10, 4);
        let mk = |id: u64, ns: u64| Trace {
            trace_id: id,
            kind: "t.sampler.q",
            tenant: String::new(),
            detail: String::new(),
            total_ns: ns,
            root_attrs: [0; Attr::COUNT],
            spans: Vec::new(),
        };
        // First offer is always retained (1-in-N keeps the first).
        assert!(s.offer(mk(1, 100)));
        for i in 2..=30u64 {
            s.offer(mk(i, i * 10));
        }
        let traces = s.traces();
        // Slowest two: ids 30 (300ns) and 29 (290ns).
        assert_eq!(traces[0].trace_id, 30);
        assert_eq!(traces[1].trace_id, 29);
        // 1-in-10 sample kept offers 1, 11, 21 (ring cap 4).
        assert!(s.find(11).is_some());
        assert!(s.find(21).is_some());
        assert!(s.find(2).is_none(), "unsampled, not slow → dropped");
        assert_eq!(s.offered(), 30);
        // A different kind gets its own buckets.
        let other = Trace {
            kind: "t.sampler.other",
            ..mk(99, 1)
        };
        assert!(s.offer(other), "first of a new kind is retained");
        s.clear();
        assert!(s.traces().is_empty());
    }

    #[test]
    fn exports_are_well_formed() {
        enable();
        let guard = begin(0xABCD, "select");
        {
            let _s = stage("server.execute");
            add(Attr::BlocksRead, 2);
        }
        let mut trace = guard.finish().unwrap();
        trace.tenant = "t\"1".into();
        trace.detail = "SELECT * FROM \"x\"\n".into();

        let json = trace.to_json();
        assert!(json.contains("\"trace_id\": \"000000000000abcd\""));
        assert!(json.contains("\"blocks_read\": 2"));
        assert!(json.contains("\\\"x\\\""), "detail must be escaped");
        assert_eq!(json.matches('{').count(), json.matches('}').count());
        assert_eq!(json.matches('[').count(), json.matches(']').count());

        let chrome = trace.to_chrome_trace();
        assert!(chrome.trim_start().starts_with('['));
        assert!(chrome.trim_end().ends_with(']'));
        assert!(chrome.contains("\"ph\": \"X\""));
        assert!(chrome.contains("\"name\": \"server.execute\""));
        assert_eq!(chrome.matches('{').count(), chrome.matches('}').count());

        assert_eq!(parse_trace_id("000000000000abcd"), Some(0xABCD));
        assert_eq!(parse_trace_id("abcd"), Some(0xABCD));
        assert_eq!(parse_trace_id(""), None);
        assert_eq!(parse_trace_id("not-hex"), None);
    }

    #[test]
    fn next_trace_id_is_nonzero_and_distinct() {
        let a = next_trace_id();
        let b = next_trace_id();
        assert_ne!(a, 0);
        assert_ne!(b, 0);
        assert_ne!(a, b);
    }
}
