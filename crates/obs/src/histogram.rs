//! Log-bucketed histograms.
//!
//! Values are bucketed by bit width: bucket `i` covers `[2^(i-1), 2^i - 1]`
//! (bucket 0 holds exactly the value 0), so 65 buckets span all of `u64`.
//! This gives constant-time, allocation-free recording with ≤ 2× relative
//! error on quantile estimates — plenty for latency/size distributions —
//! and the exposition layer only emits the non-empty buckets.

use crate::enabled;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::time::Duration;

/// Number of buckets: one for zero plus one per bit width of `u64`.
pub const BUCKETS: usize = 65;

/// Index of the bucket that covers `value`.
#[inline]
pub fn bucket_index(value: u64) -> usize {
    (u64::BITS - value.leading_zeros()) as usize
}

/// Inclusive upper bound of bucket `index`.
#[inline]
pub fn bucket_bound(index: usize) -> u64 {
    if index >= 64 {
        u64::MAX
    } else {
        (1u64 << index) - 1
    }
}

/// Shared storage for one histogram (one cell per registry in a chain).
#[derive(Debug)]
pub(crate) struct HistogramCore {
    buckets: [AtomicU64; BUCKETS],
    count: AtomicU64,
    sum: AtomicU64,
    min: AtomicU64,
    max: AtomicU64,
}

impl HistogramCore {
    pub(crate) fn new() -> HistogramCore {
        HistogramCore {
            buckets: std::array::from_fn(|_| AtomicU64::new(0)),
            count: AtomicU64::new(0),
            sum: AtomicU64::new(0),
            min: AtomicU64::new(u64::MAX),
            max: AtomicU64::new(0),
        }
    }

    fn record(&self, value: u64) {
        self.buckets[bucket_index(value)].fetch_add(1, Ordering::Relaxed);
        self.count.fetch_add(1, Ordering::Relaxed);
        self.sum.fetch_add(value, Ordering::Relaxed);
        self.min.fetch_min(value, Ordering::Relaxed);
        self.max.fetch_max(value, Ordering::Relaxed);
    }

    pub(crate) fn reset(&self) {
        for b in &self.buckets {
            b.store(0, Ordering::Relaxed);
        }
        self.count.store(0, Ordering::Relaxed);
        self.sum.store(0, Ordering::Relaxed);
        self.min.store(u64::MAX, Ordering::Relaxed);
        self.max.store(0, Ordering::Relaxed);
    }

    pub(crate) fn snapshot(&self) -> HistogramSnapshot {
        let mut buckets = Vec::new();
        for (i, b) in self.buckets.iter().enumerate() {
            let n = b.load(Ordering::Relaxed);
            if n > 0 {
                buckets.push((bucket_bound(i), n));
            }
        }
        let count = self.count.load(Ordering::Relaxed);
        HistogramSnapshot {
            count,
            sum: self.sum.load(Ordering::Relaxed),
            min: if count == 0 {
                0
            } else {
                self.min.load(Ordering::Relaxed)
            },
            max: self.max.load(Ordering::Relaxed),
            buckets,
        }
    }
}

/// A handle onto a registered histogram. Cloning is cheap; all clones (and
/// same-named handles from parent registries in a chain) share storage.
#[derive(Debug, Clone)]
pub struct Histogram {
    pub(crate) cores: Arc<[Arc<HistogramCore>]>,
}

impl Histogram {
    /// Records one observation. No-op (a single relaxed load) while
    /// observability is disabled.
    #[inline]
    pub fn record(&self, value: u64) {
        if !enabled() {
            return;
        }
        for core in self.cores.iter() {
            core.record(value);
        }
    }

    /// Records a duration in **nanoseconds** (saturating at `u64::MAX`).
    #[inline]
    pub fn record_duration(&self, d: Duration) {
        self.record(u64::try_from(d.as_nanos()).unwrap_or(u64::MAX));
    }

    /// A point-in-time copy of the first (local) core's state.
    pub fn snapshot(&self) -> HistogramSnapshot {
        self.cores[0].snapshot()
    }
}

/// A point-in-time copy of a histogram's state.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct HistogramSnapshot {
    /// Number of recorded observations.
    pub count: u64,
    /// Sum of all observations.
    pub sum: u64,
    /// Smallest observation (0 when empty).
    pub min: u64,
    /// Largest observation (0 when empty).
    pub max: u64,
    /// Non-empty buckets as `(inclusive upper bound, count)`, ascending.
    pub buckets: Vec<(u64, u64)>,
}

impl HistogramSnapshot {
    /// Mean observation, or 0 when empty.
    pub fn mean(&self) -> u64 {
        if self.count == 0 {
            0
        } else {
            self.sum / self.count
        }
    }

    /// Estimated quantile `q` in `[0, 1]`: the upper bound of the first
    /// bucket whose cumulative count reaches `ceil(q * count)`, clamped to
    /// the observed `max`. Returns 0 when empty.
    pub fn quantile(&self, q: f64) -> u64 {
        if self.count == 0 {
            return 0;
        }
        let q = q.clamp(0.0, 1.0);
        let rank = ((q * self.count as f64).ceil() as u64).max(1);
        let mut seen = 0u64;
        for &(bound, n) in &self.buckets {
            seen += n;
            if seen >= rank {
                return bound.min(self.max);
            }
        }
        self.max
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bucket_boundaries() {
        assert_eq!(bucket_index(0), 0);
        assert_eq!(bucket_index(1), 1);
        assert_eq!(bucket_index(2), 2);
        assert_eq!(bucket_index(3), 2);
        assert_eq!(bucket_index(4), 3);
        assert_eq!(bucket_index(1023), 10);
        assert_eq!(bucket_index(1024), 11);
        assert_eq!(bucket_index(u64::MAX), 64);
        assert_eq!(bucket_bound(0), 0);
        assert_eq!(bucket_bound(1), 1);
        assert_eq!(bucket_bound(2), 3);
        assert_eq!(bucket_bound(10), 1023);
        assert_eq!(bucket_bound(64), u64::MAX);
        // Every value's bucket bound is >= the value.
        for v in [0u64, 1, 2, 3, 7, 8, 1 << 20, u64::MAX - 1, u64::MAX] {
            assert!(bucket_bound(bucket_index(v)) >= v, "v={v}");
        }
    }

    #[test]
    fn snapshot_and_quantiles() {
        let core = HistogramCore::new();
        for v in [0u64, 1, 2, 3, 100, 1000, u64::MAX] {
            core.record(v);
        }
        let snap = core.snapshot();
        assert_eq!(snap.count, 7);
        assert_eq!(snap.min, 0);
        assert_eq!(snap.max, u64::MAX);
        assert_eq!(
            snap.sum,
            0u64.wrapping_add(1 + 2 + 3 + 100 + 1000)
                .wrapping_add(u64::MAX)
        );
        // buckets: 0→1, 1→1, [2,3]→2, [64,127]→1, [512,1023]→1, overflow→1
        assert_eq!(
            snap.buckets,
            vec![(0, 1), (1, 1), (3, 2), (127, 1), (1023, 1), (u64::MAX, 1)]
        );
        assert_eq!(snap.quantile(0.0), 0);
        assert_eq!(snap.quantile(0.5), 3);
        assert_eq!(snap.quantile(1.0), u64::MAX);
    }

    #[test]
    fn empty_snapshot() {
        let snap = HistogramCore::new().snapshot();
        assert_eq!(snap.count, 0);
        assert_eq!(snap.min, 0);
        assert_eq!(snap.max, 0);
        assert_eq!(snap.mean(), 0);
        assert_eq!(snap.quantile(0.99), 0);
        assert!(snap.buckets.is_empty());
    }
}
