//! Named-metric registry: get-or-register counters, gauges and histograms,
//! snapshot/reset, and parent-chained child registries for scoped views.

use crate::enabled;
use crate::histogram::{Histogram, HistogramCore, HistogramSnapshot};
use crate::span::SpanHandle;
use std::collections::BTreeMap;
use std::sync::atomic::{AtomicI64, AtomicU64, Ordering};
use std::sync::{Arc, Mutex, OnceLock};

/// A monotonic counter handle. Cloning is cheap; all clones (and the parent
/// chain's same-named counters) share storage.
#[derive(Debug, Clone)]
pub struct Counter {
    cells: Arc<[Arc<AtomicU64>]>,
}

impl Counter {
    /// Adds `n`. No-op (a single relaxed load) while observability is
    /// disabled.
    #[inline]
    pub fn add(&self, n: u64) {
        if !enabled() {
            return;
        }
        for cell in self.cells.iter() {
            cell.fetch_add(n, Ordering::Relaxed);
        }
    }

    /// Adds 1.
    #[inline]
    pub fn inc(&self) {
        self.add(1);
    }

    /// Current value of the local (first) cell.
    pub fn get(&self) -> u64 {
        self.cells[0].load(Ordering::Relaxed)
    }
}

/// A signed instantaneous-value handle.
#[derive(Debug, Clone)]
pub struct Gauge {
    cells: Arc<[Arc<AtomicI64>]>,
}

impl Gauge {
    /// Adds `delta` (may be negative). No-op while observability is
    /// disabled.
    #[inline]
    pub fn add(&self, delta: i64) {
        if !enabled() {
            return;
        }
        for cell in self.cells.iter() {
            cell.fetch_add(delta, Ordering::Relaxed);
        }
    }

    /// Sets every cell in the chain to `value`. No-op while disabled.
    #[inline]
    pub fn set(&self, value: i64) {
        if !enabled() {
            return;
        }
        for cell in self.cells.iter() {
            cell.store(value, Ordering::Relaxed);
        }
    }

    /// Current value of the local (first) cell.
    pub fn get(&self) -> i64 {
        self.cells[0].load(Ordering::Relaxed)
    }
}

#[derive(Debug)]
enum Entry {
    Counter(Arc<AtomicU64>),
    Gauge(Arc<AtomicI64>),
    Histogram(Arc<HistogramCore>),
}

impl Entry {
    fn kind(&self) -> &'static str {
        match self {
            Entry::Counter(_) => "counter",
            Entry::Gauge(_) => "gauge",
            Entry::Histogram(_) => "histogram",
        }
    }
}

#[derive(Debug)]
struct Inner {
    parent: Option<Registry>,
    metrics: Mutex<BTreeMap<String, Entry>>,
    helps: Mutex<BTreeMap<String, String>>,
}

/// A registry of named metrics.
///
/// [`Registry::global`] is the process-wide instance every instrumented
/// crate records into. [`Registry::child`] builds a scoped view whose
/// metrics also feed their same-named parents, so per-pipeline snapshots
/// and process totals coexist (see `sc_stream::Metrics`).
///
/// Registration takes a lock and may allocate; recording through the
/// returned handles is lock-free. Callers therefore register once (e.g. in
/// a `OnceLock` static or a struct field) and record through the handle.
#[derive(Debug, Clone)]
pub struct Registry {
    inner: Arc<Inner>,
}

impl Default for Registry {
    fn default() -> Registry {
        Registry::new()
    }
}

impl Registry {
    /// A fresh, empty registry with no parent.
    pub fn new() -> Registry {
        Registry {
            inner: Arc::new(Inner {
                parent: None,
                metrics: Mutex::new(BTreeMap::new()),
                helps: Mutex::new(BTreeMap::new()),
            }),
        }
    }

    /// The process-global registry.
    pub fn global() -> &'static Registry {
        static GLOBAL: OnceLock<Registry> = OnceLock::new();
        GLOBAL.get_or_init(Registry::new)
    }

    /// A child registry: metrics registered on it keep their own local
    /// cells *and* chain every update into the same-named metric of this
    /// registry (and its ancestors).
    pub fn child(&self) -> Registry {
        Registry {
            inner: Arc::new(Inner {
                parent: Some(self.clone()),
                metrics: Mutex::new(BTreeMap::new()),
                helps: Mutex::new(BTreeMap::new()),
            }),
        }
    }

    /// Attaches a human-readable description to metric `name`, rendered as
    /// the `# HELP` line of the Prometheus exposition. For spans, describe
    /// the derived histograms (`{name}.duration_ns`). Undescribed metrics
    /// get a fallback `# HELP` naming the dotted series.
    pub fn describe(&self, name: &str, help: &str) {
        self.inner
            .helps
            .lock()
            .expect("registry lock poisoned")
            .insert(name.to_string(), help.to_string());
    }

    fn local_counter_cell(&self, name: &str) -> Arc<AtomicU64> {
        let mut metrics = self.inner.metrics.lock().expect("registry lock poisoned");
        match metrics
            .entry(name.to_string())
            .or_insert_with(|| Entry::Counter(Arc::new(AtomicU64::new(0))))
        {
            Entry::Counter(cell) => Arc::clone(cell),
            other => panic!(
                "metric {name:?} already registered as a {}, not a counter",
                other.kind()
            ),
        }
    }

    fn local_gauge_cell(&self, name: &str) -> Arc<AtomicI64> {
        let mut metrics = self.inner.metrics.lock().expect("registry lock poisoned");
        match metrics
            .entry(name.to_string())
            .or_insert_with(|| Entry::Gauge(Arc::new(AtomicI64::new(0))))
        {
            Entry::Gauge(cell) => Arc::clone(cell),
            other => panic!(
                "metric {name:?} already registered as a {}, not a gauge",
                other.kind()
            ),
        }
    }

    fn local_histogram_core(&self, name: &str) -> Arc<HistogramCore> {
        let mut metrics = self.inner.metrics.lock().expect("registry lock poisoned");
        match metrics
            .entry(name.to_string())
            .or_insert_with(|| Entry::Histogram(Arc::new(HistogramCore::new())))
        {
            Entry::Histogram(core) => Arc::clone(core),
            other => panic!(
                "metric {name:?} already registered as a {}, not a histogram",
                other.kind()
            ),
        }
    }

    fn chain<T>(&self, mut local: impl FnMut(&Registry) -> T) -> Vec<T> {
        let mut cells = Vec::new();
        let mut registry = Some(self);
        while let Some(r) = registry {
            cells.push(local(r));
            registry = r.inner.parent.as_ref();
        }
        cells
    }

    /// Gets or registers the counter `name`.
    ///
    /// # Panics
    /// If `name` is already registered as a different metric kind.
    pub fn counter(&self, name: &str) -> Counter {
        Counter {
            cells: self.chain(|r| r.local_counter_cell(name)).into(),
        }
    }

    /// Gets or registers the gauge `name`.
    ///
    /// # Panics
    /// If `name` is already registered as a different metric kind.
    pub fn gauge(&self, name: &str) -> Gauge {
        Gauge {
            cells: self.chain(|r| r.local_gauge_cell(name)).into(),
        }
    }

    /// Gets or registers the histogram `name`.
    ///
    /// # Panics
    /// If `name` is already registered as a different metric kind.
    pub fn histogram(&self, name: &str) -> Histogram {
        Histogram {
            cores: self.chain(|r| r.local_histogram_core(name)).into(),
        }
    }

    /// Gets or registers the pair of histograms backing span `name`
    /// (`{name}.duration_ns` and `{name}.bytes`) and returns the reusable
    /// handle. See [`SpanHandle`].
    pub fn span(&self, name: &'static str) -> SpanHandle {
        SpanHandle::new(
            name,
            self.histogram(&format!("{name}.duration_ns")),
            self.histogram(&format!("{name}.bytes")),
        )
    }

    /// A point-in-time copy of all *local* metrics, sorted by name.
    pub fn snapshot(&self) -> RegistrySnapshot {
        let metrics = self.inner.metrics.lock().expect("registry lock poisoned");
        let mut snap = RegistrySnapshot::default();
        for (name, entry) in metrics.iter() {
            match entry {
                Entry::Counter(cell) => snap
                    .counters
                    .push((name.clone(), cell.load(Ordering::Relaxed))),
                Entry::Gauge(cell) => snap
                    .gauges
                    .push((name.clone(), cell.load(Ordering::Relaxed))),
                Entry::Histogram(core) => snap.histograms.push((name.clone(), core.snapshot())),
            }
        }
        let helps = self.inner.helps.lock().expect("registry lock poisoned");
        snap.helps = helps.iter().map(|(n, h)| (n.clone(), h.clone())).collect();
        snap
    }

    /// Zeroes every *local* metric (parents are untouched). Registered
    /// handles stay valid.
    pub fn reset(&self) {
        let metrics = self.inner.metrics.lock().expect("registry lock poisoned");
        for entry in metrics.values() {
            match entry {
                Entry::Counter(cell) => cell.store(0, Ordering::Relaxed),
                Entry::Gauge(cell) => cell.store(0, Ordering::Relaxed),
                Entry::Histogram(core) => core.reset(),
            }
        }
    }
}

/// A point-in-time copy of a registry's metrics, each list sorted by name.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct RegistrySnapshot {
    /// `(name, value)` for every counter.
    pub counters: Vec<(String, u64)>,
    /// `(name, value)` for every gauge.
    pub gauges: Vec<(String, i64)>,
    /// `(name, snapshot)` for every histogram.
    pub histograms: Vec<(String, HistogramSnapshot)>,
    /// `(name, help)` for every metric described via [`Registry::describe`].
    pub helps: Vec<(String, String)>,
}

impl RegistrySnapshot {
    /// The value of counter `name`, if registered.
    pub fn counter(&self, name: &str) -> Option<u64> {
        self.counters
            .iter()
            .find(|(n, _)| n == name)
            .map(|&(_, v)| v)
    }

    /// The value of gauge `name`, if registered.
    pub fn gauge(&self, name: &str) -> Option<i64> {
        self.gauges.iter().find(|(n, _)| n == name).map(|&(_, v)| v)
    }

    /// The snapshot of histogram `name`, if registered.
    pub fn histogram(&self, name: &str) -> Option<&HistogramSnapshot> {
        self.histograms
            .iter()
            .find(|(n, _)| n == name)
            .map(|(_, h)| h)
    }

    /// The registered help text for metric `name`, if any.
    pub fn help(&self, name: &str) -> Option<&str> {
        self.helps
            .iter()
            .find(|(n, _)| n == name)
            .map(|(_, h)| h.as_str())
    }

    /// True when no metric has recorded anything.
    pub fn is_empty(&self) -> bool {
        self.counters.is_empty() && self.gauges.is_empty() && self.histograms.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::thread;

    #[test]
    fn get_or_register_returns_shared_storage() {
        let registry = Registry::new();
        let a = registry.counter("r.a.hits");
        let b = registry.counter("r.a.hits");
        a.add(2);
        b.inc();
        assert_eq!(a.get(), 3);
        assert_eq!(registry.snapshot().counter("r.a.hits"), Some(3));
    }

    #[test]
    #[should_panic(expected = "already registered as a counter")]
    fn kind_mismatch_panics() {
        let registry = Registry::new();
        registry.counter("r.kind.clash");
        registry.histogram("r.kind.clash");
    }

    #[test]
    fn child_chains_to_parent() {
        let parent = Registry::new();
        let child = parent.child();
        let c = child.counter("r.chain.n");
        c.add(5);
        assert_eq!(child.snapshot().counter("r.chain.n"), Some(5));
        assert_eq!(parent.snapshot().counter("r.chain.n"), Some(5));
        // A second child keeps its own local view; the parent accumulates.
        let c2 = parent.child().counter("r.chain.n");
        c2.add(7);
        assert_eq!(c2.get(), 7);
        assert_eq!(parent.snapshot().counter("r.chain.n"), Some(12));
        assert_eq!(child.snapshot().counter("r.chain.n"), Some(5));
    }

    #[test]
    fn gauge_set_and_add() {
        let registry = Registry::new();
        let g = registry.gauge("r.g.level");
        g.set(10);
        g.add(-3);
        assert_eq!(g.get(), 7);
        assert_eq!(registry.snapshot().gauge("r.g.level"), Some(7));
    }

    #[test]
    fn reset_zeroes_local_only() {
        let parent = Registry::new();
        let child = parent.child();
        let c = child.counter("r.reset.n");
        let h = child.histogram("r.reset.h");
        c.add(4);
        h.record(9);
        child.reset();
        assert_eq!(child.snapshot().counter("r.reset.n"), Some(0));
        assert_eq!(child.snapshot().histogram("r.reset.h").unwrap().count, 0);
        assert_eq!(parent.snapshot().counter("r.reset.n"), Some(4));
        assert_eq!(c.get(), 0, "handle stays valid after reset");
        c.inc();
        assert_eq!(c.get(), 1);
    }

    #[test]
    fn snapshot_under_concurrent_increment_is_coherent() {
        let registry = Registry::new();
        let c = registry.counter("r.conc.n");
        let h = registry.histogram("r.conc.h");
        const THREADS: usize = 4;
        const PER_THREAD: u64 = 10_000;
        thread::scope(|scope| {
            for _ in 0..THREADS {
                let c = c.clone();
                let h = h.clone();
                scope.spawn(move || {
                    for i in 0..PER_THREAD {
                        c.inc();
                        h.record(i % 7);
                    }
                });
            }
            // Snapshots taken mid-flight must be internally sane: counts
            // monotone, histogram bucket total == histogram count is NOT
            // guaranteed mid-update, but nothing may exceed the final total
            // and nothing may go backwards.
            let mut last = 0u64;
            for _ in 0..100 {
                let snap = registry.snapshot();
                let n = snap.counter("r.conc.n").unwrap();
                assert!(n >= last, "counter went backwards: {n} < {last}");
                assert!(n <= THREADS as u64 * PER_THREAD);
                last = n;
            }
        });
        let snap = registry.snapshot();
        assert_eq!(snap.counter("r.conc.n"), Some(THREADS as u64 * PER_THREAD));
        let hs = snap.histogram("r.conc.h").unwrap();
        assert_eq!(hs.count, THREADS as u64 * PER_THREAD);
        assert_eq!(hs.buckets.iter().map(|&(_, n)| n).sum::<u64>(), hs.count);
    }
}
