//! RAII span tracing.
//!
//! A [`SpanHandle`] names a region of code and owns the two histograms the
//! region feeds (`{name}.duration_ns`, `{name}.bytes`). [`SpanHandle::start`]
//! returns a [`SpanGuard`] that, on drop, records the elapsed monotonic time
//! (always), the attached byte count (when non-zero), and pushes a
//! [`SpanEvent`] into a process-global bounded ring buffer that tests and
//! the CLI drain with [`drain_events`].
//!
//! Nesting depth is tracked per thread, so a drained event stream can be
//! re-indented into a trace. The ring buffer drops the *oldest* event when
//! full and never reallocates after creation; [`events_dropped`] counts the
//! losses.
//!
//! The [`span!`](crate::span!) macro caches the handle lookup in a
//! per-call-site static, making the steady-state cost of an instrumented
//! region one atomic load (disabled) or one `Instant::now` pair plus a few
//! relaxed RMWs (enabled).

use crate::enabled;
use crate::histogram::Histogram;
use std::cell::Cell;
use std::collections::VecDeque;
use std::sync::{Mutex, OnceLock};
use std::time::Instant;

thread_local! {
    static DEPTH: Cell<u16> = const { Cell::new(0) };
}

/// One completed span occurrence.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SpanEvent {
    /// Span name (the `span!`/[`Registry::span`](crate::Registry::span) argument).
    pub name: &'static str,
    /// Nesting depth at entry (0 = outermost) on the recording thread.
    pub depth: u16,
    /// Elapsed wall time, monotonic, in nanoseconds.
    pub duration_ns: u64,
    /// Bytes attached via [`SpanGuard::add_bytes`] (0 if none).
    pub bytes: u64,
}

#[derive(Debug)]
struct Sink {
    buf: VecDeque<SpanEvent>,
    cap: usize,
    dropped: u64,
}

impl Sink {
    fn push(&mut self, event: SpanEvent) {
        if self.buf.len() == self.cap {
            self.buf.pop_front();
            self.dropped += 1;
        }
        self.buf.push_back(event);
    }
}

const DEFAULT_EVENT_CAPACITY: usize = 1024;

fn sink() -> &'static Mutex<Sink> {
    static SINK: OnceLock<Mutex<Sink>> = OnceLock::new();
    SINK.get_or_init(|| {
        Mutex::new(Sink {
            buf: VecDeque::with_capacity(DEFAULT_EVENT_CAPACITY),
            cap: DEFAULT_EVENT_CAPACITY,
            dropped: 0,
        })
    })
}

/// Removes and returns all buffered span events, oldest first.
pub fn drain_events() -> Vec<SpanEvent> {
    sink()
        .lock()
        .expect("span sink poisoned")
        .buf
        .drain(..)
        .collect()
}

/// Events discarded because the ring buffer was full, since process start.
pub fn events_dropped() -> u64 {
    sink().lock().expect("span sink poisoned").dropped
}

/// Resizes the ring buffer (oldest events are discarded if shrinking).
/// Capacity 0 disables event buffering without disabling the histograms.
pub fn set_event_capacity(cap: usize) {
    let mut s = sink().lock().expect("span sink poisoned");
    s.cap = cap;
    while s.buf.len() > cap {
        s.buf.pop_front();
        s.dropped += 1;
    }
    let additional = cap.saturating_sub(s.buf.capacity());
    s.buf.reserve_exact(additional);
}

/// A named, reusable span. Obtain one from [`Registry::span`](crate::Registry::span) (or the
/// [`span!`](crate::span!) macro, which caches the lookup per call site).
#[derive(Debug, Clone)]
pub struct SpanHandle {
    name: &'static str,
    duration_ns: Histogram,
    bytes: Histogram,
}

impl SpanHandle {
    pub(crate) fn new(name: &'static str, duration_ns: Histogram, bytes: Histogram) -> SpanHandle {
        SpanHandle {
            name,
            duration_ns,
            bytes,
        }
    }

    /// The span's name.
    pub fn name(&self) -> &'static str {
        self.name
    }

    /// Enters the span. While observability is disabled this is a single
    /// relaxed load and the returned guard is inert.
    #[inline]
    pub fn start(&self) -> SpanGuard<'_> {
        if !enabled() {
            return SpanGuard { active: None };
        }
        let depth = DEPTH.with(|d| {
            let depth = d.get();
            d.set(depth.saturating_add(1));
            depth
        });
        SpanGuard {
            active: Some(ActiveSpan {
                handle: self,
                started: Instant::now(),
                depth,
                bytes: 0,
                trace_idx: crate::trace::open_span(self.name),
            }),
        }
    }
}

#[derive(Debug)]
struct ActiveSpan<'a> {
    handle: &'a SpanHandle,
    started: Instant,
    depth: u16,
    bytes: u64,
    /// Node index in the active request trace, if one is being built on
    /// this thread (see [`crate::trace`]).
    trace_idx: Option<u32>,
}

/// RAII guard for an entered span; records on drop.
#[derive(Debug)]
pub struct SpanGuard<'a> {
    active: Option<ActiveSpan<'a>>,
}

impl SpanGuard<'_> {
    /// Attributes `n` bytes to this span occurrence (e.g. bytes flushed).
    #[inline]
    pub fn add_bytes(&mut self, n: u64) {
        if let Some(active) = &mut self.active {
            active.bytes = active.bytes.saturating_add(n);
        }
    }
}

impl Drop for SpanGuard<'_> {
    fn drop(&mut self) {
        let Some(active) = self.active.take() else {
            return;
        };
        let duration_ns = u64::try_from(active.started.elapsed().as_nanos()).unwrap_or(u64::MAX);
        DEPTH.with(|d| d.set(d.get().saturating_sub(1)));
        crate::trace::close_span(active.trace_idx);
        active.handle.duration_ns.record(duration_ns);
        if active.bytes > 0 {
            active.handle.bytes.record(active.bytes);
        }
        let event = SpanEvent {
            name: active.handle.name,
            depth: active.depth,
            duration_ns,
            bytes: active.bytes,
        };
        let mut s = sink().lock().expect("span sink poisoned");
        if s.cap > 0 {
            s.push(event);
        }
    }
}

/// Enters a named span on the global registry, caching the handle in a
/// per-call-site static. Returns a [`SpanGuard`].
///
/// ```
/// let mut guard = sc_obs::span!("doc.demo.work");
/// guard.add_bytes(128);
/// drop(guard);
/// let snap = sc_obs::Registry::global().snapshot();
/// assert_eq!(snap.histogram("doc.demo.work.bytes").unwrap().count, 1);
/// ```
#[macro_export]
macro_rules! span {
    ($name:literal) => {{
        static __SC_OBS_SPAN: ::std::sync::OnceLock<$crate::SpanHandle> =
            ::std::sync::OnceLock::new();
        __SC_OBS_SPAN
            .get_or_init(|| $crate::Registry::global().span($name))
            .start()
    }};
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Registry;

    #[test]
    fn span_records_duration_bytes_depth_and_event() {
        let registry = Registry::new();
        let outer = registry.span("t.span.outer");
        let inner = registry.span("t.span.inner");
        {
            let mut outer_guard = outer.start();
            outer_guard.add_bytes(100);
            outer_guard.add_bytes(28);
            {
                let _inner_guard = inner.start();
                std::hint::black_box(());
            }
        }
        let snap = registry.snapshot();
        let outer_ns = snap.histogram("t.span.outer.duration_ns").unwrap();
        assert_eq!(outer_ns.count, 1);
        assert!(outer_ns.sum > 0, "monotonic duration must be non-zero ns");
        let outer_bytes = snap.histogram("t.span.outer.bytes").unwrap();
        assert_eq!(outer_bytes.sum, 128);
        // Inner span recorded no bytes → bytes histogram stays empty.
        assert_eq!(snap.histogram("t.span.inner.bytes").unwrap().count, 0);
        // Both events are in the global sink with correct relative depth
        // (other tests may interleave events, so filter by name).
        let events = drain_events();
        let outer_ev = events.iter().find(|e| e.name == "t.span.outer").unwrap();
        let inner_ev = events.iter().find(|e| e.name == "t.span.inner").unwrap();
        assert_eq!(inner_ev.depth, outer_ev.depth + 1);
        assert_eq!(outer_ev.bytes, 128);
        assert!(outer_ev.duration_ns >= inner_ev.duration_ns);
    }

    #[test]
    fn ring_buffer_drops_oldest() {
        // Use a private registry but the shared global sink; serialise with
        // a big enough burst that ordering among our own events is certain.
        let registry = Registry::new();
        let handle = registry.span("t.span.ring");
        drain_events();
        let before_dropped = events_dropped();
        for _ in 0..DEFAULT_EVENT_CAPACITY + 10 {
            let _g = handle.start();
        }
        let events = drain_events();
        assert!(events.len() <= DEFAULT_EVENT_CAPACITY);
        assert!(events_dropped() >= before_dropped + 10);
    }
}
