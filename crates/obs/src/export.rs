//! Exposition: render a [`RegistrySnapshot`] as Prometheus-style text or
//! JSON. Both are hand-rolled over the snapshot (no serializer dependency;
//! metric names are dotted identifiers, so escaping reduces to numbers and
//! fixed name characters).

use crate::histogram::HistogramSnapshot;
use crate::registry::RegistrySnapshot;
use std::fmt::Write;

fn prom_name(name: &str) -> String {
    name.replace(['.', '-'], "_")
}

impl RegistrySnapshot {
    /// The `# HELP` text for `name`: the registered description
    /// ([`crate::Registry::describe`]) when present, else a fallback
    /// naming the dotted series the family was derived from.
    fn help_line(&self, name: &str) -> String {
        match self.help(name) {
            Some(help) => help.replace('\n', " "),
            None => format!("smartcube series {name}"),
        }
    }

    /// Prometheus text format: one `# HELP` + `# TYPE` pair per family,
    /// counters and gauges as single samples, histograms as `_count` /
    /// `_sum` / cumulative `_bucket{le="..."}` series ending in
    /// `le="+Inf"`. Only non-empty buckets (plus `+Inf`) are emitted.
    /// A synthetic `build_info{version="..."} 1` gauge leads the page so
    /// scrapes are attributable to a binary version.
    pub fn to_prometheus_text(&self) -> String {
        let mut out = String::new();
        let _ = writeln!(
            out,
            "# HELP build_info smartcube build metadata; the value is always 1\n\
             # TYPE build_info gauge\n\
             build_info{{version=\"{}\"}} 1",
            env!("CARGO_PKG_VERSION")
        );
        for (name, value) in &self.counters {
            let n = prom_name(name);
            let _ = writeln!(out, "# HELP {n} {}", self.help_line(name));
            let _ = writeln!(out, "# TYPE {n} counter\n{n} {value}");
        }
        for (name, value) in &self.gauges {
            let n = prom_name(name);
            let _ = writeln!(out, "# HELP {n} {}", self.help_line(name));
            let _ = writeln!(out, "# TYPE {n} gauge\n{n} {value}");
        }
        for (name, h) in &self.histograms {
            let n = prom_name(name);
            let _ = writeln!(out, "# HELP {n} {}", self.help_line(name));
            let _ = writeln!(out, "# TYPE {n} histogram");
            let mut cumulative = 0u64;
            for &(bound, count) in &h.buckets {
                cumulative += count;
                let _ = writeln!(out, "{n}_bucket{{le=\"{bound}\"}} {cumulative}");
            }
            let _ = writeln!(out, "{n}_bucket{{le=\"+Inf\"}} {}", h.count);
            let _ = writeln!(out, "{n}_sum {}\n{n}_count {}", h.sum, h.count);
        }
        out
    }

    /// JSON object `{"counters": {...}, "gauges": {...}, "histograms":
    /// {...}}`; each histogram carries count/sum/min/max/mean/p50/p99 and
    /// its non-empty buckets as `[{"le": bound, "n": count}, ...]`.
    pub fn to_json(&self) -> String {
        let mut out = String::from("{\n  \"counters\": {");
        push_entries(&mut out, &self.counters, |out, v| {
            let _ = write!(out, "{v}");
        });
        out.push_str("},\n  \"gauges\": {");
        push_entries(&mut out, &self.gauges, |out, v| {
            let _ = write!(out, "{v}");
        });
        out.push_str("},\n  \"histograms\": {");
        push_entries(&mut out, &self.histograms, |out, h| {
            push_histogram_json(out, h);
        });
        out.push_str("}\n}\n");
        out
    }

    /// Human-oriented report: aligned name/value lines for counters and
    /// gauges, one summary line per histogram. This is what `repro --stats`
    /// prints.
    pub fn to_text_report(&self) -> String {
        let mut out = String::new();
        let width = self
            .counters
            .iter()
            .map(|(n, _)| n.len())
            .chain(self.gauges.iter().map(|(n, _)| n.len()))
            .chain(self.histograms.iter().map(|(n, _)| n.len()))
            .max()
            .unwrap_or(0);
        if !self.counters.is_empty() {
            out.push_str("counters:\n");
            for (name, value) in &self.counters {
                let _ = writeln!(out, "  {name:<width$}  {value}");
            }
        }
        if !self.gauges.is_empty() {
            out.push_str("gauges:\n");
            for (name, value) in &self.gauges {
                let _ = writeln!(out, "  {name:<width$}  {value}");
            }
        }
        if !self.histograms.is_empty() {
            out.push_str("histograms:\n");
            for (name, h) in &self.histograms {
                let _ = writeln!(
                    out,
                    "  {name:<width$}  count={} sum={} min={} max={} mean={} p50~{} p99~{}",
                    h.count,
                    h.sum,
                    h.min,
                    h.max,
                    h.mean(),
                    h.quantile(0.5),
                    h.quantile(0.99),
                );
            }
        }
        if out.is_empty() {
            out.push_str("(no metrics recorded)\n");
        }
        out
    }
}

fn push_entries<T>(
    out: &mut String,
    entries: &[(String, T)],
    mut value: impl FnMut(&mut String, &T),
) {
    for (i, (name, v)) in entries.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        out.push_str("\n    \"");
        out.push_str(name);
        out.push_str("\": ");
        value(out, v);
    }
    if !entries.is_empty() {
        out.push_str("\n  ");
    }
}

fn push_histogram_json(out: &mut String, h: &HistogramSnapshot) {
    let _ = write!(
        out,
        "{{\"count\": {}, \"sum\": {}, \"min\": {}, \"max\": {}, \"mean\": {}, \"p50\": {}, \"p99\": {}, \"buckets\": [",
        h.count,
        h.sum,
        h.min,
        h.max,
        h.mean(),
        h.quantile(0.5),
        h.quantile(0.99),
    );
    for (i, &(bound, n)) in h.buckets.iter().enumerate() {
        if i > 0 {
            out.push_str(", ");
        }
        let _ = write!(out, "{{\"le\": {bound}, \"n\": {n}}}");
    }
    out.push_str("]}");
}

#[cfg(test)]
mod tests {
    use crate::Registry;

    fn sample() -> crate::RegistrySnapshot {
        let registry = Registry::new();
        registry.counter("x.ops.total").add(3);
        registry.gauge("x.queue.depth").set(-2);
        let h = registry.histogram("x.put.ns");
        h.record(1);
        h.record(3);
        h.record(900);
        registry.snapshot()
    }

    #[test]
    fn prometheus_text_shape() {
        let text = sample().to_prometheus_text();
        assert!(text.starts_with("# HELP build_info "));
        assert!(text.contains(&format!(
            "build_info{{version=\"{}\"}} 1",
            env!("CARGO_PKG_VERSION")
        )));
        // Every family gets a HELP line; undescribed ones use the fallback.
        assert!(text.contains("# HELP x_ops_total smartcube series x.ops.total"));
        assert!(text.contains("# TYPE x_ops_total counter"));
        assert!(text.contains("x_ops_total 3"));
        assert!(text.contains("x_queue_depth -2"));
        // Cumulative buckets: le=1 → 1, le=3 → 2, le=1023 → 3, +Inf → 3.
        assert!(text.contains("x_put_ns_bucket{le=\"1\"} 1"));
        assert!(text.contains("x_put_ns_bucket{le=\"3\"} 2"));
        assert!(text.contains("x_put_ns_bucket{le=\"1023\"} 3"));
        assert!(text.contains("x_put_ns_bucket{le=\"+Inf\"} 3"));
        assert!(text.contains("x_put_ns_sum 904"));
        assert!(text.contains("x_put_ns_count 3"));
    }

    #[test]
    fn prometheus_help_uses_registered_description() {
        let registry = Registry::new();
        registry.counter("x.described.total").add(1);
        registry.describe("x.described.total", "total described\nthings");
        let text = registry.snapshot().to_prometheus_text();
        // Registered text wins over the fallback, newlines flattened.
        assert!(text.contains("# HELP x_described_total total described things"));
    }

    #[test]
    fn json_shape() {
        let json = sample().to_json();
        assert!(json.contains("\"x.ops.total\": 3"));
        assert!(json.contains("\"x.queue.depth\": -2"));
        assert!(json.contains("\"count\": 3"));
        assert!(json.contains("{\"le\": 1, \"n\": 1}"));
        // Crude structural sanity: balanced braces/brackets.
        let opens = json.matches('{').count();
        let closes = json.matches('}').count();
        assert_eq!(opens, closes);
        assert_eq!(json.matches('[').count(), json.matches(']').count());
    }

    #[test]
    fn text_report_lists_everything() {
        let report = sample().to_text_report();
        assert!(report.contains("x.ops.total"));
        assert!(report.contains("x.queue.depth"));
        assert!(report.contains("count=3"));
        let empty = Registry::new().snapshot().to_text_report();
        assert!(empty.contains("no metrics recorded"));
    }
}
