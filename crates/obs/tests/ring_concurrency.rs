//! The global span-event ring under concurrency: N writer threads emit
//! span events while a reader drains. The ring must never panic, must
//! conserve events exactly (delivered + dropped == emitted), must lose
//! nothing when the emitted total fits the capacity, and must deliver
//! each thread's events in that thread's emission order.
//!
//! Seeded: `SC_NOSQL_YIELD=<seed>` (the workspace-wide concurrency-tier
//! knob, re-used here so `scripts/ci.sh` drives this test with the same
//! seeds as the engine tier) perturbs thread interleavings with a
//! deterministic splitmix-derived yield pattern.
//!
//! Own binary: it resizes the process-global ring and reasons about its
//! exact contents, which would race with other test binaries' spans. One
//! `#[test]` fn for the same reason.

use sc_obs::{drain_events, events_dropped, set_event_capacity, Registry, SpanEvent};
use std::sync::atomic::{AtomicUsize, Ordering};
use std::thread;

const THREADS: usize = 8;
const PER_THREAD: u64 = 2_000;

/// One distinct span name per writer thread, so drained events map back
/// to their emitting thread (`&'static str` is what the ring stores).
const NAMES: [&str; THREADS] = [
    "ring.t0", "ring.t1", "ring.t2", "ring.t3", "ring.t4", "ring.t5", "ring.t6", "ring.t7",
];

fn seed() -> u64 {
    std::env::var("SC_NOSQL_YIELD")
        .ok()
        .and_then(|s| s.parse().ok())
        .unwrap_or(0xC0FFEE)
}

fn splitmix(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// Emits `PER_THREAD` events through `handle`, encoding the per-thread
/// sequence number in the byte count, yielding on a seeded pattern.
fn emit(handle: &sc_obs::SpanHandle, mut rng: u64) {
    for seq in 1..=PER_THREAD {
        let mut guard = handle.start();
        guard.add_bytes(seq);
        drop(guard);
        if splitmix(&mut rng) % 7 == 0 {
            thread::yield_now();
        }
    }
}

/// Asserts that, per thread, the delivered sequence numbers are strictly
/// increasing — the ring may drop a prefix (oldest-first) or interior
/// events under overflow, but must never reorder within a thread.
fn assert_per_thread_order(events: &[SpanEvent]) {
    let mut last = [0u64; THREADS];
    for e in events {
        let Some(t) = NAMES.iter().position(|&n| n == e.name) else {
            continue; // another subsystem's span; not ours to check
        };
        assert!(
            e.bytes > last[t],
            "thread {t}: event seq {} delivered after {}",
            e.bytes,
            last[t]
        );
        last[t] = e.bytes;
    }
}

#[test]
fn ring_conserves_and_orders_events_under_concurrent_drain() {
    let registry = Registry::new();
    let handles: Vec<sc_obs::SpanHandle> = NAMES.iter().map(|n| registry.span(n)).collect();
    let base_seed = seed();

    // --- Phase 1: ring big enough for everything → zero loss, exact set.
    set_event_capacity(THREADS * PER_THREAD as usize + 64);
    drain_events();
    let dropped_before = events_dropped();
    thread::scope(|scope| {
        for (t, handle) in handles.iter().enumerate() {
            scope.spawn(move || emit(handle, base_seed ^ (t as u64) << 32));
        }
    });
    let events = drain_events();
    assert_eq!(
        events_dropped(),
        dropped_before,
        "emitted total fits capacity → nothing may be lost"
    );
    let ours: Vec<&SpanEvent> = events.iter().filter(|e| NAMES.contains(&e.name)).collect();
    assert_eq!(ours.len(), THREADS * PER_THREAD as usize);
    assert_per_thread_order(&events);
    // Every thread delivered its full 1..=PER_THREAD sequence.
    for (t, name) in NAMES.iter().enumerate() {
        let seqs: Vec<u64> = events
            .iter()
            .filter(|e| e.name == *name)
            .map(|e| e.bytes)
            .collect();
        assert_eq!(seqs.len() as u64, PER_THREAD, "thread {t} lost events");
        assert_eq!(*seqs.last().unwrap(), PER_THREAD);
    }

    // --- Phase 2: tiny ring + concurrent reader → conservation + order.
    const SMALL_CAP: usize = 64;
    set_event_capacity(SMALL_CAP);
    let dropped_before = events_dropped();
    let finished = AtomicUsize::new(0);
    let mut delivered: Vec<SpanEvent> = Vec::new();
    thread::scope(|scope| {
        for (t, handle) in handles.iter().enumerate() {
            let finished = &finished;
            scope.spawn(move || {
                emit(handle, base_seed.rotate_left(t as u32 + 1));
                finished.fetch_add(1, Ordering::Release);
            });
        }
        // Reader drains while writers run (this scope's main thread);
        // observe "all writers done" *before* the drain so the exit drain
        // can't miss events emitted before the observation.
        let mut reader_rng = base_seed ^ 0xD8A1;
        loop {
            let all_done = finished.load(Ordering::Acquire) == THREADS;
            delivered.extend(drain_events());
            if all_done {
                break;
            }
            if splitmix(&mut reader_rng) % 3 == 0 {
                thread::yield_now();
            }
        }
    });
    delivered.extend(drain_events()); // final sweep after all writers joined
    let dropped = events_dropped() - dropped_before;
    let ours = delivered.iter().filter(|e| NAMES.contains(&e.name)).count() as u64;
    // Conservation: every emitted event is either delivered or counted as
    // dropped — the ring can lose to overflow, never silently.
    assert_eq!(
        ours + dropped,
        THREADS as u64 * PER_THREAD,
        "delivered {ours} + dropped {dropped} must equal emitted"
    );
    // The final residue can never exceed the ring's capacity.
    assert!(delivered.len() as u64 >= ours);
    assert_per_thread_order(&delivered);

    set_event_capacity(1024); // restore the process default
}
