//! Proves the disabled-observability fast path performs **zero heap
//! allocations** (and drops all recording), that the tracing-off request
//! path is equally allocation-free, and that re-enabling works.
//!
//! Runs as an integration test so it owns the process-global toggles —
//! flipping them inside the unit-test binary would race with tests that
//! assume recording is on. One `#[test]` fn owns both toggles for the
//! same reason.

use std::alloc::{GlobalAlloc, Layout, System};
use std::sync::atomic::{AtomicU64, Ordering};

struct CountingAlloc;

static ALLOCATIONS: AtomicU64 = AtomicU64::new(0);

unsafe impl GlobalAlloc for CountingAlloc {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        ALLOCATIONS.fetch_add(1, Ordering::Relaxed);
        System.alloc(layout)
    }

    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        System.dealloc(ptr, layout)
    }

    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        ALLOCATIONS.fetch_add(1, Ordering::Relaxed);
        System.realloc(ptr, layout, new_size)
    }
}

#[global_allocator]
static ALLOC: CountingAlloc = CountingAlloc;

#[test]
fn disabled_path_records_nothing_and_never_allocates() {
    let registry = sc_obs::Registry::new();
    // Registration (allowed to allocate) happens once, up front — exactly
    // how instrumented code caches handles in statics or struct fields.
    let counter = registry.counter("na.fast.ops");
    let gauge = registry.gauge("na.fast.depth");
    let histogram = registry.histogram("na.fast.ns");
    let span = registry.span("na.fast.work");

    // Warm every code path once while enabled (first `Instant::now`, TLS
    // init, ring-buffer `OnceLock` init all happen here).
    counter.inc();
    gauge.set(1);
    histogram.record(42);
    drop(span.start());

    sc_obs::set_enabled(false);
    let before = ALLOCATIONS.load(Ordering::Relaxed);
    for i in 0..10_000u64 {
        counter.add(i);
        gauge.add(1);
        histogram.record(i);
        let mut guard = span.start();
        guard.add_bytes(i);
    }
    let allocated = ALLOCATIONS.load(Ordering::Relaxed) - before;
    sc_obs::set_enabled(true);
    assert_eq!(allocated, 0, "disabled hot path must not allocate");

    // Nothing was recorded while disabled…
    let snap = registry.snapshot();
    assert_eq!(snap.counter("na.fast.ops"), Some(1));
    assert_eq!(snap.gauge("na.fast.depth"), Some(1));
    assert_eq!(snap.histogram("na.fast.ns").unwrap().count, 1);
    assert_eq!(snap.histogram("na.fast.work.duration_ns").unwrap().count, 1);

    // …and recording resumes after re-enabling.
    counter.inc();
    histogram.record(7);
    drop(span.start());
    let snap = registry.snapshot();
    assert_eq!(snap.counter("na.fast.ops"), Some(2));
    assert_eq!(snap.histogram("na.fast.ns").unwrap().count, 2);
    assert_eq!(snap.histogram("na.fast.work.duration_ns").unwrap().count, 2);

    // --- Request tracing: the tracing-off path must be just as free. ---
    use sc_obs::trace;

    // Warm the trace TLS and the span→trace hook once while tracing is on.
    trace::set_trace_enabled(true);
    let warm = trace::begin(trace::next_trace_id(), "na.trace.warm");
    {
        let _stage = trace::stage("na.trace.stage");
        trace::add(trace::Attr::BlocksRead, 1);
        trace::record_wait(
            "na.trace.wait",
            std::time::Duration::from_nanos(1),
            trace::Attr::CommitWaitNs,
        );
        drop(span.start());
    }
    drop(warm.finish());

    // Tracing off (metrics still on — the common server configuration):
    // begin/stage/add/record_wait and traced metric spans must not allocate.
    trace::set_trace_enabled(false);
    let before = ALLOCATIONS.load(Ordering::Relaxed);
    for i in 0..10_000u64 {
        let guard = trace::begin(i | 1, "na.trace.off");
        let _stage = trace::stage("na.trace.stage");
        trace::add(trace::Attr::BlocksRead, i);
        trace::record_wait(
            "na.trace.wait",
            std::time::Duration::from_nanos(i),
            trace::Attr::CommitWaitNs,
        );
        debug_assert!(!guard.is_active());
        drop(guard);
    }
    let allocated = ALLOCATIONS.load(Ordering::Relaxed) - before;
    assert_eq!(allocated, 0, "tracing-off request path must not allocate");

    // And with *everything* off, the span-site hook stays free too.
    sc_obs::set_enabled(false);
    let before = ALLOCATIONS.load(Ordering::Relaxed);
    for _ in 0..10_000u64 {
        drop(span.start());
        drop(trace::begin(1, "na.trace.alloff"));
    }
    let allocated = ALLOCATIONS.load(Ordering::Relaxed) - before;
    sc_obs::set_enabled(true);
    assert_eq!(allocated, 0, "fully-disabled path must not allocate");

    // Tracing back on: traces build again (prove the off phase was a
    // toggle, not a latch).
    trace::set_trace_enabled(true);
    let guard = trace::begin(0xF00D, "na.trace.on");
    assert!(guard.is_active());
    {
        let _stage = trace::stage("na.trace.stage");
        trace::add(trace::Attr::BlocksRead, 3);
    }
    let t = guard.finish().expect("trace completes when re-enabled");
    trace::set_trace_enabled(false);
    assert_eq!(t.trace_id, 0xF00D);
    assert_eq!(t.spans.len(), 1);
    assert_eq!(t.attr_total(trace::Attr::BlocksRead), 3);
}
