//! Proves the disabled-observability fast path performs **zero heap
//! allocations** (and drops all recording), and that re-enabling works.
//!
//! Runs as an integration test so it owns the process-global toggle —
//! flipping it inside the unit-test binary would race with tests that
//! assume recording is on.

use std::alloc::{GlobalAlloc, Layout, System};
use std::sync::atomic::{AtomicU64, Ordering};

struct CountingAlloc;

static ALLOCATIONS: AtomicU64 = AtomicU64::new(0);

unsafe impl GlobalAlloc for CountingAlloc {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        ALLOCATIONS.fetch_add(1, Ordering::Relaxed);
        System.alloc(layout)
    }

    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        System.dealloc(ptr, layout)
    }

    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        ALLOCATIONS.fetch_add(1, Ordering::Relaxed);
        System.realloc(ptr, layout, new_size)
    }
}

#[global_allocator]
static ALLOC: CountingAlloc = CountingAlloc;

#[test]
fn disabled_path_records_nothing_and_never_allocates() {
    let registry = sc_obs::Registry::new();
    // Registration (allowed to allocate) happens once, up front — exactly
    // how instrumented code caches handles in statics or struct fields.
    let counter = registry.counter("na.fast.ops");
    let gauge = registry.gauge("na.fast.depth");
    let histogram = registry.histogram("na.fast.ns");
    let span = registry.span("na.fast.work");

    // Warm every code path once while enabled (first `Instant::now`, TLS
    // init, ring-buffer `OnceLock` init all happen here).
    counter.inc();
    gauge.set(1);
    histogram.record(42);
    drop(span.start());

    sc_obs::set_enabled(false);
    let before = ALLOCATIONS.load(Ordering::Relaxed);
    for i in 0..10_000u64 {
        counter.add(i);
        gauge.add(1);
        histogram.record(i);
        let mut guard = span.start();
        guard.add_bytes(i);
    }
    let allocated = ALLOCATIONS.load(Ordering::Relaxed) - before;
    sc_obs::set_enabled(true);
    assert_eq!(allocated, 0, "disabled hot path must not allocate");

    // Nothing was recorded while disabled…
    let snap = registry.snapshot();
    assert_eq!(snap.counter("na.fast.ops"), Some(1));
    assert_eq!(snap.gauge("na.fast.depth"), Some(1));
    assert_eq!(snap.histogram("na.fast.ns").unwrap().count, 1);
    assert_eq!(snap.histogram("na.fast.work.duration_ns").unwrap().count, 1);

    // …and recording resumes after re-enabling.
    counter.inc();
    histogram.record(7);
    drop(span.start());
    let snap = registry.snapshot();
    assert_eq!(snap.counter("na.fast.ops"), Some(2));
    assert_eq!(snap.histogram("na.fast.ns").unwrap().count, 2);
    assert_eq!(snap.histogram("na.fast.work.duration_ns").unwrap().count, 2);
}
