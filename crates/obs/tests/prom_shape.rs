//! Shape validation for the Prometheus text exposition: every sample line
//! must parse, every metric family must be announced by exactly one
//! preceding `# TYPE` line of the right kind, and histogram bucket series
//! must be cumulative and end in `le="+Inf"` equal to `_count`. This is
//! what a real scraper's parser enforces; the server's `/metrics` port
//! serves this text verbatim.

use sc_obs::Registry;
use std::collections::HashMap;

fn sample_registry() -> Registry {
    let r = Registry::new();
    r.counter("server.requests").add(42);
    r.counter("nosql.read.point-gets").add(7); // dash must sanitize too
    r.gauge("server.active_sessions").set(3);
    r.gauge("stream.backlog").set(-2); // negative gauges are legal
    let h = r.histogram("server.request.duration_ns");
    for v in [5, 90, 1_500, 1_500_000, 80_000_000] {
        h.record(v);
    }
    r.histogram("dwarf.empty"); // declared but never observed
    r
}

/// One parsed `# TYPE` line.
#[derive(Debug, PartialEq)]
struct TypeLine {
    name: String,
    kind: String,
}

fn parse_type_line(line: &str) -> TypeLine {
    let rest = line.strip_prefix("# TYPE ").expect("well-formed TYPE line");
    let mut parts = rest.split_whitespace();
    let name = parts.next().expect("metric name").to_string();
    let kind = parts.next().expect("metric kind").to_string();
    assert_eq!(parts.next(), None, "trailing junk on TYPE line: {line:?}");
    TypeLine { name, kind }
}

/// Splits a sample line into (series_name, labels, value-parses-as-f64).
fn parse_sample_line(line: &str) -> (String, Option<String>, f64) {
    let (series, value) = line.rsplit_once(' ').expect("sample has a value");
    let value: f64 = value
        .parse()
        .unwrap_or_else(|_| panic!("unparseable sample value in {line:?}"));
    match series.split_once('{') {
        Some((name, labels)) => {
            let labels = labels.strip_suffix('}').expect("closed label set");
            (name.to_string(), Some(labels.to_string()), value)
        }
        None => (series.to_string(), None, value),
    }
}

/// Maps a sample series name back to its family: `x_bucket`/`x_sum`/
/// `x_count` belong to histogram family `x`.
fn family_of(series: &str, types: &HashMap<String, String>) -> Option<String> {
    if types.contains_key(series) {
        return Some(series.to_string());
    }
    for suffix in ["_bucket", "_sum", "_count"] {
        if let Some(base) = series.strip_suffix(suffix) {
            if types.get(base).map(String::as_str) == Some("histogram") {
                return Some(base.to_string());
            }
        }
    }
    None
}

#[test]
fn every_family_has_one_type_line_and_every_sample_parses() {
    let text = sample_registry().snapshot().to_prometheus_text();

    let mut types: HashMap<String, String> = HashMap::new();
    for line in text.lines().filter(|l| l.starts_with("# TYPE ")) {
        let t = parse_type_line(line);
        assert!(
            matches!(t.kind.as_str(), "counter" | "gauge" | "histogram"),
            "unknown metric kind {:?}",
            t.kind
        );
        assert!(
            types.insert(t.name.clone(), t.kind).is_none(),
            "duplicate # TYPE for {}",
            t.name
        );
    }
    assert_eq!(
        types.get("server_requests").map(String::as_str),
        Some("counter")
    );
    assert_eq!(
        types.get("server_active_sessions").map(String::as_str),
        Some("gauge")
    );
    assert_eq!(
        types.get("server_request_duration_ns").map(String::as_str),
        Some("histogram")
    );

    let mut samples_per_family: HashMap<String, usize> = HashMap::new();
    for line in text.lines() {
        if line.is_empty() || line.starts_with('#') {
            continue;
        }
        let (series, labels, _value) = parse_sample_line(line);
        // Names must already be sanitized — a scraper rejects dots/dashes.
        assert!(
            series
                .chars()
                .all(|c| c.is_ascii_alphanumeric() || c == '_'),
            "unsanitized series name {series:?}"
        );
        let family = family_of(&series, &types)
            .unwrap_or_else(|| panic!("sample {series:?} has no # TYPE announcement"));
        if series.ends_with("_bucket") && types[&family] == "histogram" {
            let labels = labels.expect("bucket series carries le label");
            assert!(labels.starts_with("le=\""), "bucket labels: {labels:?}");
        } else if series == "build_info" {
            let labels = labels.expect("build_info carries a version label");
            assert!(
                labels.starts_with("version=\""),
                "build_info labels: {labels:?}"
            );
        } else {
            assert_eq!(labels, None, "unexpected labels on {series:?}");
        }
        *samples_per_family.entry(family).or_insert(0) += 1;
    }
    // Every announced family emitted at least one sample (counters/gauges
    // one, histograms bucket+sum+count).
    for (family, kind) in &types {
        let n = samples_per_family.get(family).copied().unwrap_or(0);
        match kind.as_str() {
            "counter" | "gauge" => assert_eq!(n, 1, "{family}: expected 1 sample"),
            _ => assert!(
                n >= 3,
                "{family}: histogram needs bucket+sum+count, got {n}"
            ),
        }
    }
}

#[test]
fn every_type_line_is_paired_with_a_help_line() {
    let r = sample_registry();
    r.describe("server.requests", "statements accepted by the server");
    let text = r.snapshot().to_prometheus_text();

    // Each # TYPE is immediately preceded by a # HELP for the same family.
    let lines: Vec<&str> = text.lines().collect();
    let mut families = 0usize;
    for (i, line) in lines.iter().enumerate() {
        let Some(rest) = line.strip_prefix("# TYPE ") else {
            continue;
        };
        families += 1;
        let name = rest.split_whitespace().next().expect("family name");
        let prev = lines.get(i.wrapping_sub(1)).copied().unwrap_or("");
        let help_prefix = format!("# HELP {name} ");
        assert!(
            prev.starts_with(&help_prefix),
            "family {name}: # TYPE not preceded by its # HELP (got {prev:?})"
        );
        assert!(
            prev.len() > help_prefix.len(),
            "family {name}: empty # HELP text"
        );
    }
    assert!(families >= 7, "sample registry shrank? {families} families");

    // Registered descriptions win; undescribed families use the fallback.
    assert!(text.contains("# HELP server_requests statements accepted by the server"));
    assert!(text.contains("# HELP stream_backlog smartcube series stream.backlog"));

    // The synthetic build_info gauge leads the page with the crate version.
    assert!(text.starts_with("# HELP build_info "));
    assert!(text.contains(&format!(
        "\nbuild_info{{version=\"{}\"}} 1\n",
        env!("CARGO_PKG_VERSION")
    )));
}

#[test]
fn histogram_buckets_are_cumulative_and_end_at_inf_equal_to_count() {
    let text = sample_registry().snapshot().to_prometheus_text();

    for family in ["server_request_duration_ns", "dwarf_empty"] {
        let buckets: Vec<(String, u64)> = text
            .lines()
            .filter_map(|l| l.strip_prefix(&format!("{family}_bucket{{le=\"")))
            .map(|rest| {
                let (bound, value) = rest.split_once("\"} ").expect("bucket line shape");
                (bound.to_string(), value.parse().expect("bucket count"))
            })
            .collect();
        assert!(!buckets.is_empty(), "{family}: no bucket series");
        assert_eq!(
            buckets.last().unwrap().0,
            "+Inf",
            "{family}: bucket series must end at +Inf"
        );
        // Cumulative: counts never decrease, finite bounds strictly increase.
        let mut prev_count = 0u64;
        let mut prev_bound = f64::NEG_INFINITY;
        for (bound, count) in &buckets {
            assert!(
                *count >= prev_count,
                "{family}: bucket le={bound} went backwards ({count} < {prev_count})"
            );
            prev_count = *count;
            if bound != "+Inf" {
                let b: f64 = bound.parse().expect("finite bucket bound");
                assert!(b > prev_bound, "{family}: bounds not increasing at {bound}");
                prev_bound = b;
            }
        }
        let count: u64 = text
            .lines()
            .find_map(|l| l.strip_prefix(&format!("{family}_count ")))
            .expect("count series")
            .parse()
            .expect("count value");
        assert_eq!(
            buckets.last().unwrap().1,
            count,
            "{family}: +Inf bucket must equal _count"
        );
        assert!(
            text.lines()
                .any(|l| l.starts_with(&format!("{family}_sum "))),
            "{family}: missing _sum series"
        );
    }
}
