//! Reproduction of the paper's Figure 1 → Figure 2 worked example.
//!
//! Figure 1 of Scriney & Roantree shows a small list of input tuples over
//! geography dimensions with a station-level measure ("Fenian St", measure
//! 3, countries Ireland and France); Figure 2 shows the DWARF those tuples
//! produce, with ALL cells sharing single-child sub-dwarfs. These tests pin
//! the structural properties that the figure illustrates.

use sc_dwarf::{CubeSchema, Dwarf, Selection, TupleSet};

fn figure1_cube() -> Dwarf {
    let schema = CubeSchema::new(["country", "city", "station"], "bikes");
    let mut ts = TupleSet::new(&schema);
    ts.push(["Ireland", "Dublin", "Fenian St"], 3);
    ts.push(["Ireland", "Dublin", "Smithfield"], 5);
    ts.push(["Ireland", "Cork", "Patrick St"], 2);
    ts.push(["France", "Paris", "Bastille"], 7);
    Dwarf::build(schema, ts)
}

#[test]
fn root_node_holds_the_top_dimension_cells() {
    let cube = figure1_cube();
    let root = cube.node(cube.root());
    let names: Vec<&str> = root
        .cells
        .iter()
        .map(|c| cube.interner(0).resolve(c.key))
        .collect();
    assert_eq!(names, ["France", "Ireland"]);
}

#[test]
fn leaf_cells_carry_fact_measures() {
    let cube = figure1_cube();
    assert_eq!(
        cube.point(&[
            Selection::value("Ireland"),
            Selection::value("Dublin"),
            Selection::value("Fenian St"),
        ]),
        Some(3),
        "the 'Fenian St' leaf cell of Figures 1-3 holds measure 3"
    );
}

#[test]
fn all_cells_point_to_aggregate_subdwarfs() {
    let cube = figure1_cube();
    // ALL over stations for (Ireland, Dublin) = 3 + 5.
    assert_eq!(
        cube.point(&[
            Selection::value("Ireland"),
            Selection::value("Dublin"),
            Selection::All,
        ]),
        Some(8)
    );
    // ALL over cities and stations for Ireland.
    assert_eq!(
        cube.point(&[Selection::value("Ireland"), Selection::All, Selection::All]),
        Some(10)
    );
    // Grand total.
    assert_eq!(
        cube.point(&[Selection::All, Selection::All, Selection::All]),
        Some(17)
    );
}

#[test]
fn single_child_all_cells_share_structure() {
    // France -> Paris -> Bastille is a single chain; Figure 2 draws the ALL
    // cells at those levels pointing at the *same* nodes as the value cells.
    let cube = figure1_cube();
    let france = cube.interner(0).get("France").unwrap();
    let root = cube.node(cube.root());
    let france_node = cube.node(root.find(france).unwrap().child);
    assert_eq!(france_node.cells.len(), 1);
    assert_eq!(france_node.node.all_child, france_node.cells[0].child);
}

#[test]
fn multi_child_all_cells_materialize_merged_nodes() {
    // Ireland has two cities, so its ALL cell points at a *new* node that
    // merges Dublin's and Cork's station sub-dwarfs.
    let cube = figure1_cube();
    let ireland = cube.interner(0).get("Ireland").unwrap();
    let root = cube.node(cube.root());
    let ireland_node = cube.node(root.find(ireland).unwrap().child);
    assert_eq!(ireland_node.cells.len(), 2);
    let all_node = cube.node(ireland_node.node.all_child);
    assert!(
        ireland_node.cells.iter().all(|c| c.child != all_node.id),
        "ALL child must be a distinct merged node"
    );
    // The merged node has all three Irish stations.
    let stations: Vec<&str> = all_node
        .cells
        .iter()
        .map(|c| cube.interner(2).resolve(c.key))
        .collect();
    assert_eq!(stations, ["Fenian St", "Patrick St", "Smithfield"]);
}

#[test]
fn node_and_cell_counts_reflect_coalescing() {
    let cube = figure1_cube();
    let stats = cube.stats();
    // A fully materialized cube of these 4 tuples would need far more nodes;
    // coalescing keeps the structure tight. Exact counts pin the algorithm.
    assert_eq!(stats.tuple_count, 4);
    assert_eq!(stats.nodes_per_level[0], 1, "one root");
    assert!(stats.node_count <= 10, "got {}", stats.node_count);
    assert_eq!(
        stats.nodes_per_level.iter().sum::<usize>(),
        stats.node_count
    );
}

#[test]
fn dot_rendering_shows_shared_edges() {
    let cube = figure1_cube();
    let dot = cube.to_dot();
    // Fig 2's visual signature: some node receives more than one inbound
    // edge (structure sharing).
    let mut inbound: std::collections::HashMap<&str, usize> = std::collections::HashMap::new();
    for line in dot.lines() {
        if let Some(arrow) = line.find("-> ") {
            let target = line[arrow + 3..].trim_end_matches([';', ' ']);
            let target = target.split_whitespace().next().unwrap();
            *inbound.entry(target).or_insert(0) += 1;
        }
    }
    assert!(
        inbound.values().any(|&n| n > 1),
        "expected at least one shared node in {dot}"
    );
}
