//! Property tests: the DWARF must agree with a brute-force GROUP BY oracle
//! on every query, for arbitrary inputs.
//!
//! These are deterministic randomized sweeps (seeded xorshift — the build is
//! offline, so no proptest): each test draws a fixed number of random row
//! sets from a tiny value alphabet and checks the cube against the oracle.

use sc_dwarf::{AggFn, CubeSchema, Dwarf, RangeSel, Selection, TupleSet};
use sc_encoding::Rng;
use std::collections::BTreeMap;

/// A raw fact row for the generators.
type Row = (Vec<String>, i64);

/// Random rows over the alphabet {a, b, c, dd, e} — small enough that
/// duplicates, misses and every group-by all get exercised.
fn random_rows(rng: &mut Rng, dims: usize, max_rows: usize) -> Vec<Row> {
    const VALUES: [&str; 5] = ["a", "b", "c", "dd", "e"];
    let n = rng.gen_range(max_rows as u64) as usize;
    (0..n)
        .map(|_| {
            let key: Vec<String> = (0..dims)
                .map(|_| VALUES[rng.gen_range(VALUES.len() as u64) as usize].to_string())
                .collect();
            (key, rng.gen_between(-100, 99))
        })
        .collect()
}

fn build(schema: &CubeSchema, rows: &[Row]) -> Dwarf {
    let mut ts = TupleSet::new(schema);
    for (key, m) in rows {
        ts.push(key.iter().map(String::as_str), *m);
    }
    Dwarf::build(schema.clone(), ts)
}

/// Brute-force oracle: aggregate of rows matching a point selection.
fn oracle_point(agg: AggFn, rows: &[Row], sel: &[Selection]) -> Option<i64> {
    let matching = rows.iter().filter(|(key, _)| {
        key.iter().zip(sel).all(|(v, s)| match s {
            Selection::All => true,
            Selection::Value(want) => v == want,
        })
    });
    agg.combine_all(matching.map(|(_, m)| agg.of_tuple(*m)))
}

/// Brute-force oracle for range selections.
fn oracle_range(agg: AggFn, rows: &[Row], sel: &[RangeSel]) -> Option<i64> {
    let matching = rows.iter().filter(|(key, _)| {
        key.iter().zip(sel).all(|(v, s)| match s {
            RangeSel::All => true,
            RangeSel::Value(want) => v == want,
            RangeSel::Between(lo, hi) => v.as_str() >= lo.as_str() && v.as_str() <= hi.as_str(),
        })
    });
    agg.combine_all(matching.map(|(_, m)| agg.of_tuple(*m)))
}

fn all_point_selections(dims: usize) -> Vec<Vec<Selection>> {
    // Every combination of {All, a, dd} per dimension — covers hits, misses
    // and every group-by of the 2^d lattice for these values.
    let choices = [
        Selection::All,
        Selection::value("a"),
        Selection::value("dd"),
    ];
    let mut out: Vec<Vec<Selection>> = vec![vec![]];
    for _ in 0..dims {
        out = out
            .into_iter()
            .flat_map(|prefix| {
                choices.iter().map(move |c| {
                    let mut p = prefix.clone();
                    p.push(c.clone());
                    p
                })
            })
            .collect();
    }
    out
}

#[test]
fn point_queries_match_oracle_3d() {
    let mut rng = Rng::new(0xD01);
    for _ in 0..64 {
        let rows = random_rows(&mut rng, 3, 40);
        let schema = CubeSchema::new(["x", "y", "z"], "m");
        let cube = build(&schema, &rows);
        cube.validate();
        for sel in all_point_selections(3) {
            assert_eq!(
                cube.point(&sel),
                oracle_point(AggFn::Sum, &rows, &sel),
                "selection {sel:?} rows {rows:?}"
            );
        }
    }
}

#[test]
fn point_queries_match_oracle_all_aggs() {
    let mut rng = Rng::new(0xD02);
    for _ in 0..64 {
        let rows = random_rows(&mut rng, 2, 30);
        for agg in [AggFn::Sum, AggFn::Count, AggFn::Min, AggFn::Max] {
            let schema = CubeSchema::new(["x", "y"], "m").with_agg(agg);
            let cube = build(&schema, &rows);
            cube.validate();
            for sel in all_point_selections(2) {
                assert_eq!(
                    cube.point(&sel),
                    oracle_point(agg, &rows, &sel),
                    "agg {agg:?} selection {sel:?} rows {rows:?}"
                );
            }
        }
    }
}

#[test]
fn range_queries_match_oracle() {
    let mut rng = Rng::new(0xD03);
    for _ in 0..64 {
        let rows = random_rows(&mut rng, 3, 40);
        let schema = CubeSchema::new(["x", "y", "z"], "m");
        let cube = build(&schema, &rows);
        let ranges = [
            RangeSel::All,
            RangeSel::value("b"),
            RangeSel::between("a", "c"),
            RangeSel::between("b", "zz"),
            RangeSel::between("z", "a"), // empty
        ];
        for r0 in &ranges {
            for r1 in &ranges {
                for r2 in &ranges {
                    let sel = vec![r0.clone(), r1.clone(), r2.clone()];
                    assert_eq!(
                        cube.range(&sel),
                        oracle_range(AggFn::Sum, &rows, &sel),
                        "selection {sel:?} rows {rows:?}"
                    );
                }
            }
        }
    }
}

#[test]
fn extraction_equals_groupby_of_input() {
    let mut rng = Rng::new(0xD04);
    for _ in 0..64 {
        let rows = random_rows(&mut rng, 3, 40);
        let schema = CubeSchema::new(["x", "y", "z"], "m");
        let cube = build(&schema, &rows);
        // Oracle: SUM group-by on the full key.
        let mut expect: BTreeMap<Vec<String>, i64> = BTreeMap::new();
        for (key, m) in &rows {
            *expect.entry(key.clone()).or_insert(0) += m;
        }
        let got: Vec<(Vec<String>, i64)> = cube.extract_tuples();
        let want: Vec<(Vec<String>, i64)> = expect.into_iter().collect();
        assert_eq!(got, want);
    }
}

#[test]
fn merge_equals_build_of_concatenation() {
    let mut rng = Rng::new(0xD05);
    for _ in 0..64 {
        let rows_a = random_rows(&mut rng, 2, 25);
        let rows_b = random_rows(&mut rng, 2, 25);
        let schema = CubeSchema::new(["x", "y"], "m");
        let a = build(&schema, &rows_a);
        let b = build(&schema, &rows_b);
        let merged = a.merge(&b);
        let mut both = rows_a.clone();
        both.extend(rows_b.clone());
        let direct = build(&schema, &both);
        assert_eq!(merged.extract_tuples(), direct.extract_tuples());
        merged.validate();
    }
}

#[test]
fn slice_rows_match_oracle() {
    let mut rng = Rng::new(0xD06);
    for _ in 0..64 {
        let rows = random_rows(&mut rng, 2, 30);
        let schema = CubeSchema::new(["x", "y"], "m");
        let cube = build(&schema, &rows);
        let sel = vec![RangeSel::between("a", "c"), RangeSel::All];
        let got = cube.slice(&sel);
        let mut expect: BTreeMap<Vec<String>, i64> = BTreeMap::new();
        for (key, m) in &rows {
            if key[0].as_str() >= "a" && key[0].as_str() <= "c" {
                *expect.entry(key.clone()).or_insert(0) += m;
            }
        }
        let want: Vec<(Vec<String>, i64)> = expect.into_iter().collect();
        assert_eq!(got, want);
    }
}

#[test]
fn group_by_matches_oracle() {
    let mut rng = Rng::new(0xD07);
    for _ in 0..64 {
        let rows = random_rows(&mut rng, 3, 40);
        let schema = CubeSchema::new(["x", "y", "z"], "m");
        let cube = build(&schema, &rows);
        // Every subset of dimensions.
        for mask in 0u8..8 {
            let dims: Vec<&str> = ["x", "y", "z"]
                .iter()
                .enumerate()
                .filter(|(i, _)| mask & (1 << i) != 0)
                .map(|(_, d)| *d)
                .collect();
            let got = cube.group_by(&dims).unwrap();
            // Oracle: BTreeMap group-by over the raw rows.
            let mut expect: BTreeMap<Vec<String>, i64> = BTreeMap::new();
            for (key, m) in &rows {
                let group: Vec<String> = key
                    .iter()
                    .enumerate()
                    .filter(|(i, _)| mask & (1 << i) != 0)
                    .map(|(_, v)| v.clone())
                    .collect();
                *expect.entry(group).or_insert(0) += m;
            }
            let want: Vec<(Vec<String>, i64)> = expect.into_iter().collect();
            assert_eq!(got, want, "mask {mask:03b}");
        }
    }
}

#[test]
fn subcube_answers_like_parent_within_region() {
    let mut rng = Rng::new(0xD08);
    for _ in 0..64 {
        let rows = random_rows(&mut rng, 2, 30);
        let schema = CubeSchema::new(["x", "y"], "m");
        let cube = build(&schema, &rows);
        let region = vec![RangeSel::value("a"), RangeSel::All];
        let sub = cube.subcube(&region);
        sub.validate();
        for s1 in [Selection::All, Selection::value("a"), Selection::value("b")] {
            let sel = vec![Selection::value("a"), s1.clone()];
            assert_eq!(cube.point(&sel), sub.point(&sel), "sel {s1:?}");
        }
    }
}
