//! Per-dimension string interning.
//!
//! Dimension values are interned to dense `u32` ids so tuples sort and
//! compare as integers. After all input tuples are collected the ids are
//! **re-ranked to lexicographic order** (see [`Interner::sorted_remap`]), so
//! `ValueId` order equals string order and range queries over ids are
//! meaningful.

use sc_encoding::FnvHashMap;

/// An interned dimension value (dense, 0-based).
pub type ValueId = u32;

/// String interner for one dimension.
#[derive(Debug, Clone, Default)]
pub struct Interner {
    values: Vec<String>,
    index: FnvHashMap<String, ValueId>,
}

impl Interner {
    /// Creates an empty interner.
    pub fn new() -> Self {
        Self::default()
    }

    /// Interns `value`, returning its id (existing or fresh).
    pub fn intern(&mut self, value: &str) -> ValueId {
        if let Some(&id) = self.index.get(value) {
            return id;
        }
        let id = u32::try_from(self.values.len()).expect("more than u32::MAX distinct values");
        self.values.push(value.to_string());
        self.index.insert(value.to_string(), id);
        id
    }

    /// Looks up an existing value without interning.
    pub fn get(&self, value: &str) -> Option<ValueId> {
        self.index.get(value).copied()
    }

    /// The string for an id.
    ///
    /// Panics on an out-of-range id (ids only come from this interner).
    pub fn resolve(&self, id: ValueId) -> &str {
        &self.values[id as usize]
    }

    /// Number of distinct values (the dimension's cardinality).
    pub fn len(&self) -> usize {
        self.values.len()
    }

    /// Whether no values have been interned.
    pub fn is_empty(&self) -> bool {
        self.values.is_empty()
    }

    /// Iterates `(id, value)` pairs in id order.
    pub fn iter(&self) -> impl Iterator<Item = (ValueId, &str)> {
        self.values
            .iter()
            .enumerate()
            .map(|(i, v)| (i as ValueId, v.as_str()))
    }

    /// Re-ranks ids to lexicographic order.
    ///
    /// Returns `remap` where `remap[old_id] = new_id`; afterwards
    /// `resolve(a) < resolve(b)` iff `a < b`. Callers must rewrite any ids
    /// they have stored (the tuple set does this before sorting).
    pub fn sorted_remap(&mut self) -> Vec<ValueId> {
        let mut order: Vec<u32> = (0..self.values.len() as u32).collect();
        order.sort_by(|&a, &b| self.values[a as usize].cmp(&self.values[b as usize]));
        let mut remap = vec![0u32; self.values.len()];
        for (new_id, &old_id) in order.iter().enumerate() {
            remap[old_id as usize] = new_id as u32;
        }
        let mut sorted_values = vec![String::new(); self.values.len()];
        for (old_id, value) in self.values.drain(..).enumerate() {
            sorted_values[remap[old_id] as usize] = value;
        }
        self.values = sorted_values;
        self.index.clear();
        for (id, v) in self.values.iter().enumerate() {
            self.index.insert(v.clone(), id as u32);
        }
        remap
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sc_encoding::Rng;

    #[test]
    fn intern_dedups() {
        let mut i = Interner::new();
        let a = i.intern("Dublin");
        let b = i.intern("Paris");
        assert_ne!(a, b);
        assert_eq!(i.intern("Dublin"), a);
        assert_eq!(i.len(), 2);
        assert_eq!(i.resolve(b), "Paris");
        assert_eq!(i.get("Paris"), Some(b));
        assert_eq!(i.get("Berlin"), None);
    }

    #[test]
    fn sorted_remap_orders_ids_lexicographically() {
        let mut i = Interner::new();
        let zebra = i.intern("zebra");
        let apple = i.intern("apple");
        let mango = i.intern("mango");
        let remap = i.sorted_remap();
        assert_eq!(remap[zebra as usize], 2);
        assert_eq!(remap[apple as usize], 0);
        assert_eq!(remap[mango as usize], 1);
        assert_eq!(i.resolve(0), "apple");
        assert_eq!(i.resolve(1), "mango");
        assert_eq!(i.resolve(2), "zebra");
        assert_eq!(i.get("zebra"), Some(2));
    }

    #[test]
    fn iter_follows_id_order() {
        let mut i = Interner::new();
        i.intern("b");
        i.intern("a");
        i.sorted_remap();
        let pairs: Vec<_> = i.iter().collect();
        assert_eq!(pairs, vec![(0, "a"), (1, "b")]);
    }

    #[test]
    fn remap_preserves_strings_and_sortedness() {
        // Deterministic randomized sweep (seeded xorshift, no proptest — the
        // build is offline): random lowercase value sets of varying size.
        let mut rng = Rng::new(0x1234);
        for case in 0..256 {
            let n = 1 + rng.gen_range(31) as usize;
            let mut values = std::collections::HashSet::new();
            for _ in 0..n {
                let len = 1 + rng.gen_range(8) as usize;
                let v: String = (0..len)
                    .map(|_| (b'a' + rng.gen_range(26) as u8) as char)
                    .collect();
                values.insert(v);
            }
            let mut i = Interner::new();
            let olds: Vec<(String, ValueId)> =
                values.iter().map(|v| (v.clone(), i.intern(v))).collect();
            let remap = i.sorted_remap();
            // Every old id maps to the same string under the new id.
            for (s, old) in &olds {
                assert_eq!(i.resolve(remap[*old as usize]), s.as_str(), "case {case}");
            }
            // Ids are lexicographically ordered.
            for id in 1..i.len() as u32 {
                assert!(i.resolve(id - 1) < i.resolve(id), "case {case}");
            }
        }
    }
}
