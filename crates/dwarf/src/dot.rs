//! Graphviz rendering of small cubes (the paper's Figure 2).

use crate::cube::{Dwarf, NONE_NODE};
use std::fmt::Write as _;

impl Dwarf {
    /// Renders the cube as Graphviz `dot` text.
    ///
    /// Each node is drawn as a record of its cells plus a trailing `ALL`
    /// port; value-cell edges are solid, ALL edges dashed. Shared sub-dwarfs
    /// (suffix coalescing) are visible as nodes with several inbound edges —
    /// exactly how the paper's Figure 2 depicts them. Intended for small
    /// demonstration cubes; rendering a million-node cube is on the caller.
    pub fn to_dot(&self) -> String {
        let mut out = String::new();
        out.push_str("digraph dwarf {\n");
        out.push_str("  rankdir=TB;\n  node [shape=record, fontname=\"monospace\"];\n");
        let d = self.num_dims();
        for id in self.node_ids() {
            let n = self.node(id);
            let level = n.node.level as usize;
            let leaf = level == d - 1;
            let mut label = String::new();
            for (i, c) in n.cells.iter().enumerate() {
                if i > 0 {
                    label.push('|');
                }
                let key = escape(self.interner(level).resolve(c.key));
                if leaf {
                    let _ = write!(label, "{{{key}|{}}}", c.measure);
                } else {
                    let _ = write!(label, "<c{i}> {key}");
                }
            }
            if !n.cells.is_empty() {
                if leaf {
                    let _ = write!(label, "|{{ALL|{}}}", n.node.total);
                } else {
                    label.push_str("|<all> ALL");
                }
            }
            let _ = writeln!(out, "  n{id} [label=\"{label}\"];");
            if !leaf {
                for (i, c) in n.cells.iter().enumerate() {
                    if c.child != NONE_NODE {
                        let _ = writeln!(out, "  n{id}:c{i} -> n{};", c.child);
                    }
                }
                if n.node.all_child != NONE_NODE {
                    let _ = writeln!(out, "  n{id}:all -> n{} [style=dashed];", n.node.all_child);
                }
            }
        }
        out.push_str("}\n");
        out
    }
}

fn escape(s: &str) -> String {
    s.replace('\\', "\\\\")
        .replace('"', "\\\"")
        .replace('|', "\\|")
        .replace('{', "\\{")
        .replace('}', "\\}")
        .replace('<', "\\<")
        .replace('>', "\\>")
}

#[cfg(test)]
mod tests {
    use crate::{CubeSchema, Dwarf, TupleSet};

    #[test]
    fn dot_output_mentions_every_node_and_all_edges() {
        let schema = CubeSchema::new(["country", "station"], "bikes");
        let mut ts = TupleSet::new(&schema);
        ts.push(["Ireland", "Fenian St"], 3);
        ts.push(["France", "Bastille"], 2);
        let cube = Dwarf::build(schema, ts);
        let dot = cube.to_dot();
        assert!(dot.starts_with("digraph dwarf {"));
        for id in cube.node_ids() {
            assert!(dot.contains(&format!("n{id} [label=")), "missing node {id}");
        }
        assert!(dot.contains("Fenian St"));
        assert!(dot.contains("style=dashed"), "ALL edges must be dashed");
        assert!(dot.trim_end().ends_with('}'));
    }

    #[test]
    fn special_characters_are_escaped() {
        let schema = CubeSchema::new(["k"], "m");
        let mut ts = TupleSet::new(&schema);
        ts.push(["a|b{c}\"<d>"], 1);
        let cube = Dwarf::build(schema, ts);
        let dot = cube.to_dot();
        assert!(dot.contains("a\\|b\\{c\\}\\\"\\<d\\>"));
    }
}
