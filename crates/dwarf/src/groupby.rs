//! GROUP BY enumeration: materialized lattice → result table.
//!
//! A DWARF answers a `GROUP BY dims ⊆ D` without recomputation: descend
//! value cells at grouped levels and ALL cells at aggregated-out levels.
//! This module enumerates the full result table for any dimension subset —
//! the operation OLAP front-ends issue constantly.

use crate::cube::{Dwarf, NodeId};
use crate::intern::ValueId;

impl Dwarf {
    /// Enumerates `GROUP BY` over the named dimensions, returning
    /// `(group key, aggregate)` rows sorted by group key.
    ///
    /// Dimension names may be given in any order; keys come back in cube
    /// level order. Unknown names return `None`. An empty list yields the
    /// grand total as a single row with an empty key.
    pub fn group_by<S: AsRef<str>>(&self, dims: &[S]) -> Option<Vec<(Vec<String>, i64)>> {
        let mut mask = vec![false; self.num_dims()];
        for d in dims {
            let idx = self.schema().dimension_index(d.as_ref())?;
            mask[idx] = true;
        }
        let mut out = Vec::new();
        if self.is_empty() {
            return Some(out);
        }
        let mut key: Vec<ValueId> = Vec::new();
        self.group_by_rec(self.root(), 0, &mask, &mut key, &mut out);
        Some(out)
    }

    fn group_by_rec(
        &self,
        node_id: NodeId,
        level: usize,
        mask: &[bool],
        key: &mut Vec<ValueId>,
        out: &mut Vec<(Vec<String>, i64)>,
    ) {
        let node = self.node(node_id);
        let leaf = level == self.num_dims() - 1;
        let grouped = mask[level];
        if grouped {
            for cell in node.cells {
                key.push(cell.key);
                if leaf || mask[level + 1..].iter().all(|g| !g) {
                    // Every remaining level is aggregated out: the cell's
                    // measure IS the group's aggregate (child totals are
                    // cached on cells).
                    out.push((self.render_key(mask, key), cell.measure));
                } else {
                    self.group_by_rec(cell.child, level + 1, mask, key, out);
                }
                key.pop();
            }
        } else if leaf {
            // Fully aggregated leaf: node total closes the group.
            out.push((self.render_key(mask, key), node.node.total));
        } else {
            self.group_by_rec(node.node.all_child, level + 1, mask, key, out);
        }
    }

    fn render_key(&self, mask: &[bool], key: &[ValueId]) -> Vec<String> {
        let mut out = Vec::with_capacity(key.len());
        let mut ki = 0;
        for (dim, &grouped) in mask.iter().enumerate() {
            if grouped && ki < key.len() {
                out.push(self.interner(dim).resolve(key[ki]).to_string());
                ki += 1;
            }
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use crate::{CubeSchema, Dwarf, TupleSet};
    use std::collections::BTreeMap;

    fn cube() -> (Dwarf, Vec<(Vec<String>, i64)>) {
        let schema = CubeSchema::new(["day", "area", "station"], "hires");
        let rows = vec![
            (vec!["mon", "D2", "a"], 1),
            (vec!["mon", "D2", "b"], 2),
            (vec!["mon", "D7", "c"], 4),
            (vec!["tue", "D2", "a"], 8),
            (vec!["tue", "D7", "c"], 16),
            (vec!["wed", "D7", "d"], 32),
        ];
        let mut ts = TupleSet::new(&schema);
        for (k, m) in &rows {
            ts.push(k.iter().copied(), *m);
        }
        let owned = rows
            .into_iter()
            .map(|(k, m)| (k.into_iter().map(str::to_string).collect(), m))
            .collect();
        (Dwarf::build(schema, ts), owned)
    }

    fn oracle(rows: &[(Vec<String>, i64)], dims: &[usize]) -> Vec<(Vec<String>, i64)> {
        let mut acc: BTreeMap<Vec<String>, i64> = BTreeMap::new();
        for (key, m) in rows {
            let group: Vec<String> = dims.iter().map(|&d| key[d].clone()).collect();
            *acc.entry(group).or_insert(0) += m;
        }
        acc.into_iter().collect()
    }

    #[test]
    fn group_by_each_single_dimension() {
        let (cube, rows) = cube();
        assert_eq!(cube.group_by(&["day"]).unwrap(), oracle(&rows, &[0]));
        assert_eq!(cube.group_by(&["area"]).unwrap(), oracle(&rows, &[1]));
        assert_eq!(cube.group_by(&["station"]).unwrap(), oracle(&rows, &[2]));
    }

    #[test]
    fn group_by_pairs_and_full() {
        let (cube, rows) = cube();
        assert_eq!(
            cube.group_by(&["day", "area"]).unwrap(),
            oracle(&rows, &[0, 1])
        );
        assert_eq!(
            cube.group_by(&["day", "station"]).unwrap(),
            oracle(&rows, &[0, 2])
        );
        assert_eq!(
            cube.group_by(&["area", "station"]).unwrap(),
            oracle(&rows, &[1, 2])
        );
        assert_eq!(
            cube.group_by(&["day", "area", "station"]).unwrap(),
            oracle(&rows, &[0, 1, 2])
        );
    }

    #[test]
    fn dimension_order_in_args_is_irrelevant() {
        let (cube, _) = cube();
        assert_eq!(
            cube.group_by(&["area", "day"]),
            cube.group_by(&["day", "area"])
        );
    }

    #[test]
    fn empty_subset_is_grand_total() {
        let (cube, rows) = cube();
        let total: i64 = rows.iter().map(|(_, m)| m).sum();
        assert_eq!(cube.group_by::<&str>(&[]).unwrap(), vec![(vec![], total)]);
    }

    #[test]
    fn unknown_dimension_is_none() {
        let (cube, _) = cube();
        assert!(cube.group_by(&["bogus"]).is_none());
    }

    #[test]
    fn empty_cube_yields_no_groups() {
        let schema = CubeSchema::new(["a"], "m");
        let cube = Dwarf::build(schema.clone(), TupleSet::new(&schema));
        assert_eq!(cube.group_by(&["a"]).unwrap(), vec![]);
    }
}
