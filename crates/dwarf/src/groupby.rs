//! GROUP BY enumeration: materialized lattice → result table.
//!
//! A DWARF answers a `GROUP BY dims ⊆ D` without recomputation: descend
//! value cells at grouped levels and ALL cells at aggregated-out levels.
//! This module enumerates the full result table for any dimension subset —
//! the operation OLAP front-ends issue constantly. The walk itself is
//! [`crate::source::group_by_over`], shared with the store-backed path.

use crate::cube::Dwarf;
use crate::source::{self, ArenaSource};

impl Dwarf {
    /// Enumerates `GROUP BY` over the named dimensions, returning
    /// `(group key, aggregate)` rows sorted by group key.
    ///
    /// Dimension names may be given in any order; keys come back in cube
    /// level order. Unknown names return `None`. An empty list yields the
    /// grand total as a single row with an empty key.
    pub fn group_by<S: AsRef<str>>(&self, dims: &[S]) -> Option<Vec<(Vec<String>, i64)>> {
        let mut mask = vec![false; self.num_dims()];
        for d in dims {
            let idx = self.schema().dimension_index(d.as_ref())?;
            mask[idx] = true;
        }
        Some(source::unwrap_infallible(source::group_by_over(
            &mut ArenaSource::new(self),
            &mask,
        )))
    }
}

#[cfg(test)]
mod tests {
    use crate::{CubeSchema, Dwarf, TupleSet};
    use std::collections::BTreeMap;

    fn cube() -> (Dwarf, Vec<(Vec<String>, i64)>) {
        let schema = CubeSchema::new(["day", "area", "station"], "hires");
        let rows = vec![
            (vec!["mon", "D2", "a"], 1),
            (vec!["mon", "D2", "b"], 2),
            (vec!["mon", "D7", "c"], 4),
            (vec!["tue", "D2", "a"], 8),
            (vec!["tue", "D7", "c"], 16),
            (vec!["wed", "D7", "d"], 32),
        ];
        let mut ts = TupleSet::new(&schema);
        for (k, m) in &rows {
            ts.push(k.iter().copied(), *m);
        }
        let owned = rows
            .into_iter()
            .map(|(k, m)| (k.into_iter().map(str::to_string).collect(), m))
            .collect();
        (Dwarf::build(schema, ts), owned)
    }

    fn oracle(rows: &[(Vec<String>, i64)], dims: &[usize]) -> Vec<(Vec<String>, i64)> {
        let mut acc: BTreeMap<Vec<String>, i64> = BTreeMap::new();
        for (key, m) in rows {
            let group: Vec<String> = dims.iter().map(|&d| key[d].clone()).collect();
            *acc.entry(group).or_insert(0) += m;
        }
        acc.into_iter().collect()
    }

    #[test]
    fn group_by_each_single_dimension() {
        let (cube, rows) = cube();
        assert_eq!(cube.group_by(&["day"]).unwrap(), oracle(&rows, &[0]));
        assert_eq!(cube.group_by(&["area"]).unwrap(), oracle(&rows, &[1]));
        assert_eq!(cube.group_by(&["station"]).unwrap(), oracle(&rows, &[2]));
    }

    #[test]
    fn group_by_pairs_and_full() {
        let (cube, rows) = cube();
        assert_eq!(
            cube.group_by(&["day", "area"]).unwrap(),
            oracle(&rows, &[0, 1])
        );
        assert_eq!(
            cube.group_by(&["day", "station"]).unwrap(),
            oracle(&rows, &[0, 2])
        );
        assert_eq!(
            cube.group_by(&["area", "station"]).unwrap(),
            oracle(&rows, &[1, 2])
        );
        assert_eq!(
            cube.group_by(&["day", "area", "station"]).unwrap(),
            oracle(&rows, &[0, 1, 2])
        );
    }

    #[test]
    fn dimension_order_in_args_is_irrelevant() {
        let (cube, _) = cube();
        assert_eq!(
            cube.group_by(&["area", "day"]),
            cube.group_by(&["day", "area"])
        );
    }

    #[test]
    fn empty_subset_is_grand_total() {
        let (cube, rows) = cube();
        let total: i64 = rows.iter().map(|(_, m)| m).sum();
        assert_eq!(cube.group_by::<&str>(&[]).unwrap(), vec![(vec![], total)]);
    }

    #[test]
    fn unknown_dimension_is_none() {
        let (cube, _) = cube();
        assert!(cube.group_by(&["bogus"]).is_none());
    }

    #[test]
    fn empty_cube_yields_no_groups() {
        let schema = CubeSchema::new(["a"], "m");
        let cube = Dwarf::build(schema.clone(), TupleSet::new(&schema));
        assert_eq!(cube.group_by(&["a"]).unwrap(), vec![]);
    }
}
