//! The one-pass DWARF construction algorithm.
//!
//! This follows Sismanis et al.'s SIGMOD 2002 algorithm: scan the sorted
//! fact tuples once, keeping the rightmost root-to-leaf path of *open*
//! nodes. When a tuple no longer shares a prefix with its predecessor, the
//! nodes below the shared prefix are *closed* bottom-up; closing a node
//! computes its ALL cell by `SuffixCoalesce`-ing its cells' sub-dwarfs.
//!
//! `SuffixCoalesce` is where both savings happen:
//!
//! * given a **single** input sub-dwarf it returns it unchanged — the ALL
//!   cell *shares* the existing structure (suffix coalescing), and
//! * given several inputs it k-way merges their cells, recursing per key;
//!   a memo cache collapses repeated coalesces of the same input set.

use crate::cube::{Cell, Dwarf, Node, NodeId, NONE_NODE};
use crate::schema::{AggFn, CubeSchema};
use crate::tuple::TupleSet;
use sc_encoding::FnvHashMap;

/// Construction options; the default is the real DWARF algorithm.
#[derive(Debug, Clone, Copy)]
pub struct BuildOptions {
    /// When `false`, single-source coalesces deep-copy instead of sharing,
    /// yielding a fully materialized (non-shared) cube. Exists for the
    /// ablation benchmark that measures what suffix coalescing saves; never
    /// use it on large inputs.
    pub suffix_coalescing: bool,
}

impl Default for BuildOptions {
    fn default() -> Self {
        Self {
            suffix_coalescing: true,
        }
    }
}

/// Builds a cube with default options.
pub(crate) fn build(schema: CubeSchema, tuples: TupleSet) -> Dwarf {
    build_with_options(schema, tuples, BuildOptions::default())
}

/// Builds a cube with explicit [`BuildOptions`].
pub fn build_with_options(schema: CubeSchema, tuples: TupleSet, options: BuildOptions) -> Dwarf {
    let _span = crate::obs::dwarf().build.start();
    let mut sorted = tuples.into_sorted();
    sorted.check_invariants();
    let interners = sorted.take_interners();
    let d = schema.num_dims();
    let mut b = Builder {
        agg: schema.agg(),
        num_dims: d,
        cells: Vec::new(),
        nodes: Vec::new(),
        cache: FnvHashMap::default(),
        cache_hits: 0,
        options,
    };

    let n = sorted.len();
    let root = if n == 0 {
        // Empty cube: a single cell-less root.
        b.push_node(Vec::new(), NONE_NODE, 0, 0)
    } else {
        let mut open: Vec<Vec<TempCell>> = (0..d).map(|_| Vec::new()).collect();
        for t in 0..n {
            let prefix = if t == 0 {
                0
            } else {
                let p = sorted.common_prefix(t - 1, t);
                debug_assert!(p < d, "duplicates were pre-aggregated");
                // Close the levels whose prefix changed, bottom-up.
                for level in ((p + 1)..d).rev() {
                    let sealed = b.seal(std::mem::take(&mut open[level]), level);
                    let parent_cell = open[level - 1]
                        .last_mut()
                        .expect("parent level has an open cell");
                    parent_cell.child = sealed;
                }
                p
            };
            // Extend the open path with the new tuple's suffix.
            let key = sorted.key(t);
            for (level, slot) in open.iter_mut().enumerate().take(d).skip(prefix) {
                slot.push(TempCell {
                    key: key[level],
                    child: NONE_NODE,
                    measure: if level == d - 1 { sorted.measure(t) } else { 0 },
                });
            }
        }
        // End of input: close everything, bottom-up, then the root.
        for level in (1..d).rev() {
            let sealed = b.seal(std::mem::take(&mut open[level]), level);
            let parent_cell = open[level - 1]
                .last_mut()
                .expect("parent level has an open cell");
            parent_cell.child = sealed;
        }
        b.seal(std::mem::take(&mut open[0]), 0)
    };

    if sc_obs::enabled() {
        let o = crate::obs::dwarf();
        o.nodes.add(b.nodes.len() as u64);
        o.cells.add(b.cells.len() as u64);
        o.tuples.add(n as u64);
        o.coalesce_cache_hits.add(b.cache_hits);
    }
    Dwarf {
        schema,
        interners,
        cells: b.cells,
        nodes: b.nodes,
        root,
        tuple_count: n,
    }
}

/// A cell of a still-open node.
#[derive(Debug, Clone, Copy)]
struct TempCell {
    key: u32,
    child: NodeId,
    measure: i64,
}

struct Builder {
    agg: AggFn,
    num_dims: usize,
    cells: Vec<Cell>,
    nodes: Vec<Node>,
    /// Memo: canonical (sorted, deduped) coalesce inputs -> result node.
    cache: FnvHashMap<Box<[NodeId]>, NodeId>,
    cache_hits: u64,
    options: BuildOptions,
}

impl Builder {
    fn push_node(&mut self, cells: Vec<Cell>, all_child: NodeId, total: i64, level: u8) -> NodeId {
        let cells_start = u32::try_from(self.cells.len()).expect("cell arena overflow");
        let cells_len = cells.len() as u32;
        self.cells.extend(cells);
        let id = u32::try_from(self.nodes.len()).expect("node arena overflow");
        self.nodes.push(Node {
            cells_start,
            cells_len,
            all_child,
            total,
            level,
        });
        id
    }

    fn total_of(&self, id: NodeId) -> i64 {
        self.nodes[id as usize].total
    }

    fn node_cells(&self, id: NodeId) -> &[Cell] {
        let n = &self.nodes[id as usize];
        &self.cells[n.cells_start as usize..(n.cells_start + n.cells_len) as usize]
    }

    /// Closes an open node: computes its ALL cell and commits it to the
    /// arena.
    fn seal(&mut self, open_cells: Vec<TempCell>, level: usize) -> NodeId {
        let leaf = level == self.num_dims - 1;
        debug_assert!(!open_cells.is_empty(), "sealing an empty open node");
        if leaf {
            let total = self
                .agg
                .combine_all(open_cells.iter().map(|c| c.measure))
                .expect("non-empty");
            let cells = open_cells
                .into_iter()
                .map(|c| Cell {
                    key: c.key,
                    child: NONE_NODE,
                    measure: c.measure,
                })
                .collect();
            self.push_node(cells, NONE_NODE, total, level as u8)
        } else {
            let children: Vec<NodeId> = open_cells
                .iter()
                .map(|c| {
                    debug_assert_ne!(c.child, NONE_NODE, "non-leaf open cell unsealed");
                    c.child
                })
                .collect();
            let cells: Vec<Cell> = open_cells
                .into_iter()
                .map(|c| Cell {
                    key: c.key,
                    child: c.child,
                    measure: self.total_of(c.child),
                })
                .collect();
            let all_child = self.suffix_coalesce(&children);
            let total = self.total_of(all_child);
            self.push_node(cells, all_child, total, level as u8)
        }
    }

    /// `SuffixCoalesce`: the sub-dwarf aggregating the union of `inputs`.
    fn suffix_coalesce(&mut self, inputs: &[NodeId]) -> NodeId {
        // Canonicalize so the memo cache hits regardless of input order.
        let mut canon: Vec<NodeId> = inputs.to_vec();
        canon.sort_unstable();
        canon.dedup();
        if canon.len() == 1 {
            return if self.options.suffix_coalescing {
                // Share the existing sub-dwarf: this is suffix coalescing.
                canon[0]
            } else {
                self.deep_copy(canon[0])
            };
        }
        if self.options.suffix_coalescing {
            if let Some(&hit) = self.cache.get(canon.as_slice()) {
                self.cache_hits += 1;
                return hit;
            }
        }
        let level = self.nodes[canon[0] as usize].level;
        debug_assert!(
            canon
                .iter()
                .all(|&id| self.nodes[id as usize].level == level),
            "coalesce inputs at mixed levels"
        );
        let leaf = level as usize == self.num_dims - 1;

        // K-way merge of the inputs' (sorted) cell lists.
        let mut heads: Vec<usize> = vec![0; canon.len()];
        let mut merged: Vec<Cell> = Vec::new();
        let mut merged_children: Vec<NodeId> = Vec::new();
        let mut scratch: Vec<NodeId> = Vec::new();
        loop {
            // Find the smallest pending key across inputs.
            let mut min_key: Option<u32> = None;
            for (i, &id) in canon.iter().enumerate() {
                let cells = self.node_cells(id);
                if let Some(c) = cells.get(heads[i]) {
                    min_key = Some(min_key.map_or(c.key, |m: u32| m.min(c.key)));
                }
            }
            let Some(key) = min_key else { break };
            // Gather every input's cell with that key.
            scratch.clear();
            let mut measure_acc: Option<i64> = None;
            for (i, &id) in canon.iter().enumerate() {
                let cell = {
                    let cells = self.node_cells(id);
                    match cells.get(heads[i]) {
                        Some(c) if c.key == key => *c,
                        _ => continue,
                    }
                };
                heads[i] += 1;
                if leaf {
                    measure_acc = Some(match measure_acc {
                        Some(acc) => self.agg.combine(acc, cell.measure),
                        None => cell.measure,
                    });
                } else {
                    scratch.push(cell.child);
                }
            }
            if leaf {
                merged.push(Cell {
                    key,
                    child: NONE_NODE,
                    measure: measure_acc.expect("at least one match per key"),
                });
            } else {
                let child = self.suffix_coalesce(&scratch.clone());
                merged_children.push(child);
                merged.push(Cell {
                    key,
                    child,
                    measure: self.total_of(child),
                });
            }
        }
        debug_assert!(!merged.is_empty(), "coalesce of non-empty nodes");

        let (all_child, total) = if leaf {
            (
                NONE_NODE,
                self.agg
                    .combine_all(merged.iter().map(|c| c.measure))
                    .expect("non-empty"),
            )
        } else {
            let all = self.suffix_coalesce(&merged_children);
            (all, self.total_of(all))
        };
        let result = self.push_node(merged, all_child, total, level);
        if self.options.suffix_coalescing {
            self.cache.insert(canon.into_boxed_slice(), result);
        }
        result
    }

    /// Recursively duplicates a sub-dwarf (ablation mode only).
    fn deep_copy(&mut self, id: NodeId) -> NodeId {
        let node = self.nodes[id as usize];
        let cells: Vec<Cell> = self.node_cells(id).to_vec();
        let mut copied = Vec::with_capacity(cells.len());
        for c in cells {
            let child = if c.child == NONE_NODE {
                NONE_NODE
            } else {
                self.deep_copy(c.child)
            };
            copied.push(Cell { child, ..c });
        }
        let all_child = if node.all_child == NONE_NODE {
            NONE_NODE
        } else {
            self.deep_copy(node.all_child)
        };
        self.push_node(copied, all_child, node.total, node.level)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::query::Selection;
    use crate::CubeSchema;

    fn schema() -> CubeSchema {
        CubeSchema::new(["country", "city", "station"], "bikes")
    }

    fn paper_like_tuples() -> TupleSet {
        let mut ts = TupleSet::new(&schema());
        ts.push(["Ireland", "Dublin", "Fenian St"], 3);
        ts.push(["Ireland", "Dublin", "Smithfield"], 5);
        ts.push(["Ireland", "Cork", "Patrick St"], 2);
        ts.push(["France", "Paris", "Bastille"], 7);
        ts
    }

    #[test]
    fn single_tuple_cube() {
        let mut ts = TupleSet::new(&schema());
        ts.push(["Ireland", "Dublin", "Fenian St"], 3);
        let cube = Dwarf::build(schema(), ts);
        cube.validate();
        assert_eq!(
            cube.node_count(),
            3,
            "one node per level, all shared by ALL cells"
        );
        assert_eq!(cube.cell_count(), 3);
        assert_eq!(
            cube.point(&[Selection::All, Selection::All, Selection::All]),
            Some(3)
        );
    }

    #[test]
    fn empty_cube() {
        let ts = TupleSet::new(&schema());
        let cube = Dwarf::build(schema(), ts);
        assert!(cube.is_empty());
        assert_eq!(
            cube.point(&[Selection::All, Selection::All, Selection::All]),
            None
        );
    }

    #[test]
    fn suffix_coalescing_shares_single_child_subdwarfs() {
        let cube = Dwarf::build(schema(), paper_like_tuples());
        cube.validate();
        // France has a single city which has a single station: the ALL
        // pointers at those levels must *share* the value cells' children.
        let france = cube.interner(0).get("France").unwrap();
        let root = cube.node(cube.root());
        let france_cell = root.find(france).unwrap();
        let france_node = cube.node(france_cell.child);
        assert_eq!(france_node.cells.len(), 1);
        assert_eq!(
            france_node.node.all_child, france_node.cells[0].child,
            "ALL cell must share the single child's sub-dwarf"
        );
    }

    #[test]
    fn group_by_aggregates_are_correct() {
        let cube = Dwarf::build(schema(), paper_like_tuples());
        let all = Selection::All;
        let v = Selection::value;
        assert_eq!(
            cube.point(&[v("Ireland"), all.clone(), all.clone()]),
            Some(10)
        );
        assert_eq!(
            cube.point(&[v("France"), all.clone(), all.clone()]),
            Some(7)
        );
        assert_eq!(
            cube.point(&[all.clone(), v("Dublin"), all.clone()]),
            Some(8)
        );
        assert_eq!(
            cube.point(&[all.clone(), all.clone(), v("Bastille")]),
            Some(7)
        );
        assert_eq!(
            cube.point(&[all.clone(), all.clone(), all.clone()]),
            Some(17)
        );
        assert_eq!(
            cube.point(&[v("Ireland"), v("Dublin"), v("Fenian St")]),
            Some(3)
        );
        assert_eq!(cube.point(&[v("Ireland"), v("Paris"), all]), None);
    }

    #[test]
    fn ablation_mode_builds_equivalent_but_larger_cube() {
        let shared = Dwarf::build(schema(), paper_like_tuples());
        let copied = build_with_options(
            schema(),
            paper_like_tuples(),
            BuildOptions {
                suffix_coalescing: false,
            },
        );
        copied.validate();
        assert!(
            copied.node_count() > shared.node_count(),
            "disabling suffix coalescing must inflate the structure ({} vs {})",
            copied.node_count(),
            shared.node_count()
        );
        // Same answers either way.
        let all = Selection::All;
        for sel in [
            vec![all.clone(), all.clone(), all.clone()],
            vec![Selection::value("Ireland"), all.clone(), all.clone()],
            vec![all.clone(), Selection::value("Dublin"), all.clone()],
        ] {
            assert_eq!(shared.point(&sel), copied.point(&sel));
        }
    }

    #[test]
    fn one_dimensional_cube() {
        let schema = CubeSchema::new(["station"], "bikes");
        let mut ts = TupleSet::new(&schema);
        ts.push(["a"], 1);
        ts.push(["b"], 2);
        ts.push(["a"], 4);
        let cube = Dwarf::build(schema, ts);
        cube.validate();
        assert_eq!(cube.node_count(), 1);
        assert_eq!(cube.point(&[Selection::value("a")]), Some(5));
        assert_eq!(cube.point(&[Selection::All]), Some(7));
    }

    #[test]
    fn eight_dimensional_cube_matches_paper_shape() {
        // The paper's cubes all have 8 dimensions.
        let dims: Vec<String> = (0..8).map(|i| format!("d{i}")).collect();
        let schema = CubeSchema::new(dims, "m");
        let mut ts = TupleSet::new(&schema);
        for i in 0..200 {
            let row: Vec<String> = (0..8)
                .map(|d| format!("v{}", (i * (d + 3)) % (4 + d)))
                .collect();
            ts.push(row.iter().map(String::as_str), i as i64);
        }
        let cube = Dwarf::build(schema, ts);
        cube.validate();
        assert_eq!(cube.num_dims(), 8);
        let total: i64 = (0..200).sum();
        assert_eq!(cube.point(&vec![Selection::All; 8]), Some(total));
    }
}
