//! The unified read path: one traversal core over any node storage.
//!
//! Every cube query — point, range, slice, group-by — is the same walk over
//! a levelled DAG of nodes. Historically the workspace had three divergent
//! copies of that walk (the arena walk here in `sc-dwarf`, a point-only
//! re-implementation over NoSQL rows in `sc-core`, and a per-model rebuild
//! walk). This module extracts the walk into generic algorithms over a
//! [`NodeSource`] trait so there is exactly one traversal core:
//!
//! * [`ArenaSource`] — the trivial, zero-copy implementation over a built
//!   [`Dwarf`]; the existing `Dwarf::point/range/slice/group_by` API
//!   delegates here.
//! * `StoreNodeSource` (in `sc-core`) — answers from NoSQL rows with a
//!   batched `WHERE id IN (...)` fetch per node and a bounded LRU cache.
//!
//! Keys are compared as strings. This is sound for the arena because value
//! ids are ranked lexicographically (id order == string order), and it is
//! what lets a store that kept only the strings share the algorithms.

use std::convert::Infallible;
use std::rc::Rc;

use crate::cube::{Cell, Dwarf, NodeId, NONE_NODE};
use crate::intern::Interner;
use crate::query::{RangeSel, Selection};
use crate::schema::AggFn;

/// Node identifier as seen by a [`NodeSource`]. Wide enough for both arena
/// ids (`u32`) and store row ids (schema-offset `i64`).
pub type SourceNodeId = i64;

/// An owned cell of an [`OwnedNode`] (store-backed sources materialize
/// these from fetched rows).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct OwnedCell {
    /// The dimension value this cell is keyed by.
    pub key: String,
    /// Aggregate measure (meaningful at the leaf level).
    pub measure: i64,
    /// Child node, `None` at the leaf level.
    pub child: Option<SourceNodeId>,
}

/// An owned node: value cells sorted by key, plus the ALL pointer and the
/// node total (the ALL cell's measure).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct OwnedNode {
    /// Value cells, sorted by `key` (the ALL cell is *not* included here).
    pub cells: Vec<OwnedCell>,
    /// The ALL cell's target, `None` at the leaf level.
    pub all_child: Option<SourceNodeId>,
    /// Aggregate of everything below this node.
    pub total: i64,
}

impl OwnedNode {
    /// Builds a node from unsorted value cells (sorts them by key).
    pub fn from_cells(
        mut cells: Vec<OwnedCell>,
        all_child: Option<SourceNodeId>,
        total: i64,
    ) -> OwnedNode {
        cells.sort_by(|a, b| a.key.cmp(&b.key));
        OwnedNode {
            cells,
            all_child,
            total,
        }
    }
}

/// A node view handed out by a [`NodeSource`]: borrowed straight from the
/// arena, or an owned (cache-shared) reconstruction from store rows.
#[derive(Debug, Clone)]
pub enum CowNode<'s> {
    /// Zero-copy view into a [`Dwarf`] arena.
    Arena {
        /// The node's cells (sorted by interned key, which is string order).
        cells: &'s [Cell],
        /// The dictionary of this node's level, for key resolution.
        interner: &'s Interner,
        /// ALL pointer, `None` at the leaf level.
        all_child: Option<SourceNodeId>,
        /// Aggregate of everything below this node.
        total: i64,
    },
    /// Shared owned node (store-backed sources).
    Owned(Rc<OwnedNode>),
}

impl CowNode<'_> {
    /// Number of value cells (the ALL cell is not counted).
    pub fn len(&self) -> usize {
        match self {
            CowNode::Arena { cells, .. } => cells.len(),
            CowNode::Owned(n) => n.cells.len(),
        }
    }

    /// Whether the node has no value cells (only the empty cube's root).
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// The `i`-th cell's key, as a string.
    pub fn key(&self, i: usize) -> &str {
        match self {
            CowNode::Arena {
                cells, interner, ..
            } => interner.resolve(cells[i].key),
            CowNode::Owned(n) => &n.cells[i].key,
        }
    }

    /// The `i`-th cell's measure.
    pub fn measure(&self, i: usize) -> i64 {
        match self {
            CowNode::Arena { cells, .. } => cells[i].measure,
            CowNode::Owned(n) => n.cells[i].measure,
        }
    }

    /// The `i`-th cell's child pointer, `None` at the leaf level.
    pub fn child(&self, i: usize) -> Option<SourceNodeId> {
        match self {
            CowNode::Arena { cells, .. } => {
                (cells[i].child != NONE_NODE).then(|| cells[i].child as SourceNodeId)
            }
            CowNode::Owned(n) => n.cells[i].child,
        }
    }

    /// The ALL pointer, `None` at the leaf level.
    pub fn all_child(&self) -> Option<SourceNodeId> {
        match self {
            CowNode::Arena { all_child, .. } => *all_child,
            CowNode::Owned(n) => n.all_child,
        }
    }

    /// Aggregate of everything below this node (the ALL cell's value).
    pub fn total(&self) -> i64 {
        match self {
            CowNode::Arena { total, .. } => *total,
            CowNode::Owned(n) => n.total,
        }
    }

    /// Binary-searches for a cell index by key.
    pub fn find(&self, key: &str) -> Option<usize> {
        match self {
            CowNode::Arena {
                cells, interner, ..
            } => cells
                .binary_search_by(|c| interner.resolve(c.key).cmp(key))
                .ok(),
            CowNode::Owned(n) => n.cells.binary_search_by(|c| c.key.as_str().cmp(key)).ok(),
        }
    }

    /// First cell index whose key is `>= bound`.
    pub fn lower_bound(&self, bound: &str) -> usize {
        match self {
            CowNode::Arena {
                cells, interner, ..
            } => cells.partition_point(|c| interner.resolve(c.key) < bound),
            CowNode::Owned(n) => n.cells.partition_point(|c| c.key.as_str() < bound),
        }
    }
}

/// Failure of a generic traversal: either the source failed to produce a
/// node, or the produced nodes violate the DWARF shape.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum TraverseError<E> {
    /// The node source itself failed (store I/O, missing row, ...).
    Source(E),
    /// The node graph is structurally inconsistent with the schema.
    Inconsistent(String),
}

impl<E: std::fmt::Display> std::fmt::Display for TraverseError<E> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            TraverseError::Source(e) => write!(f, "node source error: {e}"),
            TraverseError::Inconsistent(msg) => write!(f, "inconsistent cube: {msg}"),
        }
    }
}

impl<E: std::fmt::Display + std::fmt::Debug> std::error::Error for TraverseError<E> {}

/// Anything that can resolve node ids to node views.
///
/// The lifetime `'s` is the lifetime of the *underlying data*, not of the
/// `&mut self` borrow: implementations either hand out views borrowing
/// longer-lived storage (the arena) or `'static` owned nodes (store
/// caches). That decoupling is what lets the traversal keep a parent view
/// while fetching children.
pub trait NodeSource<'s> {
    /// Source failure type ([`Infallible`] for the arena).
    type Err;

    /// Number of dimensions of the cube being traversed.
    fn num_dims(&self) -> usize;

    /// The cube's aggregate function (used to combine range partials).
    fn agg(&self) -> AggFn;

    /// The root node, or `None` for an empty cube.
    fn root(&self) -> Option<SourceNodeId>;

    /// Resolves a node id to a view of its cells, ALL pointer and total.
    fn node(&mut self, id: SourceNodeId) -> Result<CowNode<'s>, Self::Err>;
}

/// The trivial [`NodeSource`]: a borrowed in-memory [`Dwarf`] arena.
#[derive(Debug, Clone, Copy)]
pub struct ArenaSource<'c> {
    cube: &'c Dwarf,
}

impl<'c> ArenaSource<'c> {
    /// Wraps a built cube.
    pub fn new(cube: &'c Dwarf) -> ArenaSource<'c> {
        ArenaSource { cube }
    }
}

impl<'c> NodeSource<'c> for ArenaSource<'c> {
    type Err = Infallible;

    fn num_dims(&self) -> usize {
        self.cube.num_dims()
    }

    fn agg(&self) -> AggFn {
        self.cube.schema().agg()
    }

    fn root(&self) -> Option<SourceNodeId> {
        (!self.cube.is_empty()).then(|| self.cube.root() as SourceNodeId)
    }

    fn node(&mut self, id: SourceNodeId) -> Result<CowNode<'c>, Infallible> {
        let nr = self.cube.node(id as NodeId);
        Ok(CowNode::Arena {
            cells: nr.cells,
            interner: self.cube.interner(nr.node.level as usize),
            all_child: (nr.node.all_child != NONE_NODE).then(|| nr.node.all_child as SourceNodeId),
            total: nr.node.total,
        })
    }
}

/// Unwraps a traversal result over an infallible source. The in-memory
/// arena upholds the DWARF invariants by construction, so both error arms
/// are unreachable.
pub(crate) fn unwrap_infallible<T>(r: Result<T, TraverseError<Infallible>>) -> T {
    match r {
        Ok(t) => t,
        Err(TraverseError::Source(never)) => match never {},
        Err(TraverseError::Inconsistent(msg)) => {
            unreachable!("in-memory cube violated traversal invariants: {msg}")
        }
    }
}

fn source_err<E>(e: E) -> TraverseError<E> {
    TraverseError::Source(e)
}

fn missing_all<E>(level: usize) -> TraverseError<E> {
    TraverseError::Inconsistent(format!("non-leaf node at level {level} has no ALL pointer"))
}

fn missing_child<E>(level: usize) -> TraverseError<E> {
    TraverseError::Inconsistent(format!(
        "non-leaf cell at level {level} lacks a pointer node"
    ))
}

/// Point / group-by query over any source: one [`Selection`] per dimension.
///
/// Panics if `sel.len()` differs from the source's dimension count.
pub fn point_over<'s, S: NodeSource<'s>>(
    src: &mut S,
    sel: &[Selection],
) -> Result<Option<i64>, TraverseError<S::Err>> {
    let d = src.num_dims();
    assert_eq!(sel.len(), d, "selection arity must match dimensions");
    let Some(mut id) = src.root() else {
        return Ok(None);
    };
    for (level, s) in sel.iter().enumerate() {
        let node = src.node(id).map_err(source_err)?;
        if node.is_empty() {
            return Ok(None);
        }
        let leaf = level == d - 1;
        match s {
            Selection::All => {
                if leaf {
                    return Ok(Some(node.total()));
                }
                id = node.all_child().ok_or_else(|| missing_all(level))?;
            }
            Selection::Value(v) => {
                let Some(i) = node.find(v) else {
                    return Ok(None);
                };
                if leaf {
                    return Ok(Some(node.measure(i)));
                }
                id = node.child(i).ok_or_else(|| missing_child(level))?;
            }
        }
    }
    unreachable!("loop returns at the leaf level")
}

/// Range aggregate over any source: one [`RangeSel`] per dimension.
///
/// Panics if `sel.len()` differs from the source's dimension count.
pub fn range_over<'s, S: NodeSource<'s>>(
    src: &mut S,
    sel: &[RangeSel],
) -> Result<Option<i64>, TraverseError<S::Err>> {
    let d = src.num_dims();
    assert_eq!(sel.len(), d, "selection arity must match dimensions");
    if has_empty_interval(sel) {
        return Ok(None);
    }
    let Some(root) = src.root() else {
        return Ok(None);
    };
    let agg = src.agg();
    range_rec(src, root, 0, sel, agg, d)
}

fn range_rec<'s, S: NodeSource<'s>>(
    src: &mut S,
    id: SourceNodeId,
    level: usize,
    sel: &[RangeSel],
    agg: AggFn,
    d: usize,
) -> Result<Option<i64>, TraverseError<S::Err>> {
    let node = src.node(id).map_err(source_err)?;
    if node.is_empty() {
        return Ok(None);
    }
    let leaf = level == d - 1;
    match &sel[level] {
        RangeSel::All => {
            if leaf {
                Ok(Some(node.total()))
            } else {
                let all = node.all_child().ok_or_else(|| missing_all(level))?;
                if trailing_all(sel, level + 1) {
                    // Everything below is unconstrained: the ALL pointer
                    // already materializes this aggregate.
                    let all_node = src.node(all).map_err(source_err)?;
                    Ok(Some(all_node.total()))
                } else {
                    range_rec(src, all, level + 1, sel, agg, d)
                }
            }
        }
        RangeSel::Value(v) => {
            let Some(i) = node.find(v) else {
                return Ok(None);
            };
            if leaf {
                Ok(Some(node.measure(i)))
            } else {
                let child = node.child(i).ok_or_else(|| missing_child(level))?;
                range_rec(src, child, level + 1, sel, agg, d)
            }
        }
        RangeSel::Between(lo, hi) => {
            let start = node.lower_bound(lo);
            let mut acc: Option<i64> = None;
            for i in start..node.len() {
                if node.key(i) > hi.as_str() {
                    break;
                }
                let part = if leaf {
                    Some(node.measure(i))
                } else {
                    let child = node.child(i).ok_or_else(|| missing_child(level))?;
                    range_rec(src, child, level + 1, sel, agg, d)?
                };
                if let Some(p) = part {
                    acc = Some(match acc {
                        Some(a) => agg.combine(a, p),
                        None => p,
                    });
                }
            }
            Ok(acc)
        }
    }
}

/// Slice over any source: the base fact rows (string keys + aggregated
/// measures) falling inside `sel`, in sorted key order.
///
/// Panics if `sel.len()` differs from the source's dimension count.
pub fn slice_over<'s, S: NodeSource<'s>>(
    src: &mut S,
    sel: &[RangeSel],
) -> Result<Vec<(Vec<String>, i64)>, TraverseError<S::Err>> {
    let d = src.num_dims();
    assert_eq!(sel.len(), d, "selection arity must match dimensions");
    let mut out = Vec::new();
    if has_empty_interval(sel) {
        return Ok(out);
    }
    let Some(root) = src.root() else {
        return Ok(out);
    };
    let mut path = Vec::with_capacity(d);
    slice_rec(src, root, 0, sel, d, &mut path, &mut out)?;
    Ok(out)
}

fn slice_rec<'s, S: NodeSource<'s>>(
    src: &mut S,
    id: SourceNodeId,
    level: usize,
    sel: &[RangeSel],
    d: usize,
    path: &mut Vec<String>,
    out: &mut Vec<(Vec<String>, i64)>,
) -> Result<(), TraverseError<S::Err>> {
    let node = src.node(id).map_err(source_err)?;
    let leaf = level == d - 1;
    let (lo, hi) = match &sel[level] {
        RangeSel::All => (None, None),
        RangeSel::Value(v) => (Some(v.as_str()), Some(v.as_str())),
        RangeSel::Between(l, h) => (Some(l.as_str()), Some(h.as_str())),
    };
    let start = lo.map_or(0, |l| node.lower_bound(l));
    for i in start..node.len() {
        if hi.is_some_and(|h| node.key(i) > h) {
            break;
        }
        path.push(node.key(i).to_string());
        if leaf {
            if node.child(i).is_some() {
                return Err(TraverseError::Inconsistent(
                    "leaf cell has a pointer node".into(),
                ));
            }
            out.push((path.clone(), node.measure(i)));
        } else {
            let child = node.child(i).ok_or_else(|| missing_child(level))?;
            slice_rec(src, child, level + 1, sel, d, path, out)?;
        }
        path.pop();
    }
    Ok(())
}

/// GROUP BY over any source. `mask[level]` says whether that dimension is
/// grouped (descend value cells) or aggregated out (descend the ALL cell).
/// Returns `(group key, aggregate)` rows sorted by group key.
///
/// Panics if `mask.len()` differs from the source's dimension count.
pub fn group_by_over<'s, S: NodeSource<'s>>(
    src: &mut S,
    mask: &[bool],
) -> Result<Vec<(Vec<String>, i64)>, TraverseError<S::Err>> {
    let d = src.num_dims();
    assert_eq!(mask.len(), d, "mask arity must match dimensions");
    let mut out = Vec::new();
    let Some(root) = src.root() else {
        return Ok(out);
    };
    let mut key = Vec::new();
    group_rec(src, root, 0, mask, d, &mut key, &mut out)?;
    Ok(out)
}

fn group_rec<'s, S: NodeSource<'s>>(
    src: &mut S,
    id: SourceNodeId,
    level: usize,
    mask: &[bool],
    d: usize,
    key: &mut Vec<String>,
    out: &mut Vec<(Vec<String>, i64)>,
) -> Result<(), TraverseError<S::Err>> {
    let node = src.node(id).map_err(source_err)?;
    if node.is_empty() {
        return Ok(());
    }
    let leaf = level == d - 1;
    if mask[level] {
        for i in 0..node.len() {
            key.push(node.key(i).to_string());
            if leaf || mask[level + 1..].iter().all(|g| !g) {
                // Every remaining level is aggregated out: the cell's
                // measure IS the group's aggregate (child totals are
                // cached on cells).
                out.push((key.clone(), node.measure(i)));
            } else {
                let child = node.child(i).ok_or_else(|| missing_child(level))?;
                group_rec(src, child, level + 1, mask, d, key, out)?;
            }
            key.pop();
        }
    } else if leaf {
        // Fully aggregated leaf: node total closes the group.
        out.push((key.clone(), node.total()));
    } else {
        let all = node.all_child().ok_or_else(|| missing_all(level))?;
        group_rec(src, all, level + 1, mask, d, key, out)?;
    }
    Ok(())
}

fn has_empty_interval(sel: &[RangeSel]) -> bool {
    sel.iter()
        .any(|s| matches!(s, RangeSel::Between(lo, hi) if lo > hi))
}

fn trailing_all(sel: &[RangeSel], from: usize) -> bool {
    sel[from..].iter().all(|r| matches!(r, RangeSel::All))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{CubeSchema, TupleSet};

    fn cube() -> Dwarf {
        let schema = CubeSchema::new(["day", "station"], "hires");
        let mut ts = TupleSet::new(&schema);
        ts.push(["mon", "a"], 1);
        ts.push(["mon", "b"], 2);
        ts.push(["tue", "a"], 4);
        ts.push(["tue", "c"], 8);
        Dwarf::build(schema, ts)
    }

    /// An owned mirror of a cube, exercising the `CowNode::Owned` arm the
    /// way store-backed sources do.
    struct OwnedMirror {
        nodes: std::collections::HashMap<SourceNodeId, Rc<OwnedNode>>,
        root: Option<SourceNodeId>,
        num_dims: usize,
        agg: AggFn,
    }

    impl OwnedMirror {
        fn of(cube: &Dwarf) -> OwnedMirror {
            let mut nodes = std::collections::HashMap::new();
            for id in cube.node_ids() {
                let nr = cube.node(id);
                let level = nr.node.level as usize;
                let cells = nr
                    .cells
                    .iter()
                    .map(|c| OwnedCell {
                        key: cube.interner(level).resolve(c.key).to_string(),
                        measure: c.measure,
                        child: (c.child != NONE_NODE).then(|| c.child as SourceNodeId),
                    })
                    .collect();
                let all_child =
                    (nr.node.all_child != NONE_NODE).then(|| nr.node.all_child as SourceNodeId);
                nodes.insert(
                    id as SourceNodeId,
                    Rc::new(OwnedNode::from_cells(cells, all_child, nr.node.total)),
                );
            }
            OwnedMirror {
                nodes,
                root: (!cube.is_empty()).then(|| cube.root() as SourceNodeId),
                num_dims: cube.num_dims(),
                agg: cube.schema().agg(),
            }
        }
    }

    impl NodeSource<'static> for OwnedMirror {
        type Err = String;

        fn num_dims(&self) -> usize {
            self.num_dims
        }

        fn agg(&self) -> AggFn {
            self.agg
        }

        fn root(&self) -> Option<SourceNodeId> {
            self.root
        }

        fn node(&mut self, id: SourceNodeId) -> Result<CowNode<'static>, String> {
            self.nodes
                .get(&id)
                .cloned()
                .map(CowNode::Owned)
                .ok_or_else(|| format!("no node {id}"))
        }
    }

    #[test]
    fn owned_mirror_matches_arena_queries() {
        let c = cube();
        let mut mirror = OwnedMirror::of(&c);
        let sels = [
            vec![Selection::All, Selection::All],
            vec![Selection::value("mon"), Selection::All],
            vec![Selection::value("mon"), Selection::value("b")],
            vec![Selection::All, Selection::value("a")],
            vec![Selection::value("fri"), Selection::All],
        ];
        for sel in &sels {
            assert_eq!(point_over(&mut mirror, sel).unwrap(), c.point(sel));
        }
        let ranges = [
            vec![RangeSel::All, RangeSel::All],
            vec![RangeSel::between("mon", "tue"), RangeSel::All],
            vec![RangeSel::All, RangeSel::between("b", "c")],
            vec![RangeSel::between("z", "a"), RangeSel::All],
            vec![RangeSel::value("tue"), RangeSel::value("b")],
        ];
        for sel in &ranges {
            assert_eq!(range_over(&mut mirror, sel).unwrap(), c.range(sel));
            assert_eq!(slice_over(&mut mirror, sel).unwrap(), c.slice(sel));
        }
        for mask in [[false, false], [true, false], [false, true], [true, true]] {
            let dims: Vec<&str> = ["day", "station"]
                .iter()
                .zip(mask)
                .filter_map(|(d, g)| g.then_some(*d))
                .collect();
            assert_eq!(
                group_by_over(&mut mirror, &mask).unwrap(),
                c.group_by(&dims).unwrap()
            );
        }
    }

    #[test]
    fn source_errors_surface() {
        let c = cube();
        let mut mirror = OwnedMirror::of(&c);
        mirror.nodes.remove(&mirror.root.unwrap());
        let r = point_over(&mut mirror, &[Selection::All, Selection::All]);
        assert!(matches!(r, Err(TraverseError::Source(_))));
    }

    #[test]
    fn inconsistent_graphs_are_detected() {
        let c = cube();
        let mut mirror = OwnedMirror::of(&c);
        let root = mirror.root.unwrap();
        let broken = {
            let n = mirror.nodes[&root].as_ref().clone();
            let cells = n
                .cells
                .iter()
                .map(|c| OwnedCell {
                    child: None,
                    ..c.clone()
                })
                .collect();
            Rc::new(OwnedNode::from_cells(cells, n.all_child, n.total))
        };
        mirror.nodes.insert(root, broken);
        let r = point_over(&mut mirror, &[Selection::value("mon"), Selection::All]);
        assert!(matches!(r, Err(TraverseError::Inconsistent(_))));
    }

    #[test]
    fn empty_cube_is_none_everywhere() {
        let schema = CubeSchema::new(["a", "b"], "m");
        let c = Dwarf::build(schema.clone(), TupleSet::new(&schema));
        let mut src = ArenaSource::new(&c);
        assert_eq!(
            point_over(&mut src, &[Selection::All, Selection::All]).unwrap(),
            None
        );
        assert_eq!(
            range_over(&mut src, &[RangeSel::All, RangeSel::All]).unwrap(),
            None
        );
        assert!(slice_over(&mut src, &[RangeSel::All, RangeSel::All])
            .unwrap()
            .is_empty());
        assert!(group_by_over(&mut src, &[true, false]).unwrap().is_empty());
    }
}
