//! # sc-dwarf
//!
//! An implementation of the **DWARF** data cube (Sismanis, Deligiannakis,
//! Roussopoulos & Kotidis, *Dwarf: Shrinking the PetaCube*, SIGMOD 2002),
//! the structure at the heart of Scriney & Roantree's smart-city cube
//! pipeline (EDBT 2016).
//!
//! A DWARF is a levelled DAG that materializes **all 2^d group-bys** of a
//! d-dimensional fact table while eliminating both kinds of redundancy:
//!
//! * **prefix coalescing** — tuples sharing a dimension-value prefix share
//!   the path that spells that prefix (a by-product of building from sorted
//!   tuples), and
//! * **suffix coalescing** — when a group-by's sub-cube is identical to one
//!   already built (which happens whenever an ALL cell aggregates a single
//!   child), the existing sub-dwarf is *shared*, not copied, so the
//!   duplicate aggregates are never even computed.
//!
//! ## Quick start
//!
//! ```
//! use sc_dwarf::{CubeSchema, TupleSet, Dwarf, Selection};
//!
//! let schema = CubeSchema::new(["country", "city", "station"], "bikes");
//! let mut tuples = TupleSet::new(&schema);
//! tuples.push(["Ireland", "Dublin", "Fenian St"], 3);
//! tuples.push(["Ireland", "Dublin", "Smithfield"], 5);
//! tuples.push(["France", "Paris", "Bastille"], 2);
//!
//! let cube = Dwarf::build(schema, tuples);
//! // Fully-specified point query:
//! assert_eq!(cube.point(&[Selection::value("Ireland"),
//!                         Selection::value("Dublin"),
//!                         Selection::value("Fenian St")]), Some(3));
//! // Group-by with ALLs — answered from materialized aggregates:
//! assert_eq!(cube.point(&[Selection::value("Ireland"),
//!                         Selection::All,
//!                         Selection::All]), Some(8));
//! assert_eq!(cube.point(&[Selection::All, Selection::All, Selection::All]), Some(10));
//! ```
//!
//! ## Module map
//!
//! * [`schema`] — cube schema (dimension names, measure, aggregate function)
//! * [`intern`] — per-dimension string interning with sorted value ids
//! * `tuple` — tuple collection, sorting, duplicate pre-aggregation
//! * [`builder`] — the one-pass construction algorithm + `SuffixCoalesce`
//! * [`cube`] — the built structure, stats, validation, tuple re-extraction
//! * [`query`] — point, range and slice queries
//! * [`source`] — the `NodeSource` trait and the generic traversal core
//!   shared by the in-memory and store-backed read paths
//! * [`merge`] — cube merging and the delta buffer for incremental updates
//! * [`hierarchy`] — the Hierarchical-DWARF extension (rollup / drilldown)
//! * [`dot`] — Graphviz rendering (the paper's Figure 2)

pub mod builder;
pub mod cube;
pub mod dot;
pub mod groupby;
pub mod hierarchy;
pub mod intern;
pub mod merge;
mod obs;
pub mod query;
pub mod schema;
pub mod source;
pub mod tuple;

pub use cube::{CellRef, CubeStats, Dwarf, NodeId, NodeRef, NONE_NODE};
pub use hierarchy::{HierarchicalCube, Hierarchy};
pub use intern::{Interner, ValueId};
pub use merge::{DeltaBuffer, MergeAccumulator};
pub use query::{RangeSel, Selection};
pub use schema::{AggFn, CubeSchema};
pub use source::{
    group_by_over, point_over, range_over, slice_over, ArenaSource, CowNode, NodeSource, OwnedCell,
    OwnedNode, SourceNodeId, TraverseError,
};
pub use tuple::TupleSet;
