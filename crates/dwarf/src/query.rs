//! Point, range and slice queries over a built cube.
//!
//! DWARF answers any of the 2^d group-bys by following value cells for
//! specified dimensions and ALL cells for aggregated ones — no computation
//! happens at query time for point lookups. Range queries descend only the
//! cells whose keys fall in range, combining partial aggregates with the
//! cube's aggregate function.
//!
//! The algorithms themselves live in [`crate::source`] and are generic over
//! any [`crate::source::NodeSource`]; this module is the thin in-memory
//! front door ([`crate::source::ArenaSource`] is the zero-cost source).

use crate::cube::Dwarf;
use crate::source::{self, ArenaSource};

/// Per-dimension coordinate of a point query.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Selection {
    /// Aggregate over the whole dimension (follow the ALL cell).
    All,
    /// A specific dimension value.
    Value(String),
}

impl Selection {
    /// Convenience constructor for [`Selection::Value`].
    pub fn value(v: impl Into<String>) -> Selection {
        Selection::Value(v.into())
    }
}

/// Per-dimension constraint of a range query.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum RangeSel {
    /// No constraint (aggregate everything).
    All,
    /// Exactly one value.
    Value(String),
    /// A closed lexicographic interval `[lo, hi]` over dimension values.
    Between(String, String),
}

impl RangeSel {
    /// Convenience constructor for [`RangeSel::Value`].
    pub fn value(v: impl Into<String>) -> RangeSel {
        RangeSel::Value(v.into())
    }

    /// Convenience constructor for [`RangeSel::Between`].
    pub fn between(lo: impl Into<String>, hi: impl Into<String>) -> RangeSel {
        RangeSel::Between(lo.into(), hi.into())
    }
}

impl Dwarf {
    /// Point / group-by query: one [`Selection`] per dimension.
    ///
    /// Returns `None` when a named value does not exist in the cube or no
    /// fact matches (including on the empty cube).
    ///
    /// Panics if `sel.len()` differs from the number of dimensions.
    pub fn point(&self, sel: &[Selection]) -> Option<i64> {
        if !sc_obs::enabled() {
            return self.point_inner(sel);
        }
        let _trace = sc_obs::trace::stage("dwarf.query.point");
        let started = std::time::Instant::now();
        let out = self.point_inner(sel);
        crate::obs::dwarf()
            .point_ns
            .record_duration(started.elapsed());
        out
    }

    fn point_inner(&self, sel: &[Selection]) -> Option<i64> {
        source::unwrap_infallible(source::point_over(&mut ArenaSource::new(self), sel))
    }

    /// Range aggregate: one [`RangeSel`] per dimension. Returns `None` when
    /// no fact matches.
    ///
    /// Panics if `sel.len()` differs from the number of dimensions.
    pub fn range(&self, sel: &[RangeSel]) -> Option<i64> {
        if !sc_obs::enabled() {
            return self.range_inner(sel);
        }
        let _trace = sc_obs::trace::stage("dwarf.query.range");
        let started = std::time::Instant::now();
        let out = self.range_inner(sel);
        crate::obs::dwarf()
            .range_ns
            .record_duration(started.elapsed());
        out
    }

    fn range_inner(&self, sel: &[RangeSel]) -> Option<i64> {
        source::unwrap_infallible(source::range_over(&mut ArenaSource::new(self), sel))
    }

    /// Slice: the base fact rows (string keys + aggregated measures) that
    /// fall inside `sel`, in sorted key order.
    pub fn slice(&self, sel: &[RangeSel]) -> Vec<(Vec<String>, i64)> {
        source::unwrap_infallible(source::slice_over(&mut ArenaSource::new(self), sel))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{CubeSchema, TupleSet};

    fn cube() -> Dwarf {
        let schema = CubeSchema::new(["day", "station"], "hires");
        let mut ts = TupleSet::new(&schema);
        ts.push(["mon", "a"], 1);
        ts.push(["mon", "b"], 2);
        ts.push(["tue", "a"], 4);
        ts.push(["tue", "c"], 8);
        ts.push(["wed", "b"], 16);
        Dwarf::build(schema, ts)
    }

    #[test]
    fn range_all_matches_point_all() {
        let c = cube();
        assert_eq!(
            c.range(&[RangeSel::All, RangeSel::All]),
            c.point(&[Selection::All, Selection::All])
        );
        assert_eq!(c.range(&[RangeSel::All, RangeSel::All]), Some(31));
    }

    #[test]
    fn between_over_first_dimension() {
        let c = cube();
        assert_eq!(
            c.range(&[RangeSel::between("mon", "tue"), RangeSel::All]),
            Some(15)
        );
        assert_eq!(
            c.range(&[RangeSel::between("tue", "wed"), RangeSel::All]),
            Some(28)
        );
    }

    #[test]
    fn between_with_absent_bounds() {
        let c = cube();
        // "a".."s" covers only "mon" among {mon,tue,wed}.
        assert_eq!(
            c.range(&[RangeSel::between("a", "s"), RangeSel::All]),
            Some(3)
        );
        // Bounds beyond every value.
        assert_eq!(c.range(&[RangeSel::between("x", "z"), RangeSel::All]), None);
        // Inverted bounds.
        assert_eq!(c.range(&[RangeSel::between("z", "a"), RangeSel::All]), None);
    }

    #[test]
    fn range_on_second_dimension_uses_all_pointer() {
        let c = cube();
        assert_eq!(c.range(&[RangeSel::All, RangeSel::value("a")]), Some(5));
        assert_eq!(
            c.range(&[RangeSel::All, RangeSel::between("b", "c")]),
            Some(26)
        );
    }

    #[test]
    fn mixed_range() {
        let c = cube();
        assert_eq!(
            c.range(&[RangeSel::value("tue"), RangeSel::between("a", "b")]),
            Some(4)
        );
        assert_eq!(
            c.range(&[RangeSel::value("tue"), RangeSel::value("b")]),
            None
        );
    }

    #[test]
    fn unknown_value_is_none() {
        let c = cube();
        assert_eq!(c.range(&[RangeSel::value("fri"), RangeSel::All]), None);
        assert_eq!(c.point(&[Selection::value("fri"), Selection::All]), None);
    }

    #[test]
    fn slice_returns_matching_rows_sorted() {
        let c = cube();
        let rows = c.slice(&[RangeSel::between("mon", "tue"), RangeSel::All]);
        assert_eq!(
            rows,
            vec![
                (vec!["mon".to_string(), "a".into()], 1),
                (vec!["mon".to_string(), "b".into()], 2),
                (vec!["tue".to_string(), "a".into()], 4),
                (vec!["tue".to_string(), "c".into()], 8),
            ]
        );
        let rows = c.slice(&[RangeSel::All, RangeSel::value("b")]);
        assert_eq!(
            rows,
            vec![
                (vec!["mon".to_string(), "b".into()], 2),
                (vec!["wed".to_string(), "b".into()], 16),
            ]
        );
    }

    #[test]
    fn slice_empty_region() {
        let c = cube();
        assert!(c.slice(&[RangeSel::value("xxx"), RangeSel::All]).is_empty());
    }

    #[test]
    fn min_agg_range() {
        let schema = CubeSchema::new(["d", "s"], "m").with_agg(crate::AggFn::Min);
        let mut ts = TupleSet::new(&schema);
        ts.push(["mon", "a"], 5);
        ts.push(["mon", "b"], 3);
        ts.push(["tue", "a"], 9);
        let c = Dwarf::build(schema, ts);
        assert_eq!(c.range(&[RangeSel::All, RangeSel::All]), Some(3));
        assert_eq!(c.range(&[RangeSel::value("tue"), RangeSel::All]), Some(9));
        assert_eq!(c.range(&[RangeSel::All, RangeSel::value("a")]), Some(5));
    }

    #[test]
    #[should_panic(expected = "arity")]
    fn wrong_arity_panics() {
        cube().point(&[Selection::All]);
    }
}
