//! Point, range and slice queries over a built cube.
//!
//! DWARF answers any of the 2^d group-bys by following value cells for
//! specified dimensions and ALL cells for aggregated ones — no computation
//! happens at query time for point lookups. Range queries descend only the
//! cells whose keys fall in range, combining partial aggregates with the
//! cube's aggregate function.

use crate::cube::{Dwarf, NodeId, NONE_NODE};
use crate::intern::ValueId;

/// Per-dimension coordinate of a point query.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Selection {
    /// Aggregate over the whole dimension (follow the ALL cell).
    All,
    /// A specific dimension value.
    Value(String),
}

impl Selection {
    /// Convenience constructor for [`Selection::Value`].
    pub fn value(v: impl Into<String>) -> Selection {
        Selection::Value(v.into())
    }
}

/// Per-dimension constraint of a range query.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum RangeSel {
    /// No constraint (aggregate everything).
    All,
    /// Exactly one value.
    Value(String),
    /// A closed lexicographic interval `[lo, hi]` over dimension values.
    Between(String, String),
}

impl RangeSel {
    /// Convenience constructor for [`RangeSel::Value`].
    pub fn value(v: impl Into<String>) -> RangeSel {
        RangeSel::Value(v.into())
    }

    /// Convenience constructor for [`RangeSel::Between`].
    pub fn between(lo: impl Into<String>, hi: impl Into<String>) -> RangeSel {
        RangeSel::Between(lo.into(), hi.into())
    }
}

/// A resolved per-dimension id interval, `None` when nothing can match.
#[derive(Debug, Clone, Copy)]
enum IdRange {
    All,
    Exact(ValueId),
    Span(ValueId, ValueId),
    Empty,
}

impl Dwarf {
    /// Point / group-by query: one [`Selection`] per dimension.
    ///
    /// Returns `None` when a named value does not exist in the cube or no
    /// fact matches (including on the empty cube).
    ///
    /// Panics if `sel.len()` differs from the number of dimensions.
    pub fn point(&self, sel: &[Selection]) -> Option<i64> {
        if !sc_obs::enabled() {
            return self.point_inner(sel);
        }
        let started = std::time::Instant::now();
        let out = self.point_inner(sel);
        crate::obs::dwarf()
            .point_ns
            .record_duration(started.elapsed());
        out
    }

    fn point_inner(&self, sel: &[Selection]) -> Option<i64> {
        assert_eq!(
            sel.len(),
            self.num_dims(),
            "selection arity must match dimensions"
        );
        if self.is_empty() {
            return None;
        }
        let d = self.num_dims();
        let mut node = self.node(self.root);
        for (level, s) in sel.iter().enumerate() {
            let leaf = level == d - 1;
            match s {
                Selection::All => {
                    if leaf {
                        return Some(node.node.total);
                    }
                    debug_assert_ne!(node.node.all_child, NONE_NODE);
                    node = self.node(node.node.all_child);
                }
                Selection::Value(v) => {
                    let id = self.interners[level].get(v)?;
                    let cell = node.find(id)?;
                    if leaf {
                        return Some(cell.measure);
                    }
                    node = self.node(cell.child);
                }
            }
        }
        unreachable!("loop returns at the leaf level")
    }

    /// Range aggregate: one [`RangeSel`] per dimension. Returns `None` when
    /// no fact matches.
    ///
    /// Panics if `sel.len()` differs from the number of dimensions.
    pub fn range(&self, sel: &[RangeSel]) -> Option<i64> {
        if !sc_obs::enabled() {
            return self.range_inner(sel);
        }
        let started = std::time::Instant::now();
        let out = self.range_inner(sel);
        crate::obs::dwarf()
            .range_ns
            .record_duration(started.elapsed());
        out
    }

    fn range_inner(&self, sel: &[RangeSel]) -> Option<i64> {
        let ranges = self.resolve_ranges(sel)?;
        if self.is_empty() {
            return None;
        }
        self.range_rec(self.root, 0, &ranges)
    }

    fn resolve_ranges(&self, sel: &[RangeSel]) -> Option<Vec<IdRange>> {
        assert_eq!(
            sel.len(),
            self.num_dims(),
            "selection arity must match dimensions"
        );
        let mut out = Vec::with_capacity(sel.len());
        for (level, s) in sel.iter().enumerate() {
            let interner = &self.interners[level];
            let r = match s {
                RangeSel::All => IdRange::All,
                RangeSel::Value(v) => match interner.get(v) {
                    Some(id) => IdRange::Exact(id),
                    None => IdRange::Empty,
                },
                RangeSel::Between(lo, hi) => {
                    if lo > hi {
                        IdRange::Empty
                    } else {
                        // Ids are ranked lexicographically, so the matching
                        // ids form a contiguous span even when the exact
                        // bound strings are absent from the dictionary.
                        let lo_id = first_id_at_or_after(interner, lo);
                        let hi_id = last_id_at_or_before(interner, hi);
                        match (lo_id, hi_id) {
                            (Some(l), Some(h)) if l <= h => IdRange::Span(l, h),
                            _ => IdRange::Empty,
                        }
                    }
                }
            };
            out.push(r);
        }
        Some(out)
    }

    fn range_rec(&self, node_id: NodeId, level: usize, ranges: &[IdRange]) -> Option<i64> {
        let node = self.node(node_id);
        let leaf = level == self.num_dims() - 1;
        let agg = self.schema.agg();
        match ranges[level] {
            IdRange::Empty => None,
            IdRange::All => {
                if leaf {
                    Some(node.node.total)
                } else if trailing_all(ranges, level + 1) {
                    // Everything below is unconstrained: the ALL pointer
                    // already materializes this aggregate.
                    Some(self.node(node.node.all_child).node.total)
                } else {
                    self.range_rec(node.node.all_child, level + 1, ranges)
                }
            }
            IdRange::Exact(id) => {
                let cell = node.find(id)?;
                if leaf {
                    Some(cell.measure)
                } else {
                    self.range_rec(cell.child, level + 1, ranges)
                }
            }
            IdRange::Span(lo, hi) => {
                let start = node.cells.partition_point(|c| c.key < lo);
                let mut acc: Option<i64> = None;
                for cell in &node.cells[start..] {
                    if cell.key > hi {
                        break;
                    }
                    let part = if leaf {
                        Some(cell.measure)
                    } else {
                        self.range_rec(cell.child, level + 1, ranges)
                    };
                    if let Some(p) = part {
                        acc = Some(match acc {
                            Some(a) => agg.combine(a, p),
                            None => p,
                        });
                    }
                }
                acc
            }
        }
    }

    /// Slice: the base fact rows (string keys + aggregated measures) that
    /// fall inside `sel`, in sorted key order.
    pub fn slice(&self, sel: &[RangeSel]) -> Vec<(Vec<String>, i64)> {
        let Some(ranges) = self.resolve_ranges(sel) else {
            return Vec::new();
        };
        let mut out = Vec::new();
        if self.is_empty() || ranges.iter().any(|r| matches!(r, IdRange::Empty)) {
            return out;
        }
        let mut path = Vec::with_capacity(self.num_dims());
        self.slice_rec(self.root, 0, &ranges, &mut path, &mut out);
        out
    }

    fn slice_rec(
        &self,
        node_id: NodeId,
        level: usize,
        ranges: &[IdRange],
        path: &mut Vec<ValueId>,
        out: &mut Vec<(Vec<String>, i64)>,
    ) {
        let node = self.node(node_id);
        let leaf = level == self.num_dims() - 1;
        let (lo, hi) = match ranges[level] {
            IdRange::All => (0u32, u32::MAX),
            IdRange::Exact(id) => (id, id),
            IdRange::Span(l, h) => (l, h),
            IdRange::Empty => return,
        };
        let start = node.cells.partition_point(|c| c.key < lo);
        for cell in &node.cells[start..] {
            if cell.key > hi {
                break;
            }
            path.push(cell.key);
            if leaf {
                let key = path
                    .iter()
                    .enumerate()
                    .map(|(d, &v)| self.interners[d].resolve(v).to_string())
                    .collect();
                out.push((key, cell.measure));
            } else {
                self.slice_rec(cell.child, level + 1, ranges, path, out);
            }
            path.pop();
        }
    }
}

fn trailing_all(ranges: &[IdRange], from: usize) -> bool {
    ranges[from..].iter().all(|r| matches!(r, IdRange::All))
}

fn first_id_at_or_after(interner: &crate::intern::Interner, bound: &str) -> Option<ValueId> {
    // Ids are in string order, so binary search over ids works.
    let n = interner.len() as u32;
    let mut lo = 0u32;
    let mut hi = n;
    while lo < hi {
        let mid = (lo + hi) / 2;
        if interner.resolve(mid) < bound {
            lo = mid + 1;
        } else {
            hi = mid;
        }
    }
    (lo < n).then_some(lo)
}

fn last_id_at_or_before(interner: &crate::intern::Interner, bound: &str) -> Option<ValueId> {
    let n = interner.len() as u32;
    let mut lo = 0u32;
    let mut hi = n;
    while lo < hi {
        let mid = (lo + hi) / 2;
        if interner.resolve(mid) <= bound {
            lo = mid + 1;
        } else {
            hi = mid;
        }
    }
    (lo > 0).then(|| lo - 1)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{CubeSchema, TupleSet};

    fn cube() -> Dwarf {
        let schema = CubeSchema::new(["day", "station"], "hires");
        let mut ts = TupleSet::new(&schema);
        ts.push(["mon", "a"], 1);
        ts.push(["mon", "b"], 2);
        ts.push(["tue", "a"], 4);
        ts.push(["tue", "c"], 8);
        ts.push(["wed", "b"], 16);
        Dwarf::build(schema, ts)
    }

    #[test]
    fn range_all_matches_point_all() {
        let c = cube();
        assert_eq!(
            c.range(&[RangeSel::All, RangeSel::All]),
            c.point(&[Selection::All, Selection::All])
        );
        assert_eq!(c.range(&[RangeSel::All, RangeSel::All]), Some(31));
    }

    #[test]
    fn between_over_first_dimension() {
        let c = cube();
        assert_eq!(
            c.range(&[RangeSel::between("mon", "tue"), RangeSel::All]),
            Some(15)
        );
        assert_eq!(
            c.range(&[RangeSel::between("tue", "wed"), RangeSel::All]),
            Some(28)
        );
    }

    #[test]
    fn between_with_absent_bounds() {
        let c = cube();
        // "a".."s" covers only "mon" among {mon,tue,wed}.
        assert_eq!(
            c.range(&[RangeSel::between("a", "s"), RangeSel::All]),
            Some(3)
        );
        // Bounds beyond every value.
        assert_eq!(c.range(&[RangeSel::between("x", "z"), RangeSel::All]), None);
        // Inverted bounds.
        assert_eq!(c.range(&[RangeSel::between("z", "a"), RangeSel::All]), None);
    }

    #[test]
    fn range_on_second_dimension_uses_all_pointer() {
        let c = cube();
        assert_eq!(c.range(&[RangeSel::All, RangeSel::value("a")]), Some(5));
        assert_eq!(
            c.range(&[RangeSel::All, RangeSel::between("b", "c")]),
            Some(26)
        );
    }

    #[test]
    fn mixed_range() {
        let c = cube();
        assert_eq!(
            c.range(&[RangeSel::value("tue"), RangeSel::between("a", "b")]),
            Some(4)
        );
        assert_eq!(
            c.range(&[RangeSel::value("tue"), RangeSel::value("b")]),
            None
        );
    }

    #[test]
    fn unknown_value_is_none() {
        let c = cube();
        assert_eq!(c.range(&[RangeSel::value("fri"), RangeSel::All]), None);
        assert_eq!(c.point(&[Selection::value("fri"), Selection::All]), None);
    }

    #[test]
    fn slice_returns_matching_rows_sorted() {
        let c = cube();
        let rows = c.slice(&[RangeSel::between("mon", "tue"), RangeSel::All]);
        assert_eq!(
            rows,
            vec![
                (vec!["mon".to_string(), "a".into()], 1),
                (vec!["mon".to_string(), "b".into()], 2),
                (vec!["tue".to_string(), "a".into()], 4),
                (vec!["tue".to_string(), "c".into()], 8),
            ]
        );
        let rows = c.slice(&[RangeSel::All, RangeSel::value("b")]);
        assert_eq!(
            rows,
            vec![
                (vec!["mon".to_string(), "b".into()], 2),
                (vec!["wed".to_string(), "b".into()], 16),
            ]
        );
    }

    #[test]
    fn slice_empty_region() {
        let c = cube();
        assert!(c.slice(&[RangeSel::value("xxx"), RangeSel::All]).is_empty());
    }

    #[test]
    fn min_agg_range() {
        let schema = CubeSchema::new(["d", "s"], "m").with_agg(crate::AggFn::Min);
        let mut ts = TupleSet::new(&schema);
        ts.push(["mon", "a"], 5);
        ts.push(["mon", "b"], 3);
        ts.push(["tue", "a"], 9);
        let c = Dwarf::build(schema, ts);
        assert_eq!(c.range(&[RangeSel::All, RangeSel::All]), Some(3));
        assert_eq!(c.range(&[RangeSel::value("tue"), RangeSel::All]), Some(9));
        assert_eq!(c.range(&[RangeSel::All, RangeSel::value("a")]), Some(5));
    }

    #[test]
    #[should_panic(expected = "arity")]
    fn wrong_arity_panics() {
        cube().point(&[Selection::All]);
    }
}
