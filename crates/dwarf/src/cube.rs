//! The built DWARF structure: arena storage, access, stats, validation.

use crate::builder;
use crate::intern::{Interner, ValueId};
use crate::schema::CubeSchema;
use crate::tuple::TupleSet;
use sc_encoding::ByteSize;

/// Index of a node in the cube's arena.
pub type NodeId = u32;

/// Sentinel for "no node" (leaf cells and the empty cube's ALL pointer).
pub const NONE_NODE: NodeId = u32::MAX;

/// One cell, as stored in the arena.
///
/// * At a **leaf** level, `child == NONE_NODE` and `measure` holds the
///   aggregate for the cell's full dimension key.
/// * At a **non-leaf** level, `child` points to the node holding the next
///   dimension's cells; the cell's own aggregate is that node's
///   [`Node::total`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Cell {
    /// Interned dimension value this cell is keyed by.
    pub key: ValueId,
    /// Child node, or [`NONE_NODE`] at the leaf level.
    pub child: NodeId,
    /// Aggregate measure (meaningful at the leaf level).
    pub measure: i64,
}

/// Node metadata; the node's cells live contiguously in the cell arena.
#[derive(Debug, Clone, Copy)]
pub struct Node {
    /// Start of the node's cells in the arena.
    pub cells_start: u32,
    /// Number of cells.
    pub cells_len: u32,
    /// The ALL cell's target: the suffix-coalesced sub-dwarf aggregating all
    /// of this node's cells ([`NONE_NODE`] at the leaf level).
    pub all_child: NodeId,
    /// Aggregate of everything below this node (the ALL cell's value).
    pub total: i64,
    /// Dimension level (0 = root dimension).
    pub level: u8,
}

/// Borrowed view of a node plus its cells.
#[derive(Debug, Clone, Copy)]
pub struct NodeRef<'a> {
    /// The node's id.
    pub id: NodeId,
    /// The node's metadata.
    pub node: &'a Node,
    /// The node's cells, sorted by `key`.
    pub cells: &'a [Cell],
    /// Dimension count of the owning cube (for leaf-level checks).
    pub num_dims: usize,
}

impl<'a> NodeRef<'a> {
    /// Binary-searches for a cell by key.
    pub fn find(&self, key: ValueId) -> Option<&'a Cell> {
        self.cells
            .binary_search_by_key(&key, |c| c.key)
            .ok()
            .map(|i| &self.cells[i])
    }

    /// Whether this node is at the leaf (last) level of the cube.
    ///
    /// Derived from the node's level so traversal loops don't pay a cell
    /// scan; [`Dwarf::validate`] cross-checks the scan-based definition.
    pub fn is_leaf(&self) -> bool {
        self.node.level as usize + 1 == self.num_dims
    }
}

/// Borrowed view of a cell with its position context (used by traversals).
#[derive(Debug, Clone, Copy)]
pub struct CellRef<'a> {
    /// The node the cell lives in.
    pub node_id: NodeId,
    /// Index of the cell within its node.
    pub index: usize,
    /// The cell itself.
    pub cell: &'a Cell,
}

/// Summary statistics of a built cube (the paper's `node_count` /
/// `cell_count` metadata, plus construction detail).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CubeStats {
    /// Total nodes in the structure (shared nodes counted once).
    pub node_count: usize,
    /// Total cells (shared nodes' cells counted once).
    pub cell_count: usize,
    /// Distinct fact keys the cube was built from.
    pub tuple_count: usize,
    /// Nodes per level, level 0 first.
    pub nodes_per_level: Vec<usize>,
    /// Approximate in-memory footprint.
    pub memory: ByteSize,
}

/// A built DWARF cube.
///
/// Construction is via [`Dwarf::build`]; the structure is immutable
/// afterwards (updates go through [`crate::merge`]).
#[derive(Debug, Clone)]
pub struct Dwarf {
    pub(crate) schema: CubeSchema,
    pub(crate) interners: Vec<Interner>,
    pub(crate) cells: Vec<Cell>,
    pub(crate) nodes: Vec<Node>,
    pub(crate) root: NodeId,
    pub(crate) tuple_count: usize,
}

impl Dwarf {
    /// Builds a cube from a batch of input tuples.
    pub fn build(schema: CubeSchema, tuples: TupleSet) -> Dwarf {
        builder::build(schema, tuples)
    }

    /// The cube's schema.
    pub fn schema(&self) -> &CubeSchema {
        &self.schema
    }

    /// The root node's id.
    pub fn root(&self) -> NodeId {
        self.root
    }

    /// Number of dimensions.
    pub fn num_dims(&self) -> usize {
        self.schema.num_dims()
    }

    /// Number of distinct fact keys the cube was built from.
    pub fn tuple_count(&self) -> usize {
        self.tuple_count
    }

    /// Whether the cube contains no facts.
    pub fn is_empty(&self) -> bool {
        self.tuple_count == 0
    }

    /// The interner (value dictionary) of dimension `dim`.
    pub fn interner(&self, dim: usize) -> &Interner {
        &self.interners[dim]
    }

    /// Resolves a node id to a borrowed view.
    pub fn node(&self, id: NodeId) -> NodeRef<'_> {
        let node = &self.nodes[id as usize];
        let start = node.cells_start as usize;
        let end = start + node.cells_len as usize;
        NodeRef {
            id,
            node,
            cells: &self.cells[start..end],
            num_dims: self.num_dims(),
        }
    }

    /// Iterates all node ids (every node is reachable; shared ones appear
    /// once).
    pub fn node_ids(&self) -> impl Iterator<Item = NodeId> {
        0..self.nodes.len() as NodeId
    }

    /// Number of nodes.
    pub fn node_count(&self) -> usize {
        self.nodes.len()
    }

    /// Number of cells.
    pub fn cell_count(&self) -> usize {
        self.cells.len()
    }

    /// Summary statistics.
    pub fn stats(&self) -> CubeStats {
        let mut nodes_per_level = vec![0usize; self.num_dims()];
        for n in &self.nodes {
            nodes_per_level[n.level as usize] += 1;
        }
        let memory = ByteSize::bytes(
            (self.cells.len() * std::mem::size_of::<Cell>()
                + self.nodes.len() * std::mem::size_of::<Node>()
                + self
                    .interners
                    .iter()
                    .map(|i| i.iter().map(|(_, s)| s.len() + 16).sum::<usize>())
                    .sum::<usize>()) as u64,
        );
        CubeStats {
            node_count: self.nodes.len(),
            cell_count: self.cells.len(),
            tuple_count: self.tuple_count,
            nodes_per_level,
            memory,
        }
    }

    /// Re-extracts the base fact tuples (string keys + aggregate measures),
    /// in sorted key order.
    ///
    /// This walks value cells only, so each fact key appears exactly once —
    /// it is the inverse of construction and the backbone of the
    /// round-trip property tests and [`crate::merge`].
    pub fn extract_tuples(&self) -> Vec<(Vec<String>, i64)> {
        // An unconstrained slice through the shared traversal core visits
        // value cells only, so each fact key appears exactly once.
        let region = vec![crate::query::RangeSel::All; self.num_dims()];
        crate::source::unwrap_infallible(crate::source::slice_over(
            &mut crate::source::ArenaSource::new(self),
            &region,
        ))
    }

    /// Exhaustively checks structural invariants; panics with a description
    /// on violation. Intended for tests and debugging, not hot paths.
    pub fn validate(&self) {
        let d = self.num_dims();
        assert!(!self.nodes.is_empty(), "cube must have a root node");
        assert_eq!(
            self.nodes[self.root as usize].level, 0,
            "root must be level 0"
        );
        for id in self.node_ids() {
            let n = self.node(id);
            let level = n.node.level as usize;
            assert!(level < d, "node {id} has level {level} >= d={d}");
            // Cells strictly sorted by key.
            for w in n.cells.windows(2) {
                assert!(w[0].key < w[1].key, "node {id} cells unsorted/duplicated");
            }
            let leaf = level == d - 1;
            for c in n.cells {
                assert!(
                    (c.key as usize) < self.interners[level].len(),
                    "node {id} cell key out of dictionary range"
                );
                if leaf {
                    assert_eq!(c.child, NONE_NODE, "leaf cell with child in node {id}");
                } else {
                    assert_ne!(
                        c.child, NONE_NODE,
                        "non-leaf cell without child in node {id}"
                    );
                    let child = &self.nodes[c.child as usize];
                    assert_eq!(
                        child.level as usize,
                        level + 1,
                        "node {id} child at wrong level"
                    );
                    // A non-leaf cell's aggregate equals its child's total.
                    assert_eq!(
                        c.measure, child.total,
                        "node {id} cell measure != child total"
                    );
                }
            }
            if !n.cells.is_empty() {
                // Level-derived leafness must agree with the scan-based
                // definition (no ALL pointer, no cell children).
                let scanned_leaf =
                    n.node.all_child == NONE_NODE && n.cells.iter().all(|c| c.child == NONE_NODE);
                assert_eq!(n.is_leaf(), scanned_leaf, "node {id} leafness mismatch");
                // The node's total equals the aggregate of its cells.
                let agg = self.schema.agg();
                let combined = agg
                    .combine_all(n.cells.iter().map(|c| c.measure))
                    .expect("non-empty cells");
                assert_eq!(n.node.total, combined, "node {id} total mismatch");
                if leaf {
                    assert_eq!(n.node.all_child, NONE_NODE, "leaf node with ALL child");
                } else {
                    assert_ne!(
                        n.node.all_child, NONE_NODE,
                        "non-leaf node missing ALL child"
                    );
                    let all = &self.nodes[n.node.all_child as usize];
                    assert_eq!(
                        all.level as usize,
                        level + 1,
                        "node {id} ALL child at wrong level"
                    );
                    assert_eq!(
                        all.total, n.node.total,
                        "node {id} ALL child total mismatch"
                    );
                }
            }
        }
    }

    /// Builds a new, standalone cube containing only the facts that fall in
    /// `region` (one [`crate::query::RangeSel`] per dimension).
    ///
    /// This is the "cube constructed from querying a DWARF schema" that the
    /// paper's `is_cube` flag marks in the store.
    pub fn subcube(&self, region: &[crate::query::RangeSel]) -> Dwarf {
        let rows = self.slice(region);
        let mut ts = TupleSet::new(&self.schema);
        for (key, measure) in rows {
            // Measures were already aggregated by the parent cube; Sum/Min/
            // Max re-aggregate idempotently over distinct keys. For Count the
            // extracted measure *is* the count, so feed it through Sum
            // semantics by pushing the row measure directly.
            ts.push(key.iter().map(String::as_str), measure);
        }
        let schema = match self.schema.agg() {
            crate::schema::AggFn::Count => self.schema.clone().with_agg(crate::schema::AggFn::Sum),
            _ => self.schema.clone(),
        };
        Dwarf::build(schema, ts)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::query::Selection;

    fn small_cube() -> Dwarf {
        let schema = CubeSchema::new(["country", "city", "station"], "bikes");
        let mut ts = TupleSet::new(&schema);
        ts.push(["Ireland", "Dublin", "Fenian St"], 3);
        ts.push(["Ireland", "Dublin", "Smithfield"], 5);
        ts.push(["Ireland", "Cork", "Patrick St"], 2);
        ts.push(["France", "Paris", "Bastille"], 7);
        Dwarf::build(schema, ts)
    }

    #[test]
    fn stats_shape() {
        let cube = small_cube();
        let stats = cube.stats();
        assert_eq!(stats.tuple_count, 4);
        assert_eq!(stats.nodes_per_level.len(), 3);
        assert_eq!(
            stats.nodes_per_level.iter().sum::<usize>(),
            stats.node_count
        );
        assert!(stats.cell_count >= 4);
        assert!(stats.memory.as_bytes() > 0);
    }

    #[test]
    fn extract_tuples_roundtrip() {
        let cube = small_cube();
        let tuples = cube.extract_tuples();
        assert_eq!(tuples.len(), 4);
        // Sorted key order.
        assert_eq!(
            tuples[0].0,
            vec!["France".to_string(), "Paris".into(), "Bastille".into()]
        );
        assert_eq!(tuples[0].1, 7);
        assert_eq!(
            tuples[3].0,
            vec!["Ireland".to_string(), "Dublin".into(), "Smithfield".into()]
        );
    }

    #[test]
    fn validate_accepts_built_cube() {
        small_cube().validate();
    }

    #[test]
    fn subcube_restricts_facts() {
        let cube = small_cube();
        let region = vec![
            crate::query::RangeSel::value("Ireland"),
            crate::query::RangeSel::All,
            crate::query::RangeSel::All,
        ];
        let sub = cube.subcube(&region);
        sub.validate();
        assert_eq!(sub.tuple_count(), 3);
        assert_eq!(
            sub.point(&[Selection::All, Selection::All, Selection::All]),
            Some(10)
        );
        assert_eq!(
            sub.point(&[Selection::value("France"), Selection::All, Selection::All]),
            None
        );
    }

    #[test]
    fn node_ref_find() {
        let cube = small_cube();
        let root = cube.node(cube.root());
        assert_eq!(root.cells.len(), 2); // France, Ireland
        let ireland = cube.interner(0).get("Ireland").unwrap();
        assert!(root.find(ireland).is_some());
        assert!(root.find(999).is_none());
    }
}
