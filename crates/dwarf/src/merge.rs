//! Cube updates: merging cubes and buffering deltas.
//!
//! The paper's conclusion names "cube updates through efficient query
//! primitives" as the next step. A DWARF's aggressive sharing makes in-place
//! mutation unattractive (one new tuple can invalidate aggregates along
//! every ALL path that covers it), so the standard maintenance strategy —
//! which we implement — is **batch merge**: accumulate incoming facts in a
//! [`DeltaBuffer`], then produce a fresh cube from the union of the existing
//! cube's facts and the buffered delta. Re-extraction is linear in the fact
//! count and construction is a single sorted pass, so the rebuild costs the
//! same as the original load.

use crate::cube::Dwarf;
use crate::schema::{AggFn, CubeSchema};
use crate::tuple::TupleSet;

impl Dwarf {
    /// Merges two cubes over the same schema into a new cube whose facts are
    /// the aggregate-union of both.
    ///
    /// Panics if the schemas differ (dimension names, order, measure or
    /// aggregate function) — merging unlike cubes is a programming error.
    pub fn merge(&self, other: &Dwarf) -> Dwarf {
        assert_eq!(
            self.schema, other.schema,
            "cannot merge cubes with different schemas"
        );
        // Re-extracted measures are already aggregates; for Count they must
        // be *summed*, not re-counted, so build under Sum semantics and
        // restore the Count schema label afterwards.
        let build_schema = rebuild_schema(&self.schema);
        let mut ts = TupleSet::new(&build_schema);
        for (key, measure) in self.extract_tuples() {
            ts.push(key.iter().map(String::as_str), measure);
        }
        for (key, measure) in other.extract_tuples() {
            ts.push(key.iter().map(String::as_str), measure);
        }
        let mut merged = Dwarf::build(build_schema, ts);
        merged.schema = self.schema.clone();
        merged
    }

    /// Applies a delta buffer, returning the updated cube.
    pub fn apply_delta(&self, delta: &DeltaBuffer) -> Dwarf {
        assert_eq!(
            &self.schema, &delta.schema,
            "delta buffer built for a different schema"
        );
        let build_schema = rebuild_schema(&self.schema);
        let mut ts = TupleSet::new(&build_schema);
        for (key, measure) in self.extract_tuples() {
            ts.push(key.iter().map(String::as_str), measure);
        }
        for (key, measure) in &delta.rows {
            // Delta rows are raw facts: apply the original tuple transform
            // (Count -> 1) before summing into the rebuild.
            ts.push(
                key.iter().map(String::as_str),
                self.schema.agg().of_tuple(*measure),
            );
        }
        let mut merged = Dwarf::build(build_schema, ts);
        merged.schema = self.schema.clone();
        merged
    }
}

impl Dwarf {
    /// Rebuilds a cube from already-aggregated fact rows (as produced by
    /// [`Dwarf::extract_tuples`] or read back from a store).
    ///
    /// Unlike feeding the rows through a fresh [`TupleSet`] with the
    /// original schema, this handles aggregate-label bookkeeping: rows of a
    /// `Count` cube hold counts that must be *summed*, not re-counted.
    pub fn from_aggregated_rows(
        schema: CubeSchema,
        rows: impl IntoIterator<Item = (Vec<String>, i64)>,
    ) -> Dwarf {
        let build_schema = rebuild_schema(&schema);
        let mut ts = TupleSet::new(&build_schema);
        for (key, measure) in rows {
            ts.push(key.iter().map(String::as_str), measure);
        }
        let mut cube = Dwarf::build(build_schema, ts);
        cube.schema = schema;
        cube
    }
}

/// Accumulates already-aggregated fact rows from many cubes and builds the
/// union cube **once**.
///
/// [`Dwarf::merge`] is pairwise: merging `k` sealed micro-cubes by folding
/// costs `k-1` full rebuilds, each re-extracting everything merged so far.
/// The accumulator instead extracts each cube's rows as it arrives and sorts
/// and builds a single time in [`MergeAccumulator::finish`] — the shape the
/// streaming runtime needs, where sealed micro-cubes trickle in from worker
/// shards.
#[derive(Debug)]
pub struct MergeAccumulator {
    schema: CubeSchema,
    rows: Vec<(Vec<String>, i64)>,
    cubes_absorbed: usize,
}

impl MergeAccumulator {
    /// Creates an empty accumulator for `schema`.
    pub fn new(schema: CubeSchema) -> Self {
        Self {
            schema,
            rows: Vec::new(),
            cubes_absorbed: 0,
        }
    }

    /// Absorbs one cube's facts.
    ///
    /// Panics if the cube's schema differs from the accumulator's — merging
    /// unlike cubes is a programming error, as in [`Dwarf::merge`].
    pub fn absorb(&mut self, cube: &Dwarf) {
        assert_eq!(
            &self.schema,
            cube.schema(),
            "cannot merge cubes with different schemas"
        );
        self.rows.extend(cube.extract_tuples());
        self.cubes_absorbed += 1;
    }

    /// Number of cubes absorbed so far.
    pub fn cubes_absorbed(&self) -> usize {
        self.cubes_absorbed
    }

    /// Number of fact rows buffered (duplicates not yet folded).
    pub fn len(&self) -> usize {
        self.rows.len()
    }

    /// Whether no facts have been absorbed.
    pub fn is_empty(&self) -> bool {
        self.rows.is_empty()
    }

    /// Builds the union cube from everything absorbed.
    ///
    /// Rows are already aggregates, so Count cubes rebuild under Sum
    /// semantics (see [`Dwarf::from_aggregated_rows`]).
    pub fn finish(self) -> Dwarf {
        Dwarf::from_aggregated_rows(self.schema, self.rows)
    }
}

impl Dwarf {
    /// Merges any number of same-schema cubes with a single rebuild.
    ///
    /// Equivalent to folding [`Dwarf::merge`] but linear in total fact count
    /// instead of quadratic. Returns an empty cube for an empty iterator.
    pub fn merge_many<'a>(schema: CubeSchema, cubes: impl IntoIterator<Item = &'a Dwarf>) -> Dwarf {
        let mut acc = MergeAccumulator::new(schema);
        for cube in cubes {
            acc.absorb(cube);
        }
        acc.finish()
    }
}

fn rebuild_schema(schema: &CubeSchema) -> CubeSchema {
    match schema.agg() {
        AggFn::Count => schema.clone().with_agg(AggFn::Sum),
        _ => schema.clone(),
    }
}

/// Accumulates raw incoming facts until the owner decides to rebuild.
///
/// The smart-city pipeline appends stream records here as they arrive and
/// calls [`Dwarf::apply_delta`] on a cadence (the paper's datasets are
/// day/week/month windows of exactly this kind).
#[derive(Debug, Clone)]
pub struct DeltaBuffer {
    schema: CubeSchema,
    rows: Vec<(Vec<String>, i64)>,
}

impl DeltaBuffer {
    /// Creates an empty buffer for `schema`.
    pub fn new(schema: CubeSchema) -> Self {
        Self {
            schema,
            rows: Vec::new(),
        }
    }

    /// Appends one raw fact.
    pub fn push<I, S>(&mut self, dims: I, measure: i64)
    where
        I: IntoIterator<Item = S>,
        S: AsRef<str>,
    {
        let key: Vec<String> = dims.into_iter().map(|s| s.as_ref().to_string()).collect();
        assert_eq!(
            key.len(),
            self.schema.num_dims(),
            "wrong number of dimension values"
        );
        self.rows.push((key, measure));
    }

    /// Number of buffered facts.
    pub fn len(&self) -> usize {
        self.rows.len()
    }

    /// Whether the buffer is empty.
    pub fn is_empty(&self) -> bool {
        self.rows.is_empty()
    }

    /// Discards the buffered facts.
    pub fn clear(&mut self) {
        self.rows.clear();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::query::Selection;

    fn schema() -> CubeSchema {
        CubeSchema::new(["day", "station"], "hires")
    }

    fn cube_of(rows: &[(&str, &str, i64)]) -> Dwarf {
        let mut ts = TupleSet::new(&schema());
        for (d, s, m) in rows {
            ts.push([*d, *s], *m);
        }
        Dwarf::build(schema(), ts)
    }

    #[test]
    fn merge_unions_and_aggregates() {
        let a = cube_of(&[("mon", "a", 1), ("mon", "b", 2)]);
        let b = cube_of(&[("mon", "a", 10), ("tue", "c", 4)]);
        let m = a.merge(&b);
        m.validate();
        assert_eq!(m.tuple_count(), 3);
        let v = Selection::value;
        assert_eq!(m.point(&[v("mon"), v("a")]), Some(11));
        assert_eq!(m.point(&[v("mon"), v("b")]), Some(2));
        assert_eq!(m.point(&[v("tue"), v("c")]), Some(4));
        assert_eq!(m.point(&[Selection::All, Selection::All]), Some(17));
    }

    #[test]
    fn merge_with_empty_is_identity_on_facts() {
        let a = cube_of(&[("mon", "a", 1)]);
        let empty = cube_of(&[]);
        let m = a.merge(&empty);
        assert_eq!(m.extract_tuples(), a.extract_tuples());
    }

    #[test]
    fn merge_is_commutative_on_facts() {
        let a = cube_of(&[("mon", "a", 1), ("tue", "b", 2)]);
        let b = cube_of(&[("mon", "a", 5), ("wed", "c", 9)]);
        assert_eq!(a.merge(&b).extract_tuples(), b.merge(&a).extract_tuples());
    }

    #[test]
    #[should_panic(expected = "different schemas")]
    fn merge_rejects_schema_mismatch() {
        let a = cube_of(&[("mon", "a", 1)]);
        let other_schema = CubeSchema::new(["x", "y"], "m");
        let b = Dwarf::build(other_schema.clone(), TupleSet::new(&other_schema));
        let _ = a.merge(&b);
    }

    #[test]
    fn delta_buffer_flow() {
        let base = cube_of(&[("mon", "a", 1)]);
        let mut delta = DeltaBuffer::new(schema());
        assert!(delta.is_empty());
        delta.push(["mon", "a"], 2);
        delta.push(["tue", "b"], 3);
        assert_eq!(delta.len(), 2);
        let updated = base.apply_delta(&delta);
        updated.validate();
        let v = Selection::value;
        assert_eq!(updated.point(&[v("mon"), v("a")]), Some(3));
        assert_eq!(updated.point(&[v("tue"), v("b")]), Some(3));
        delta.clear();
        assert!(delta.is_empty());
    }

    #[test]
    fn count_cubes_merge_by_summing_counts() {
        let schema = CubeSchema::new(["s"], "m").with_agg(AggFn::Count);
        let mut ts = TupleSet::new(&schema);
        ts.push(["a"], 99);
        ts.push(["a"], 99);
        let c1 = Dwarf::build(schema.clone(), ts);
        let mut ts = TupleSet::new(&schema);
        ts.push(["a"], 99);
        let c2 = Dwarf::build(schema.clone(), ts);
        let m = c1.merge(&c2);
        assert_eq!(m.point(&[Selection::value("a")]), Some(3));
        assert_eq!(m.schema().agg(), AggFn::Count);
    }

    #[test]
    fn count_delta_counts_new_rows() {
        let schema = CubeSchema::new(["s"], "m").with_agg(AggFn::Count);
        let mut ts = TupleSet::new(&schema);
        ts.push(["a"], 1);
        let base = Dwarf::build(schema.clone(), ts);
        let mut delta = DeltaBuffer::new(schema);
        delta.push(["a"], 123);
        delta.push(["b"], 456);
        let updated = base.apply_delta(&delta);
        assert_eq!(updated.point(&[Selection::value("a")]), Some(2));
        assert_eq!(updated.point(&[Selection::value("b")]), Some(1));
    }
}
