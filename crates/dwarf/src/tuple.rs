//! Tuple collection: interning, sorting, duplicate pre-aggregation.
//!
//! The DWARF construction algorithm requires its input fact tuples sorted
//! lexicographically by dimension values with no duplicate keys (duplicates
//! are pre-aggregated, exactly as a fact-table GROUP BY would). [`TupleSet`]
//! owns that preparation: values are interned as they arrive, ids are
//! re-ranked to string order once input ends, and
//! [`TupleSet::into_sorted`] hands the builder a clean, sorted, deduplicated
//! columnar batch.

use crate::intern::{Interner, ValueId};
use crate::schema::CubeSchema;
use std::cmp::Ordering;

/// A growable batch of input fact tuples for a given schema.
#[derive(Debug, Clone)]
pub struct TupleSet {
    num_dims: usize,
    agg: crate::schema::AggFn,
    /// Row-major dimension ids: tuple `t`'s dims at `keys[t*d .. (t+1)*d]`.
    keys: Vec<ValueId>,
    measures: Vec<i64>,
    interners: Vec<Interner>,
}

impl TupleSet {
    /// Creates an empty set shaped for `schema`.
    pub fn new(schema: &CubeSchema) -> Self {
        Self {
            num_dims: schema.num_dims(),
            agg: schema.agg(),
            keys: Vec::new(),
            measures: Vec::new(),
            interners: (0..schema.num_dims()).map(|_| Interner::new()).collect(),
        }
    }

    /// Appends one tuple given as dimension strings plus a measure.
    ///
    /// Panics if the number of dimension values does not match the schema —
    /// shaped input is the caller's contract.
    pub fn push<I, S>(&mut self, dims: I, measure: i64)
    where
        I: IntoIterator<Item = S>,
        S: AsRef<str>,
    {
        let before = self.keys.len();
        for (i, v) in dims.into_iter().enumerate() {
            assert!(i < self.num_dims, "too many dimension values");
            self.keys.push(self.interners[i].intern(v.as_ref()));
        }
        assert_eq!(
            self.keys.len() - before,
            self.num_dims,
            "wrong number of dimension values"
        );
        self.measures.push(measure);
    }

    /// Number of tuples collected so far (before deduplication).
    pub fn len(&self) -> usize {
        self.measures.len()
    }

    /// Whether no tuples were collected.
    pub fn is_empty(&self) -> bool {
        self.measures.is_empty()
    }

    /// Cardinality of dimension `i` seen so far.
    pub fn cardinality(&self, i: usize) -> usize {
        self.interners[i].len()
    }

    /// Approximate heap footprint of the collected tuples, in bytes.
    ///
    /// Counts key ids, measures and interned strings — close enough for
    /// seal-watermark decisions (the streaming runtime seals a shard's
    /// micro-cube when its tuple set crosses a byte budget); not an exact
    /// allocator measurement.
    pub fn approximate_bytes(&self) -> usize {
        let strings: usize = self
            .interners
            .iter()
            .flat_map(|i| {
                i.iter()
                    .map(|(_, v)| v.len() + std::mem::size_of::<String>())
            })
            .sum();
        self.keys.len() * std::mem::size_of::<ValueId>()
            + self.measures.len() * std::mem::size_of::<i64>()
            + strings
    }

    /// Finalizes the batch: re-ranks ids to string order, sorts tuples
    /// lexicographically and pre-aggregates duplicate keys.
    pub fn into_sorted(mut self) -> SortedTuples {
        let d = self.num_dims;
        // Re-rank every dimension's ids so integer order == string order.
        for (dim, interner) in self.interners.iter_mut().enumerate() {
            let remap = interner.sorted_remap();
            for t in 0..self.measures.len() {
                let k = &mut self.keys[t * d + dim];
                *k = remap[*k as usize];
            }
        }
        // Sort tuple indices lexicographically by their key rows.
        let n = self.measures.len();
        let mut order: Vec<u32> = (0..n as u32).collect();
        let keys = &self.keys;
        order.sort_unstable_by(|&a, &b| {
            let ra = &keys[a as usize * d..a as usize * d + d];
            let rb = &keys[b as usize * d..b as usize * d + d];
            ra.cmp(rb)
        });
        // Emit in order, folding duplicates.
        let mut out_keys: Vec<ValueId> = Vec::with_capacity(self.keys.len());
        let mut out_measures: Vec<i64> = Vec::with_capacity(n);
        for &t in &order {
            let row = &self.keys[t as usize * d..t as usize * d + d];
            let m = self.agg.of_tuple(self.measures[t as usize]);
            let dup = out_measures
                .last()
                .is_some_and(|_| &out_keys[out_keys.len() - d..] == row);
            if dup {
                let last = out_measures.last_mut().expect("non-empty on dup");
                *last = self.agg.combine(*last, m);
            } else {
                out_keys.extend_from_slice(row);
                out_measures.push(m);
            }
        }
        SortedTuples {
            num_dims: d,
            keys: out_keys,
            measures: out_measures,
            interners: self.interners,
        }
    }
}

/// A sorted, deduplicated, id-ranked tuple batch ready for construction.
#[derive(Debug, Clone)]
pub struct SortedTuples {
    num_dims: usize,
    keys: Vec<ValueId>,
    measures: Vec<i64>,
    interners: Vec<Interner>,
}

impl SortedTuples {
    /// Number of distinct fact keys.
    pub fn len(&self) -> usize {
        self.measures.len()
    }

    /// Whether the batch is empty.
    pub fn is_empty(&self) -> bool {
        self.measures.is_empty()
    }

    /// Number of dimensions.
    pub fn num_dims(&self) -> usize {
        self.num_dims
    }

    /// The key row of tuple `t`.
    pub fn key(&self, t: usize) -> &[ValueId] {
        &self.keys[t * self.num_dims..(t + 1) * self.num_dims]
    }

    /// The (pre-aggregated) measure of tuple `t`.
    pub fn measure(&self, t: usize) -> i64 {
        self.measures[t]
    }

    /// Takes the per-dimension interners (passed on into the built cube).
    pub(crate) fn take_interners(&mut self) -> Vec<Interner> {
        std::mem::take(&mut self.interners)
    }

    /// Length of the common prefix between tuples `a` and `b`.
    pub fn common_prefix(&self, a: usize, b: usize) -> usize {
        let ka = self.key(a);
        let kb = self.key(b);
        ka.iter().zip(kb).take_while(|(x, y)| x == y).count()
    }

    /// Asserts the sorted/deduplicated invariants (debug builds and tests).
    pub fn check_invariants(&self) {
        for t in 1..self.len() {
            match self.key(t - 1).cmp(self.key(t)) {
                Ordering::Less => {}
                Ordering::Equal => panic!("duplicate key at tuple {t}"),
                Ordering::Greater => panic!("tuples out of order at {t}"),
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::schema::AggFn;

    fn schema3() -> CubeSchema {
        CubeSchema::new(["a", "b", "c"], "m")
    }

    #[test]
    fn sorts_lexicographically_by_string_order() {
        let mut ts = TupleSet::new(&schema3());
        ts.push(["z", "x", "y"], 1);
        ts.push(["a", "q", "y"], 2);
        ts.push(["a", "b", "y"], 3);
        let sorted = ts.into_sorted();
        sorted.check_invariants();
        assert_eq!(sorted.len(), 3);
        assert_eq!(sorted.measure(0), 3); // ("a","b","y")
        assert_eq!(sorted.measure(1), 2); // ("a","q","y")
        assert_eq!(sorted.measure(2), 1); // ("z","x","y")
    }

    #[test]
    fn duplicates_are_preaggregated() {
        let mut ts = TupleSet::new(&schema3());
        ts.push(["a", "b", "c"], 5);
        ts.push(["a", "b", "c"], 7);
        ts.push(["a", "b", "d"], 1);
        let sorted = ts.into_sorted();
        assert_eq!(sorted.len(), 2);
        assert_eq!(sorted.measure(0), 12);
        assert_eq!(sorted.measure(1), 1);
    }

    #[test]
    fn count_aggregation_ignores_measures() {
        let schema = CubeSchema::new(["a"], "m").with_agg(AggFn::Count);
        let mut ts = TupleSet::new(&schema);
        ts.push(["x"], 100);
        ts.push(["x"], 200);
        ts.push(["y"], 300);
        let sorted = ts.into_sorted();
        assert_eq!(sorted.measure(0), 2);
        assert_eq!(sorted.measure(1), 1);
    }

    #[test]
    fn min_max_aggregation() {
        let schema = CubeSchema::new(["a"], "m").with_agg(AggFn::Min);
        let mut ts = TupleSet::new(&schema);
        ts.push(["x"], 9);
        ts.push(["x"], 4);
        assert_eq!(ts.into_sorted().measure(0), 4);

        let schema = CubeSchema::new(["a"], "m").with_agg(AggFn::Max);
        let mut ts = TupleSet::new(&schema);
        ts.push(["x"], 9);
        ts.push(["x"], 4);
        assert_eq!(ts.into_sorted().measure(0), 9);
    }

    #[test]
    fn common_prefix() {
        let mut ts = TupleSet::new(&schema3());
        ts.push(["a", "b", "c"], 1);
        ts.push(["a", "b", "d"], 1);
        ts.push(["a", "e", "c"], 1);
        let s = ts.into_sorted();
        assert_eq!(s.common_prefix(0, 1), 2);
        assert_eq!(s.common_prefix(0, 2), 1);
        assert_eq!(s.common_prefix(0, 0), 3);
    }

    #[test]
    fn empty_set() {
        let s = TupleSet::new(&schema3()).into_sorted();
        assert!(s.is_empty());
        s.check_invariants();
    }

    #[test]
    #[should_panic(expected = "wrong number of dimension values")]
    fn short_row_panics() {
        let mut ts = TupleSet::new(&schema3());
        ts.push(["a", "b"], 1);
    }

    #[test]
    #[should_panic(expected = "too many dimension values")]
    fn long_row_panics() {
        let mut ts = TupleSet::new(&schema3());
        ts.push(["a", "b", "c", "d"], 1);
    }
}
