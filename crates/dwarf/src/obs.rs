//! Cube instrumentation handles (`dwarf.*`).
//!
//! Registered once on the global registry; call sites gate on
//! [`sc_obs::enabled`] so the disabled cost is a single relaxed load.

use sc_obs::{Counter, Histogram, Registry, SpanHandle};
use std::sync::OnceLock;

pub(crate) struct DwarfObs {
    pub build: SpanHandle,
    pub nodes: Counter,
    pub cells: Counter,
    pub tuples: Counter,
    pub coalesce_cache_hits: Counter,
    pub point_ns: Histogram,
    pub range_ns: Histogram,
}

pub(crate) fn dwarf() -> &'static DwarfObs {
    static OBS: OnceLock<DwarfObs> = OnceLock::new();
    OBS.get_or_init(|| {
        let r = Registry::global();
        DwarfObs {
            build: r.span("dwarf.build"),
            nodes: r.counter("dwarf.build.nodes"),
            cells: r.counter("dwarf.build.cells"),
            tuples: r.counter("dwarf.build.tuples"),
            coalesce_cache_hits: r.counter("dwarf.build.coalesce_cache_hits"),
            point_ns: r.histogram("dwarf.query.point_ns"),
            range_ns: r.histogram("dwarf.query.range_ns"),
        }
    })
}
