//! The Hierarchical-DWARF extension: dimension hierarchies with ROLLUP and
//! DRILL DOWN.
//!
//! Plain DWARF has no notion of dimension hierarchies; the paper's related
//! work (§6, citing Sismanis et al.'s "Hierarchical dwarfs for the rollup
//! cube") notes that XML-sourced cubes need them and sketches how the model
//! extends. We implement the flattening realization: each *logical*
//! dimension declares an ordered list of hierarchy levels
//! (`year > month > day`), and every level becomes a *physical* DWARF
//! dimension, coarsest first. Because DWARF materializes every group-by,
//! rolling up to any level is a point query with ALL in the finer levels —
//! no recomputation, exactly the property \[11\] is after.

use crate::cube::Dwarf;
use crate::query::{RangeSel, Selection};
use crate::schema::{AggFn, CubeSchema};
use crate::tuple::TupleSet;

/// A logical dimension with ordered hierarchy levels, coarsest first.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Hierarchy {
    /// Logical dimension name (e.g. `time`).
    pub name: String,
    /// Level names, coarsest first (e.g. `["year", "month", "day"]`).
    pub levels: Vec<String>,
}

impl Hierarchy {
    /// Creates a hierarchy. Panics on an empty level list.
    pub fn new<I, S>(name: impl Into<String>, levels: I) -> Self
    where
        I: IntoIterator<Item = S>,
        S: Into<String>,
    {
        let levels: Vec<String> = levels.into_iter().map(Into::into).collect();
        assert!(!levels.is_empty(), "hierarchy needs at least one level");
        Self {
            name: name.into(),
            levels,
        }
    }

    /// A flat (single-level) dimension.
    pub fn flat(name: impl Into<String>) -> Self {
        let name = name.into();
        Self {
            levels: vec![name.clone()],
            name,
        }
    }
}

/// A coordinate in a rollup query: a logical dimension fixed down to some
/// hierarchy depth.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct LevelCoord {
    /// Logical dimension name.
    pub dimension: String,
    /// Values for the leading levels, coarsest first. Fewer values than
    /// levels = rolled up at that depth.
    pub values: Vec<String>,
}

/// A cube over hierarchical dimensions.
///
/// Internally this is a plain [`Dwarf`] whose physical dimensions are the
/// concatenated hierarchy levels; this type owns the logical↔physical
/// mapping and exposes rollup/drilldown in logical terms.
#[derive(Debug, Clone)]
pub struct HierarchicalCube {
    hierarchies: Vec<Hierarchy>,
    cube: Dwarf,
}

/// Incremental builder for a [`HierarchicalCube`].
#[derive(Debug)]
pub struct HierarchicalBuilder {
    hierarchies: Vec<Hierarchy>,
    schema: CubeSchema,
    tuples: TupleSet,
}

impl HierarchicalBuilder {
    /// Starts a builder over logical dimensions.
    pub fn new<I>(hierarchies: I, measure: impl Into<String>, agg: AggFn) -> Self
    where
        I: IntoIterator<Item = Hierarchy>,
    {
        let hierarchies: Vec<Hierarchy> = hierarchies.into_iter().collect();
        assert!(!hierarchies.is_empty(), "at least one dimension required");
        let physical: Vec<String> = hierarchies
            .iter()
            .flat_map(|h| h.levels.iter().map(move |l| format!("{}.{}", h.name, l)))
            .collect();
        let schema = CubeSchema::new(physical, measure).with_agg(agg);
        let tuples = TupleSet::new(&schema);
        Self {
            hierarchies,
            schema,
            tuples,
        }
    }

    /// Appends a fact: one fully-specified value list per logical dimension.
    ///
    /// Panics if any dimension's value list does not cover every level.
    pub fn push(&mut self, coords: &[Vec<&str>], measure: i64) {
        assert_eq!(
            coords.len(),
            self.hierarchies.len(),
            "one coordinate list per logical dimension"
        );
        let mut flat: Vec<&str> = Vec::with_capacity(self.schema.num_dims());
        for (h, values) in self.hierarchies.iter().zip(coords) {
            assert_eq!(
                values.len(),
                h.levels.len(),
                "dimension {:?} needs {} level values",
                h.name,
                h.levels.len()
            );
            flat.extend(values.iter().copied());
        }
        self.tuples.push(flat, measure);
    }

    /// Builds the cube.
    pub fn build(self) -> HierarchicalCube {
        HierarchicalCube {
            hierarchies: self.hierarchies,
            cube: Dwarf::build(self.schema, self.tuples),
        }
    }
}

impl HierarchicalCube {
    /// The underlying flat DWARF.
    pub fn dwarf(&self) -> &Dwarf {
        &self.cube
    }

    /// The logical dimensions.
    pub fn hierarchies(&self) -> &[Hierarchy] {
        &self.hierarchies
    }

    fn hierarchy(&self, name: &str) -> Option<(usize, &Hierarchy)> {
        let mut offset = 0;
        for h in &self.hierarchies {
            if h.name == name {
                return Some((offset, h));
            }
            offset += h.levels.len();
        }
        None
    }

    /// ROLLUP: aggregate with each logical dimension fixed only down to the
    /// depth given by its coordinate (missing dimensions roll all the way
    /// up).
    ///
    /// Returns `None` when a named value does not exist / nothing matches.
    pub fn rollup(&self, coords: &[LevelCoord]) -> Option<i64> {
        let mut sel: Vec<Selection> = vec![Selection::All; self.cube.num_dims()];
        for c in coords {
            let (offset, h) = self.hierarchy(&c.dimension)?;
            assert!(
                c.values.len() <= h.levels.len(),
                "dimension {:?} has only {} levels",
                c.dimension,
                h.levels.len()
            );
            for (i, v) in c.values.iter().enumerate() {
                sel[offset + i] = Selection::value(v.clone());
            }
        }
        self.cube.point(&sel)
    }

    /// DRILL DOWN: given a rollup coordinate, enumerate the children one
    /// level finer together with their aggregates.
    ///
    /// Returns `(child value, aggregate)` pairs, sorted by value.
    pub fn drilldown(&self, coords: &[LevelCoord], dimension: &str) -> Vec<(String, i64)> {
        let Some((offset, h)) = self.hierarchy(dimension) else {
            return Vec::new();
        };
        let fixed_depth = coords
            .iter()
            .find(|c| c.dimension == dimension)
            .map(|c| c.values.len())
            .unwrap_or(0);
        if fixed_depth >= h.levels.len() {
            return Vec::new(); // Already at the finest level.
        }
        // Region: everything matching `coords`, sliced per child value of
        // the next level of `dimension`.
        let mut region: Vec<RangeSel> = vec![RangeSel::All; self.cube.num_dims()];
        for c in coords {
            let Some((off, _)) = self.hierarchy(&c.dimension) else {
                return Vec::new();
            };
            for (i, v) in c.values.iter().enumerate() {
                region[off + i] = RangeSel::value(v.clone());
            }
        }
        let child_dim = offset + fixed_depth;
        let interner = self.cube.interner(child_dim);
        let mut out = Vec::new();
        for (_, value) in interner.iter() {
            let mut r = region.clone();
            r[child_dim] = RangeSel::value(value);
            if let Some(total) = self.cube.range(&r) {
                out.push((value.to_string(), total));
            }
        }
        debug_assert!(out.windows(2).all(|w| w[0].0 < w[1].0));
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn bike_cube() -> HierarchicalCube {
        let mut b = HierarchicalBuilder::new(
            [
                Hierarchy::new("time", ["year", "month", "day"]),
                Hierarchy::new("geo", ["city", "station"]),
            ],
            "hires",
            AggFn::Sum,
        );
        b.push(&[vec!["2015", "11", "02"], vec!["Dublin", "Fenian St"]], 4);
        b.push(&[vec!["2015", "11", "02"], vec!["Dublin", "Smithfield"]], 6);
        b.push(&[vec!["2015", "11", "03"], vec!["Dublin", "Fenian St"]], 1);
        b.push(&[vec!["2015", "12", "01"], vec!["Cork", "Patrick St"]], 9);
        b.push(&[vec!["2016", "01", "05"], vec!["Dublin", "Fenian St"]], 2);
        b.build()
    }

    fn coord(dim: &str, values: &[&str]) -> LevelCoord {
        LevelCoord {
            dimension: dim.into(),
            values: values.iter().map(|s| s.to_string()).collect(),
        }
    }

    #[test]
    fn physical_schema_flattens_levels() {
        let c = bike_cube();
        assert_eq!(c.dwarf().num_dims(), 5);
        assert_eq!(c.dwarf().schema().dimension(0), "time.year");
        assert_eq!(c.dwarf().schema().dimension(4), "geo.station");
    }

    #[test]
    fn rollup_at_every_depth() {
        let c = bike_cube();
        // Grand total.
        assert_eq!(c.rollup(&[]), Some(22));
        // By year.
        assert_eq!(c.rollup(&[coord("time", &["2015"])]), Some(20));
        assert_eq!(c.rollup(&[coord("time", &["2016"])]), Some(2));
        // By year+month.
        assert_eq!(c.rollup(&[coord("time", &["2015", "11"])]), Some(11));
        // Cross-dimension.
        assert_eq!(
            c.rollup(&[coord("time", &["2015"]), coord("geo", &["Dublin"])]),
            Some(11)
        );
        // Full depth both sides.
        assert_eq!(
            c.rollup(&[
                coord("time", &["2015", "11", "02"]),
                coord("geo", &["Dublin", "Fenian St"])
            ]),
            Some(4)
        );
    }

    #[test]
    fn rollup_missing_value_is_none() {
        let c = bike_cube();
        assert_eq!(c.rollup(&[coord("time", &["2020"])]), None);
        assert_eq!(c.rollup(&[coord("nope", &["x"])]), None);
    }

    #[test]
    fn drilldown_enumerates_children() {
        let c = bike_cube();
        assert_eq!(
            c.drilldown(&[], "time"),
            vec![("2015".to_string(), 20), ("2016".to_string(), 2)]
        );
        assert_eq!(
            c.drilldown(&[coord("time", &["2015"])], "time"),
            vec![("11".to_string(), 11), ("12".to_string(), 9)]
        );
        // Drill into geo while time is constrained.
        assert_eq!(
            c.drilldown(&[coord("time", &["2015", "11"])], "geo"),
            vec![("Dublin".to_string(), 11)]
        );
    }

    #[test]
    fn drilldown_below_finest_level_is_empty() {
        let c = bike_cube();
        assert!(c
            .drilldown(&[coord("geo", &["Dublin", "Fenian St"])], "geo")
            .is_empty());
    }

    #[test]
    #[should_panic(expected = "needs 3 level values")]
    fn push_requires_full_depth() {
        let mut b =
            HierarchicalBuilder::new([Hierarchy::new("time", ["y", "m", "d"])], "m", AggFn::Sum);
        b.push(&[vec!["2015", "11"]], 1);
    }

    #[test]
    fn flat_hierarchy_behaves_like_plain_dimension() {
        let mut b = HierarchicalBuilder::new([Hierarchy::flat("station")], "hires", AggFn::Sum);
        b.push(&[vec!["a"]], 1);
        b.push(&[vec!["b"]], 2);
        let c = b.build();
        assert_eq!(c.rollup(&[]), Some(3));
        assert_eq!(c.rollup(&[coord("station", &["b"])]), Some(2));
    }
}
