//! Cube schema: dimension names, measure name, aggregate function.

use std::fmt;

/// The aggregate function applied to measures.
///
/// DWARF materializes one aggregate per cell, so the function must be
/// commutative and associative (it is applied during both duplicate
/// pre-aggregation and suffix coalescing).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum AggFn {
    /// Sum of measures (the paper's aggregate).
    #[default]
    Sum,
    /// Number of source tuples (the measure value is ignored).
    Count,
    /// Minimum measure.
    Min,
    /// Maximum measure.
    Max,
}

impl AggFn {
    /// The contribution of one source tuple's measure.
    #[inline]
    pub fn of_tuple(self, measure: i64) -> i64 {
        match self {
            AggFn::Sum | AggFn::Min | AggFn::Max => measure,
            AggFn::Count => 1,
        }
    }

    /// Combines two partial aggregates.
    #[inline]
    pub fn combine(self, a: i64, b: i64) -> i64 {
        match self {
            AggFn::Sum | AggFn::Count => a + b,
            AggFn::Min => a.min(b),
            AggFn::Max => a.max(b),
        }
    }

    /// Combines an iterator of partial aggregates (at least one element).
    pub fn combine_all(self, mut values: impl Iterator<Item = i64>) -> Option<i64> {
        let first = values.next()?;
        Some(values.fold(first, |acc, v| self.combine(acc, v)))
    }

    /// SQL-ish name, used by the dot renderer and reports.
    pub fn name(self) -> &'static str {
        match self {
            AggFn::Sum => "SUM",
            AggFn::Count => "COUNT",
            AggFn::Min => "MIN",
            AggFn::Max => "MAX",
        }
    }
}

impl fmt::Display for AggFn {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.name())
    }
}

/// Schema of a cube: an ordered list of dimensions plus one measure.
///
/// The paper's input tuples take the form
/// `(dimension_1, ..., dimension_n, measure)`; the schema names those
/// positions. Dimension order matters in a DWARF (it is the level order),
/// and the convention — which the bike datasets follow — is highest
/// cardinality first, which minimizes structure size.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CubeSchema {
    /// Dimension names, level 0 first.
    dimensions: Vec<String>,
    /// Measure name.
    measure: String,
    /// Aggregate function.
    agg: AggFn,
}

impl CubeSchema {
    /// Creates a schema with the default [`AggFn::Sum`] aggregate.
    ///
    /// Panics if `dimensions` is empty or contains duplicates — a schema is
    /// static configuration, so this is a programming error.
    pub fn new<I, S>(dimensions: I, measure: impl Into<String>) -> Self
    where
        I: IntoIterator<Item = S>,
        S: Into<String>,
    {
        let dimensions: Vec<String> = dimensions.into_iter().map(Into::into).collect();
        assert!(
            !dimensions.is_empty(),
            "a cube needs at least one dimension"
        );
        for (i, d) in dimensions.iter().enumerate() {
            assert!(
                !dimensions[..i].contains(d),
                "duplicate dimension name {d:?}"
            );
        }
        Self {
            dimensions,
            measure: measure.into(),
            agg: AggFn::Sum,
        }
    }

    /// Sets the aggregate function.
    pub fn with_agg(mut self, agg: AggFn) -> Self {
        self.agg = agg;
        self
    }

    /// Number of dimensions (`d`).
    pub fn num_dims(&self) -> usize {
        self.dimensions.len()
    }

    /// Dimension names in level order.
    pub fn dimensions(&self) -> &[String] {
        &self.dimensions
    }

    /// Name of dimension `i`.
    pub fn dimension(&self, i: usize) -> &str {
        &self.dimensions[i]
    }

    /// Index of a dimension by name.
    pub fn dimension_index(&self, name: &str) -> Option<usize> {
        self.dimensions.iter().position(|d| d == name)
    }

    /// Measure name.
    pub fn measure(&self) -> &str {
        &self.measure
    }

    /// Aggregate function.
    pub fn agg(&self) -> AggFn {
        self.agg
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn agg_semantics() {
        assert_eq!(AggFn::Sum.combine(2, 3), 5);
        assert_eq!(AggFn::Count.combine(2, 3), 5);
        assert_eq!(AggFn::Min.combine(2, 3), 2);
        assert_eq!(AggFn::Max.combine(2, 3), 3);
        assert_eq!(AggFn::Sum.of_tuple(7), 7);
        assert_eq!(AggFn::Count.of_tuple(7), 1);
        assert_eq!(AggFn::Sum.combine_all([1, 2, 3].into_iter()), Some(6));
        assert_eq!(AggFn::Min.combine_all(std::iter::empty()), None);
    }

    #[test]
    fn schema_accessors() {
        let s = CubeSchema::new(["a", "b"], "m").with_agg(AggFn::Max);
        assert_eq!(s.num_dims(), 2);
        assert_eq!(s.dimension(1), "b");
        assert_eq!(s.dimension_index("b"), Some(1));
        assert_eq!(s.dimension_index("z"), None);
        assert_eq!(s.measure(), "m");
        assert_eq!(s.agg(), AggFn::Max);
    }

    #[test]
    #[should_panic(expected = "at least one dimension")]
    fn empty_dimensions_panic() {
        CubeSchema::new(Vec::<String>::new(), "m");
    }

    #[test]
    #[should_panic(expected = "duplicate dimension")]
    fn duplicate_dimensions_panic() {
        CubeSchema::new(["a", "a"], "m");
    }
}
