#!/usr/bin/env bash
# Network benchmark: drives the sc-server front door over loopback and
# records the numbers as BENCH_10.json in the repo root.
#
#   scripts/bench.sh [clients] [rows]
#
# Defaults: 8 clients, 4000 rows across 2 tenants. Absolute numbers are
# hardware-dependent; the committed BENCH_10.json records one run's shape
# (ingest rows/sec, cold vs warm point-SELECT p50/p99, full-scan COUNT and
# grouped-aggregate latency through the operator pipeline, contended mixed
# read/write throughput, put-latency tails with inline vs background
# compaction, and crash-recovery WAL-replay time on reopen) for comparison.
set -euo pipefail
cd "$(dirname "$0")/.."

CLIENTS="${1:-8}"
ROWS="${2:-4000}"

cargo run --release -p sc-bench --bin repro -- \
    netbench --clients "$CLIENTS" --rows "$ROWS" --out BENCH_10.json

echo "bench.sh: wrote BENCH_10.json"
