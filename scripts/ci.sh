#!/usr/bin/env bash
# Tier-1 verification: formatting, offline release build, full test suite.
# Runs with zero network access — the workspace has no external
# dependencies (criterion benches live in the excluded
# crates/criterion-benches package).
set -euo pipefail
cd "$(dirname "$0")/.."

# Deprecated APIs (Db::in_memory / with_options / recover) are build errors:
# call sites must stay on the typed OpenOptions path.
export RUSTFLAGS="${RUSTFLAGS:-} -D deprecated"

echo "==> cargo fmt --check"
cargo fmt --check

echo "==> cargo build --release"
cargo build --release

echo "==> cargo test -q"
cargo test -q

echo "==> concurrency tier (release, seeded yield injector)"
# Release mode frees the real interleavings; SC_NOSQL_YIELD arms the
# deterministic schedule perturber at engine synchronization points so the
# writer/reader races, the concurrent crash matrix, and the background
# compaction pool (concurrent flushes + merges + pinned snapshot reads)
# explore far more schedules than free-running threads would.
for yield_seed in 7 1311; do
    SC_NOSQL_YIELD="$yield_seed" \
        cargo test -q --release -p sc-nosql \
        --test concurrent --test crash_matrix --test background_compaction
    SC_NOSQL_YIELD="$yield_seed" \
        cargo test -q --release -p sc-obs --test ring_concurrency
done

echo "==> crash-matrix smoke (64 points, sequential + concurrent sweeps)"
cargo run --release -p sc-bench --bin repro -- crashtest --points 64

echo "==> observability smoke (repro obs emits a JSON exposition)"
obs_out="$(cargo run --release -p sc-bench --bin repro -- obs)"
echo "$obs_out" | grep -q '"histograms"' || {
    echo "ci.sh: repro obs produced no JSON exposition" >&2
    exit 1
}

echo "==> sqllogictest tier (golden .slt scripts, memtable + flushed + compacted)"
cargo test -q --release -p sc-nosql --test sqllogic

echo "==> store-backed query smoke (warm identical query fetches zero rows)"
query_out="$(cargo run --release -p sc-bench --bin repro -- query --scale 0.02 --explain)"
# EXPLAIN smoke: a single-pk point query must plan to the bloom-checked
# point-scan operator, never a full scan.
echo "$query_out" | grep -q 'PointScan smartcity.dwarf_node key=.* (bloom+fence checked)' || {
    echo "ci.sh: EXPLAIN of a pk point query does not name PointScan" >&2
    exit 1
}
explain_tree="$(echo "$query_out" | sed -n '/EXPLAIN SELECT childrenIds/,/^$/p')"
if echo "$explain_tree" | grep -q 'FullScan'; then
    echo "ci.sh: EXPLAIN of a pk point query fell back to a full scan" >&2
    exit 1
fi
echo "$query_out" | grep -q 'warm point query: store rows fetched 0' || {
    echo "ci.sh: repro query did not report a zero-fetch warm query" >&2
    exit 1
}
echo "$query_out" | grep -q 'absent point lookups beyond the key fences: data blocks read 0' || {
    echo "ci.sh: absent-key point lookups read data blocks (fence/filter regression)" >&2
    exit 1
}

echo "==> server smoke (loopback round trip + metrics scrape + drained shutdown)"
serve_out="$(cargo run --release -p sc-bench --bin repro -- serve --smoke)"
echo "$serve_out" | grep -q 'server smoke: round-trip ok' || {
    echo "ci.sh: repro serve --smoke failed its INSERT/SELECT round trip" >&2
    exit 1
}
echo "$serve_out" | grep -q 'server smoke: metrics ok (server_requests present' || {
    echo "ci.sh: /metrics scrape missing the server_requests series" >&2
    exit 1
}
echo "$serve_out" | grep -q 'server smoke: traces ok' || {
    echo "ci.sh: /debug/traces retained no trace or its Chrome export failed" >&2
    exit 1
}
echo "$serve_out" | grep -q 'server smoke: shutdown ok' || {
    echo "ci.sh: server did not shut down cleanly" >&2
    exit 1
}

echo "ci.sh: all green"
