//! The paper's §5.1 qualitative claims, asserted at test scale.
//!
//! Absolute numbers belong to the authors' testbed; these tests pin the
//! *relationships* the paper reports — which schema is biggest, which
//! loader is slowest, why — so a regression in any engine or model that
//! would change the reproduction's shape fails CI.

use smartcube::core::models::{ModelKind, StoreReport};
use smartcube::core::MappedDwarf;
use smartcube::datagen::{BikesGenerator, DatasetSpec};
use smartcube::dwarf::Dwarf;
use smartcube::ingest::Window;
use std::collections::HashMap;

/// One shared run at a scale big enough for the orderings to stabilize.
fn run_all_models() -> (Dwarf, HashMap<&'static str, StoreReport>) {
    let spec = DatasetSpec::for_window(Window::Day).scaled_spec(0.2);
    let tuples = BikesGenerator::tuples(spec);
    let cube = Dwarf::build(BikesGenerator::cube_def().schema(), tuples);
    let mapped = MappedDwarf::new(&cube);
    let mut out = HashMap::new();
    for kind in ModelKind::ALL {
        let mut model = kind.build().expect("schema");
        let report = model.store(&mapped, &cube, false).expect("store");
        out.insert(kind.label(), report);
    }
    (cube, out)
}

#[test]
fn table4_size_relationships_hold() {
    let (_, reports) = run_all_models();
    let size = |k: &str| reports[k].size.as_bytes();
    // "MySQL-DWARF performed worst overall ... due to its relational design."
    assert!(
        size("MySQL-DWARF") > size("MySQL-Min"),
        "edge tables must inflate MySQL-DWARF ({} vs {})",
        reports["MySQL-DWARF"].size,
        reports["MySQL-Min"].size
    );
    assert!(size("MySQL-DWARF") > size("NoSQL-DWARF"));
    assert!(size("MySQL-DWARF") > size("NoSQL-Min"));
    // "the presence of these indexes increase the resulting ... size of the
    // cube" — NoSQL-Min vs NoSQL-DWARF.
    assert!(
        size("NoSQL-Min") > size("NoSQL-DWARF"),
        "secondary indexes must inflate NoSQL-Min ({} vs {})",
        reports["NoSQL-Min"].size,
        reports["NoSQL-DWARF"].size
    );
    // "The MySQL-Min schema performed best for the small datasets" — true
    // in the paper because Cassandra's per-cell overhead dominated small
    // cubes. Our v3 columnar SSTables (varint-delta ints, dictionary text)
    // eliminate exactly that overhead, so the NoSQL footprints drop *below*
    // MySQL-Min — the one Table 4 ordering that deliberately inverts
    // (DESIGN.md deviation #9). Pin the inversion: a codec regression that
    // silently fell back to row-major blocks would flip it back.
    assert!(
        size("NoSQL-DWARF") < size("MySQL-Min"),
        "columnar NoSQL-DWARF must undercut MySQL-Min ({} vs {})",
        reports["NoSQL-DWARF"].size,
        reports["MySQL-Min"].size
    );
}

#[test]
fn table5_time_relationships_hold() {
    let (_, reports) = run_all_models();
    let time = |k: &str| reports[k].elapsed;
    // "The NoSQL-Min schema performed worst overall" (wide-partition index
    // read-modify-writes).
    assert!(
        time("NoSQL-Min") > time("NoSQL-DWARF"),
        "index maintenance must slow NoSQL-Min ({:?} vs {:?})",
        time("NoSQL-Min"),
        time("NoSQL-DWARF")
    );
    // "The MySQL-DWARF schema had the second largest insertion time ...
    // a large volume of inserts is necessary" — per-edge rows.
    assert!(
        time("MySQL-DWARF") > time("MySQL-Min"),
        "edge rows must slow MySQL-DWARF ({:?} vs {:?})",
        time("MySQL-DWARF"),
        time("MySQL-Min")
    );
    // "The NoSQL-DWARF schema performed best."
    assert!(
        time("NoSQL-DWARF") < time("MySQL-DWARF"),
        "NoSQL-DWARF must beat MySQL-DWARF ({:?} vs {:?})",
        time("NoSQL-DWARF"),
        time("MySQL-DWARF")
    );
}

#[test]
fn set_datatype_collapses_edges_into_single_statements() {
    // "with Cassandra, this construct can be described using a set datatype
    // which can complete in one insert operation."
    let (cube, reports) = run_all_models();
    let mapped = MappedDwarf::new(&cube);
    let edge_count: usize = mapped
        .nodes
        .iter()
        .map(|n| n.child_cell_ids.len())
        .sum::<usize>()
        + mapped
            .cells
            .iter()
            .filter(|c| c.pointer_node.is_some())
            .count();
    // NoSQL-DWARF: one statement per node + per cell + schema row.
    assert_eq!(
        reports["NoSQL-DWARF"].statements,
        1 + mapped.node_count() + mapped.cell_count()
    );
    // MySQL-DWARF (batch=1): those same rows PLUS one per edge.
    assert_eq!(
        reports["MySQL-DWARF"].statements,
        1 + mapped.node_count() + mapped.cell_count() + edge_count
    );
    assert!(edge_count > mapped.cell_count(), "edges dominate");
}

#[test]
fn node_construct_absence_shrinks_min_layouts() {
    // NoSQL-Min/MySQL-Min store no node rows at all (§5: "the construct of
    // a dwarf node does not need to be stored").
    let (_, reports) = run_all_models();
    assert_eq!(reports["NoSQL-Min"].node_rows, 0);
    assert_eq!(reports["MySQL-Min"].node_rows, 0);
    assert!(reports["NoSQL-DWARF"].node_rows > 0);
    assert!(reports["MySQL-DWARF"].node_rows > 0);
}

#[test]
fn dwarf_storage_stays_structure_bounded() {
    // §5.1's storage headline rests on the DWARF materializing all 2^8
    // group-bys while staying linear in the fact count. Absolute B/tuple
    // differs from the paper (we deliberately do not model Cassandra's
    // SSTable compression — DESIGN.md deviation #5), so the assertions pin
    // the structural relationships instead: cells per tuple stay bounded
    // by coalescing, and bytes per tuple stay within a small constant.
    let spec = DatasetSpec::for_window(Window::Day).scaled_spec(0.5);
    let cube = Dwarf::build(
        BikesGenerator::cube_def().schema(),
        BikesGenerator::tuples(spec),
    );
    // A fully materialized 8-dim cube would need ~2^8 aggregates per fact;
    // coalescing keeps the stored structure to a handful of cells each.
    let mapped = MappedDwarf::new(&cube);
    let cells_per_tuple = mapped.cell_count() as f64 / cube.tuple_count() as f64;
    assert!(
        cells_per_tuple < 8.0,
        "coalescing failed: {cells_per_tuple:.1} cells/tuple"
    );
    let mut model = ModelKind::NosqlDwarf.build().expect("schema");
    let report = model.store(&mapped, &cube, false).expect("store");
    let per_tuple = report.size.as_bytes() as f64 / cube.tuple_count() as f64;
    assert!(
        per_tuple < 2_000.0,
        "stored {per_tuple:.0} B/tuple exceeds the uncompressed bound"
    );
    assert!(cube.cell_count() > cube.tuple_count());
}
