//! Window-partitioned ingestion: the paper's evaluation slices the bike
//! feed into Day/Week/... cubes; this test drives that flow through the
//! public APIs — one warehouse window per period, closed as the stream
//! crosses the boundary.

use smartcube::core::models::ModelKind;
use smartcube::core::CubeWarehouse;
use smartcube::datagen::{BikesGenerator, BikesSpec};
use smartcube::dwarf::Selection;
use smartcube::ingest::{DateTime, Window};

#[test]
fn stream_splits_into_daily_cubes() {
    // Two days of snapshots, 10 stations, 400 observations.
    let spec = BikesSpec {
        seed: 5,
        stations: 10,
        start: DateTime::parse("2015-11-01T00:00:00").unwrap(),
        duration_minutes: 2 * 24 * 60,
        target_tuples: 400,
    };
    let mut warehouse = CubeWarehouse::new(
        BikesGenerator::cube_def(),
        ModelKind::NosqlDwarf.build().expect("schema"),
    );
    let window = Window::Day;
    let mut window_start = spec.start;
    let mut cubes = Vec::new();
    for snap in BikesGenerator::new(spec) {
        if !window.contains(window_start, snap.time) {
            let (cube, _) = warehouse.close_window(false).expect("close window");
            cubes.push(cube);
            window_start = window.end(window_start);
        }
        warehouse.ingest(&snap.xml).expect("feed");
    }
    let (last, _) = warehouse.close_window(false).expect("close last");
    cubes.push(last);

    assert_eq!(cubes.len(), 2, "two day windows");
    // Each daily cube only contains its own day.
    for (i, cube) in cubes.iter().enumerate() {
        let day = format!("{:02}", 1 + i);
        let mut sel = vec![Selection::All; 8];
        sel[2] = Selection::value(day.clone());
        assert!(cube.point(&sel).is_some(), "day {day} present in cube {i}");
        let other = format!("{:02}", 2 - i);
        sel[2] = Selection::value(other.clone());
        assert!(
            cube.point(&sel).is_none(),
            "day {other} must not leak into cube {i}"
        );
    }
    // Both windows are stored with distinct ids and rebuild cleanly.
    assert_eq!(warehouse.stored().len(), 2);
    let ids: Vec<i64> = warehouse.stored().iter().map(|r| r.schema_id).collect();
    assert_ne!(ids[0], ids[1]);
    for (id, cube) in ids.iter().zip(&cubes) {
        let back = warehouse.rebuild(*id).expect("rebuild");
        assert_eq!(back.extract_tuples(), cube.extract_tuples());
    }
}

#[test]
fn merged_daily_cubes_equal_one_big_cube() {
    let make_spec = || BikesSpec {
        seed: 6,
        stations: 8,
        start: DateTime::parse("2015-11-01T00:00:00").unwrap(),
        duration_minutes: 2 * 24 * 60,
        target_tuples: 300,
    };
    // One cube over the whole stream...
    let mut all_pipeline = smartcube::ingest::StreamPipeline::new(BikesGenerator::cube_def());
    for snap in BikesGenerator::new(make_spec()) {
        all_pipeline.ingest(&snap.xml).unwrap();
    }
    let whole = all_pipeline.build_cube();
    // ...versus per-day cubes merged afterwards (the maintenance pattern).
    let window = Window::Day;
    let start = make_spec().start;
    let mut day1 = smartcube::ingest::StreamPipeline::new(BikesGenerator::cube_def());
    let mut day2 = smartcube::ingest::StreamPipeline::new(BikesGenerator::cube_def());
    for snap in BikesGenerator::new(make_spec()) {
        if window.contains(start, snap.time) {
            day1.ingest(&snap.xml).unwrap();
        } else {
            day2.ingest(&snap.xml).unwrap();
        }
    }
    let merged = day1.build_cube().merge(&day2.build_cube());
    assert_eq!(merged.extract_tuples(), whole.extract_tuples());
}
