//! Cross-engine parity: the same logical data stored through CQL and SQL
//! text must be readable back identically, and engine size accounting must
//! be self-consistent.

use smartcube::nosql;
use smartcube::relational;

#[test]
fn same_rows_through_both_query_languages() {
    let mut ndb = nosql::Db::open(nosql::OpenOptions::default()).unwrap();
    ndb.execute_cql("CREATE KEYSPACE k").unwrap();
    ndb.execute_cql("CREATE TABLE k.t (id int, name text, ok boolean, PRIMARY KEY (id))")
        .unwrap();
    let mut rdb = relational::Db::in_memory();
    rdb.execute_sql("CREATE DATABASE k").unwrap();
    rdb.execute_sql("CREATE TABLE k.t (id INT, name TEXT, ok BOOL, PRIMARY KEY (id))")
        .unwrap();
    for i in 0..50i64 {
        ndb.execute_cql(&format!(
            "INSERT INTO k.t (id, name, ok) VALUES ({i}, 'row {i}', {})",
            i % 2 == 0
        ))
        .unwrap();
        rdb.execute_sql(&format!(
            "INSERT INTO k.t (id, name, ok) VALUES ({i}, 'row {i}', {})",
            if i % 2 == 0 { "TRUE" } else { "FALSE" }
        ))
        .unwrap();
    }
    for i in [0i64, 7, 49] {
        let n = ndb
            .execute_cql(&format!("SELECT name, ok FROM k.t WHERE id = {i}"))
            .unwrap();
        let r = rdb
            .execute_sql(&format!("SELECT name, ok FROM k.t WHERE id = {i}"))
            .unwrap();
        let nrow = n.first().unwrap();
        assert_eq!(
            nrow.get_text("name").unwrap(),
            r.rows[0][0].as_text().unwrap()
        );
        assert_eq!(
            nrow.get_bool("ok").unwrap(),
            r.rows[0][1].as_bool().unwrap()
        );
    }
    // Full scans agree on cardinality.
    assert_eq!(
        ndb.execute_cql("SELECT * FROM k.t").unwrap().len(),
        rdb.execute_sql("SELECT * FROM k.t").unwrap().rows.len(),
    );
}

#[test]
fn size_accounting_is_monotone_and_flush_stable() {
    let mut ndb = nosql::Db::open(nosql::OpenOptions::default()).unwrap();
    ndb.execute_cql("CREATE KEYSPACE k").unwrap();
    ndb.execute_cql("CREATE TABLE k.t (id int, v text, PRIMARY KEY (id))")
        .unwrap();
    let mut last = 0;
    for round in 0..3 {
        for i in 0..200 {
            ndb.execute_cql(&format!(
                "INSERT INTO k.t (id, v) VALUES ({}, 'value {i}')",
                round * 1000 + i
            ))
            .unwrap();
        }
        ndb.flush_all().unwrap();
        let size = ndb.keyspace_size("k").unwrap().as_bytes();
        assert!(size > last, "size must grow: {size} !> {last}");
        last = size;
    }

    let mut rdb = relational::Db::in_memory();
    rdb.execute_sql("CREATE DATABASE k").unwrap();
    rdb.execute_sql("CREATE TABLE k.t (id INT, v TEXT, PRIMARY KEY (id))")
        .unwrap();
    let mut last = 0;
    for round in 0..3 {
        for i in 0..200 {
            rdb.execute_sql(&format!(
                "INSERT INTO k.t (id, v) VALUES ({}, 'value {i}')",
                round * 1000 + i
            ))
            .unwrap();
        }
        rdb.checkpoint_all().unwrap();
        let size = rdb.database_size("k").unwrap().as_bytes();
        assert!(size >= last, "size must not shrink: {size} < {last}");
        last = size;
    }
}

#[test]
fn nosql_durability_roundtrip() {
    // Insert without flushing, recover from the commit log, data survives.
    let vfs = smartcube::storage::Vfs::memory();
    {
        let mut db = nosql::Db::open(nosql::OpenOptions::default().vfs(vfs.clone())).unwrap();
        db.execute_cql("CREATE KEYSPACE k").unwrap();
        db.execute_cql("CREATE TABLE k.t (id int, v text, PRIMARY KEY (id))")
            .unwrap();
        db.execute_cql("INSERT INTO k.t (id, v) VALUES (1, 'survives')")
            .unwrap();
    }
    let mut db = nosql::Db::open(nosql::OpenOptions::default().vfs(vfs).recover(true)).unwrap();
    let r = db.execute_cql("SELECT v FROM k.t WHERE id = 1").unwrap();
    assert_eq!(r.first().unwrap().get_text("v").unwrap(), "survives");
}

#[test]
fn relational_redo_log_grows_then_truncates() {
    let mut db = relational::Db::in_memory();
    db.execute_sql("CREATE DATABASE k").unwrap();
    db.execute_sql("CREATE TABLE k.t (id INT, PRIMARY KEY (id))")
        .unwrap();
    for i in 0..100 {
        db.execute_sql(&format!("INSERT INTO k.t (id) VALUES ({i})"))
            .unwrap();
    }
    assert!(db.redo_log_size() > 0, "WAL must receive row images");
    db.checkpoint_all().unwrap();
    assert_eq!(db.redo_log_size(), 0, "checkpoint truncates the WAL");
}
