//! End-to-end integration: XML feed → ingest → DWARF → every store model →
//! rebuild → queries, all agreeing.

use smartcube::core::models::{ModelKind, SchemaModel};
use smartcube::core::{MappedDwarf, StoreBackedCube};
use smartcube::datagen::{BikesGenerator, BikesSpec};
use smartcube::dwarf::{Dwarf, RangeSel, Selection};
use smartcube::ingest::StreamPipeline;

fn day_cube() -> Dwarf {
    let spec = BikesSpec {
        seed: 99,
        stations: 25,
        target_tuples: 1_000,
        ..BikesSpec::small()
    };
    let mut pipeline = StreamPipeline::new(BikesGenerator::cube_def());
    for snap in BikesGenerator::new(spec) {
        pipeline.ingest(&snap.xml).expect("well-formed feed");
    }
    pipeline.build_cube()
}

#[test]
fn feed_to_cube_to_all_stores_and_back() {
    let cube = day_cube();
    cube.validate();
    assert_eq!(cube.num_dims(), 8);
    let mapped = MappedDwarf::new(&cube);
    let expected = cube.extract_tuples();
    for kind in ModelKind::ALL {
        let mut model = kind.build().expect("schema");
        let report = model.store(&mapped, &cube, false).expect("store");
        assert!(report.size.as_bytes() > 0, "{kind}: zero size");
        assert!(report.statements > 0, "{kind}: no statements");
        let rebuilt = model.rebuild(report.schema_id).expect("rebuild");
        assert_eq!(rebuilt.extract_tuples(), expected, "{kind}: facts differ");
        assert_eq!(rebuilt.schema(), cube.schema(), "{kind}: schema differs");
        rebuilt.validate();
    }
}

#[test]
fn all_models_agree_on_queries_after_rebuild() {
    let cube = day_cube();
    let mapped = MappedDwarf::new(&cube);
    let selections: Vec<Vec<Selection>> = vec![
        vec![Selection::All; 8],
        {
            let mut s = vec![Selection::All; 8];
            s[4] = Selection::value("Dublin 2");
            s
        },
        {
            let mut s = vec![Selection::All; 8];
            s[6] = Selection::value("open");
            s[3] = Selection::value("12");
            s
        },
    ];
    let expected: Vec<Option<i64>> = selections.iter().map(|s| cube.point(s)).collect();
    for kind in ModelKind::ALL {
        let mut model = kind.build().expect("schema");
        let report = model.store(&mapped, &cube, false).expect("store");
        let rebuilt = model.rebuild(report.schema_id).expect("rebuild");
        for (sel, want) in selections.iter().zip(&expected) {
            assert_eq!(rebuilt.point(sel), *want, "{kind}: {sel:?}");
        }
    }
}

#[test]
fn store_backed_queries_agree_with_memory() {
    let cube = day_cube();
    let mapped = MappedDwarf::new(&cube);
    let mut model = smartcube::core::models::NosqlDwarfModel::in_memory();
    model.create_schema().expect("schema");
    let report = model.store(&mapped, &cube, false).expect("store");
    let mut sbc = StoreBackedCube::open(&mut model, report.schema_id).expect("open");
    // Spot-check a spread of group-bys.
    for area in ["Dublin 1", "Dublin 2", "Dublin 7", "Nowhere"] {
        let mut sel = vec![Selection::All; 8];
        sel[4] = Selection::value(area);
        assert_eq!(sbc.point(&sel).expect("query"), cube.point(&sel), "{area}");
    }
}

#[test]
fn subcube_survives_a_store_roundtrip_with_is_cube_flag() {
    let cube = day_cube();
    let mut region = vec![RangeSel::All; 8];
    region[4] = RangeSel::value("Dublin 2");
    let sub = cube.subcube(&region);
    assert!(sub.tuple_count() < cube.tuple_count());
    let mapped = MappedDwarf::new(&sub);
    let mut model = ModelKind::NosqlDwarf.build().expect("schema");
    let report = model.store(&mapped, &sub, true).expect("store sub-cube");
    let rebuilt = model.rebuild(report.schema_id).expect("rebuild");
    assert_eq!(rebuilt.extract_tuples(), sub.extract_tuples());
}

#[test]
fn incremental_update_then_store() {
    let cube = day_cube();
    let mut delta = smartcube::dwarf::DeltaBuffer::new(cube.schema().clone());
    delta.push(
        [
            "2015",
            "11",
            "01",
            "09",
            "Dublin 2",
            "New Station",
            "open",
            "20",
        ],
        7,
    );
    let updated = cube.apply_delta(&delta);
    assert_eq!(updated.tuple_count(), cube.tuple_count() + 1);
    let mapped = MappedDwarf::new(&updated);
    let mut model = ModelKind::NosqlDwarf.build().expect("schema");
    let report = model.store(&mapped, &updated, false).expect("store");
    let rebuilt = model.rebuild(report.schema_id).expect("rebuild");
    let mut sel = vec![Selection::All; 8];
    sel[5] = Selection::value("New Station");
    assert_eq!(rebuilt.point(&sel), Some(7));
}
