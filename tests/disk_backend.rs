//! The disk VFS backend end to end: identical sizes to the memory backend,
//! real files on disk, and NoSQL recovery from a real directory.

use smartcube::core::models::{NosqlDwarfModel, SchemaModel};
use smartcube::core::MappedDwarf;
use smartcube::dwarf::{CubeSchema, Dwarf, TupleSet};
use smartcube::nosql;
use smartcube::storage::Vfs;

fn temp_dir(tag: &str) -> std::path::PathBuf {
    let dir = std::env::temp_dir().join(format!(
        "smartcube-{tag}-{}-{}",
        std::process::id(),
        std::time::SystemTime::now()
            .duration_since(std::time::UNIX_EPOCH)
            .unwrap()
            .as_nanos()
    ));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

fn cube() -> Dwarf {
    let schema = CubeSchema::new(["day", "station"], "hires");
    let mut ts = TupleSet::new(&schema);
    for d in ["mon", "tue", "wed"] {
        for s in ["a", "b", "c", "d"] {
            ts.push([d, s], (d.len() + s.len()) as i64);
        }
    }
    Dwarf::build(schema, ts)
}

#[test]
fn disk_and_memory_backends_agree_on_stored_bytes() {
    let c = cube();
    let mapped = MappedDwarf::new(&c);

    let mut mem_model = NosqlDwarfModel::in_memory();
    mem_model.create_schema().unwrap();
    let mem_report = mem_model.store(&mapped, &c, false).unwrap();

    let dir = temp_dir("size");
    let vfs = Vfs::disk(&dir).unwrap();
    let mut disk_model =
        NosqlDwarfModel::with_db(nosql::Db::open(nosql::OpenOptions::default().vfs(vfs)).unwrap());
    disk_model.create_schema().unwrap();
    let disk_report = disk_model.store(&mapped, &c, false).unwrap();

    assert_eq!(mem_report.size, disk_report.size, "backends must agree");
    // Real SSTable files exist under the keyspace directory.
    let mut found_sst = false;
    for entry in walkdir(&dir) {
        if entry.to_string_lossy().contains("/sst-") {
            found_sst = true;
        }
    }
    assert!(found_sst, "expected SSTable files under {dir:?}");
    std::fs::remove_dir_all(&dir).unwrap();
}

#[test]
fn nosql_recovers_from_a_real_directory() {
    let dir = temp_dir("recover");
    let c = cube();
    let schema_id = {
        let vfs = Vfs::disk(&dir).unwrap();
        let mut model = NosqlDwarfModel::with_db(
            nosql::Db::open(nosql::OpenOptions::default().vfs(vfs)).unwrap(),
        );
        model.create_schema().unwrap();
        let report = model.store(&MappedDwarf::new(&c), &c, false).unwrap();
        report.schema_id
        // Engine dropped here; state lives only on disk.
    };
    let vfs = Vfs::disk(&dir).unwrap();
    let mut model = NosqlDwarfModel::open(vfs).unwrap();
    let rebuilt = model.rebuild(schema_id).unwrap();
    assert_eq!(rebuilt.extract_tuples(), c.extract_tuples());
    std::fs::remove_dir_all(&dir).unwrap();
}

fn walkdir(root: &std::path::Path) -> Vec<std::path::PathBuf> {
    let mut out = Vec::new();
    let mut stack = vec![root.to_path_buf()];
    while let Some(dir) = stack.pop() {
        let Ok(entries) = std::fs::read_dir(&dir) else {
            continue;
        };
        for e in entries.flatten() {
            let p = e.path();
            if p.is_dir() {
                stack.push(p);
            } else {
                out.push(p);
            }
        }
    }
    out
}
