//! The paper's evaluation pipeline end to end, at example scale:
//! generate a day of bike-share XML snapshots, ingest them through the
//! stream pipeline, build the 8-dimensional DWARF, store it in all four
//! schema models, and compare sizes and insert times (a miniature of
//! Tables 4 and 5).
//!
//! Run with: `cargo run --release --example bikes_pipeline`

use smartcube::core::models::ModelKind;
use smartcube::core::MappedDwarf;
use smartcube::datagen::{BikesGenerator, BikesSpec};
use smartcube::dwarf::{RangeSel, Selection};
use smartcube::ingest::StreamPipeline;

fn main() {
    // A scaled-down "Day" dataset: 50 stations, ~5 000 observations.
    let spec = BikesSpec {
        seed: 42,
        stations: 50,
        target_tuples: 5_000,
        ..BikesSpec::small()
    };
    println!("Generating a day of bike-share snapshots...");
    let mut pipeline = StreamPipeline::new(BikesGenerator::cube_def());
    let mut documents = 0usize;
    let mut bytes = 0usize;
    for snapshot in BikesGenerator::new(spec) {
        bytes += snapshot.xml.len();
        pipeline.ingest(&snapshot.xml).expect("well-formed feed");
        documents += 1;
    }
    println!(
        "ingested {documents} XML documents ({:.1} KiB, {} observations, {} skipped)",
        bytes as f64 / 1024.0,
        pipeline.stats().extracted,
        pipeline.stats().skipped,
    );

    let cube = pipeline.build_cube();
    let stats = cube.stats();
    println!(
        "\nDWARF: {} facts -> {} nodes, {} cells ({} in-memory)",
        stats.tuple_count, stats.node_count, stats.cell_count, stats.memory
    );

    // A few analytical queries planners would run.
    println!("\n== Analytics ==");
    let all = vec![Selection::All; 8];
    println!("total bikes observed (SUM): {:?}", cube.point(&all));
    let mut by_area = all.clone();
    by_area[4] = Selection::value("Dublin 2");
    println!("  ... in Dublin 2:          {:?}", cube.point(&by_area));
    let morning = vec![
        RangeSel::All,
        RangeSel::All,
        RangeSel::All,
        RangeSel::between("06", "09"),
        RangeSel::All,
        RangeSel::All,
        RangeSel::All,
        RangeSel::All,
    ];
    println!("  ... 06:00-09:59 (range):  {:?}", cube.range(&morning));

    // Store in all four models; print a miniature Tables 4 + 5.
    println!("\n== Miniature Tables 4 & 5 (one scaled Day dataset) ==");
    println!(
        "{:<12} {:>10} {:>12} {:>12}",
        "model", "size", "insert ms", "statements"
    );
    let mapped = MappedDwarf::new(&cube);
    for kind in ModelKind::ALL {
        let mut model = kind.build().expect("schema creation");
        let report = model.store(&mapped, &cube, false).expect("store");
        println!(
            "{:<12} {:>10} {:>12.1} {:>12}",
            kind.label(),
            report.size.to_string(),
            report.elapsed.as_secs_f64() * 1000.0,
            report.statements
        );
        // Verify the reverse mapping on every model.
        let back = model.rebuild(report.schema_id).expect("rebuild");
        assert_eq!(back.extract_tuples(), cube.extract_tuples());
    }
    println!("\nAll four models round-tripped the cube: ✓");
}
