//! Query primitives and cube maintenance — the paper's "current focus is on
//! cube updates through efficient query primitives" (§7), plus the
//! Hierarchical-DWARF extension from the related work (§6, [11]).
//!
//! Shows: point/group-by queries, range queries, slices, sub-cubes (the
//! `is_cube` flag), delta-buffer updates, and ROLLUP/DRILLDOWN over
//! dimension hierarchies.
//!
//! Run with: `cargo run --example cube_queries`

use smartcube::dwarf::hierarchy::{HierarchicalBuilder, LevelCoord};
use smartcube::dwarf::{
    AggFn, CubeSchema, DeltaBuffer, Dwarf, Hierarchy, RangeSel, Selection, TupleSet,
};

fn coord(dim: &str, values: &[&str]) -> LevelCoord {
    LevelCoord {
        dimension: dim.into(),
        values: values.iter().map(|s| s.to_string()).collect(),
    }
}

fn main() {
    // A week of bike hires by (day, area, station).
    let schema = CubeSchema::new(["day", "area", "station"], "hires");
    let mut ts = TupleSet::new(&schema);
    for (day, area, station, hires) in [
        ("mon", "D2", "Fenian St", 31),
        ("mon", "D2", "Merrion Sq", 18),
        ("mon", "D7", "Smithfield", 25),
        ("tue", "D2", "Fenian St", 40),
        ("tue", "D7", "Smithfield", 22),
        ("wed", "D2", "Merrion Sq", 15),
        ("wed", "D7", "Smithfield", 30),
    ] {
        ts.push([day, area, station], hires);
    }
    let cube = Dwarf::build(schema.clone(), ts);

    println!("== Point / group-by queries (materialized, O(depth)) ==");
    let all = Selection::All;
    let v = Selection::value;
    println!(
        "hires on mon, all areas:      {:?}",
        cube.point(&[v("mon"), all.clone(), all.clone()])
    );
    println!(
        "hires at Smithfield, any day: {:?}",
        cube.point(&[all.clone(), all.clone(), v("Smithfield")])
    );

    println!("\n== Range queries ==");
    println!(
        "mon..tue, area D2:            {:?}",
        cube.range(&[
            RangeSel::between("mon", "tue"),
            RangeSel::value("D2"),
            RangeSel::All
        ])
    );

    println!("\n== Slice (the matching base facts) ==");
    for (key, m) in cube.slice(&[RangeSel::All, RangeSel::value("D7"), RangeSel::All]) {
        println!("  {key:?} -> {m}");
    }

    println!("\n== GROUP BY enumeration (any subset of the 2^d lattice) ==");
    for (key, total) in cube.group_by(&["area"]).expect("known dims") {
        println!("  area {key:?}: {total}");
    }
    for (key, total) in cube.group_by(&["day", "area"]).expect("known dims") {
        println!("  (day, area) {key:?}: {total}");
    }

    println!("\n== Sub-cube (stored with is_cube = true in the paper) ==");
    let d2 = cube.subcube(&[RangeSel::All, RangeSel::value("D2"), RangeSel::All]);
    println!(
        "D2 sub-cube: {} facts, total {:?}",
        d2.tuple_count(),
        d2.point(&[all.clone(), all.clone(), all.clone()])
    );

    println!("\n== Incremental update via the delta buffer ==");
    let mut delta = DeltaBuffer::new(schema);
    delta.push(["thu", "D2", "Fenian St"], 27);
    delta.push(["mon", "D2", "Fenian St"], 2); // late-arriving correction
    let updated = cube.apply_delta(&delta);
    println!(
        "mon/D2/Fenian St before={:?} after={:?}",
        cube.point(&[v("mon"), v("D2"), v("Fenian St")]),
        updated.point(&[v("mon"), v("D2"), v("Fenian St")])
    );
    println!(
        "new day thu appears:          {:?}",
        updated.point(&[v("thu"), all.clone(), all.clone()])
    );

    println!("\n== Hierarchical DWARF: ROLLUP / DRILL DOWN ==");
    let mut b = HierarchicalBuilder::new(
        [
            Hierarchy::new("time", ["year", "month", "day"]),
            Hierarchy::new("geo", ["area", "station"]),
        ],
        "hires",
        AggFn::Sum,
    );
    b.push(&[vec!["2015", "11", "02"], vec!["D2", "Fenian St"]], 31);
    b.push(&[vec!["2015", "11", "02"], vec!["D7", "Smithfield"]], 25);
    b.push(&[vec!["2015", "11", "03"], vec!["D2", "Fenian St"]], 40);
    b.push(&[vec!["2015", "12", "01"], vec!["D2", "Merrion Sq"]], 12);
    b.push(&[vec!["2016", "01", "04"], vec!["D7", "Smithfield"]], 9);
    let h = b.build();
    println!("rollup to year:");
    for (year, total) in h.drilldown(&[], "time") {
        println!("  {year}: {total}");
    }
    println!("drill into 2015 by month:");
    for (month, total) in h.drilldown(&[coord("time", &["2015"])], "time") {
        println!("  2015-{month}: {total}");
    }
    println!(
        "rollup(time=2015-11, geo=D2):  {:?}",
        h.rollup(&[coord("time", &["2015", "11"]), coord("geo", &["D2"])])
    );
}
