//! Multi-source smart-city fusion — the paper's §1 scenario.
//!
//! "The data streams in our research include car parks, bicycle sharing
//! schemes, online auction data, air quality sensor data, and sales data."
//! This example ingests all five feeds (XML *and* JSON) into per-source
//! cubes held in one warehouse, then answers cross-source questions a city
//! planner might ask about a single morning.
//!
//! Run with: `cargo run --example multi_source_fusion`

use smartcube::core::models::ModelKind;
use smartcube::core::CubeWarehouse;
use smartcube::datagen::{airquality, auction, carpark, sales, BikesGenerator, BikesSpec};
use smartcube::dwarf::{RangeSel, Selection};
use smartcube::ingest::DateTime;

fn main() {
    let morning = DateTime::parse("2015-11-02T06:00:00").expect("valid");

    // ---- Bikes (XML).
    let mut bikes = CubeWarehouse::new(
        BikesGenerator::cube_def(),
        ModelKind::NosqlDwarf.build().expect("schema"),
    );
    let spec = BikesSpec {
        seed: 7,
        stations: 30,
        start: morning,
        duration_minutes: 6 * 60,
        target_tuples: 900,
    };
    for snap in BikesGenerator::new(spec) {
        bikes.ingest(&snap.xml).expect("bikes feed");
    }
    let (bikes_cube, bikes_report) = bikes.close_window(false).expect("store bikes");

    // ---- Car parks (XML).
    let mut parks = CubeWarehouse::new(
        carpark::cube_def(),
        ModelKind::NosqlDwarf.build().expect("schema"),
    );
    for doc in carpark::generate(11, morning, 12, 30) {
        parks.ingest(&doc).expect("carpark feed");
    }
    let (parks_cube, _) = parks.close_window(false).expect("store carparks");

    // ---- Air quality (JSON).
    let mut air = CubeWarehouse::new(
        airquality::cube_def(),
        ModelKind::NosqlDwarf.build().expect("schema"),
    );
    for doc in airquality::generate(13, morning, 6, 60, 6) {
        air.ingest(&doc).expect("air feed");
    }
    let (air_cube, _) = air.close_window(false).expect("store air");

    // ---- Auctions (JSON) and sales (XML), daily documents.
    let mut auctions = CubeWarehouse::new(
        auction::cube_def(),
        ModelKind::NosqlDwarf.build().expect("schema"),
    );
    auctions
        .ingest(&auction::generate_day(17, morning, 120))
        .expect("auction feed");
    let (auction_cube, _) = auctions.close_window(false).expect("store auctions");

    let mut retail = CubeWarehouse::new(
        sales::cube_def(),
        ModelKind::NosqlDwarf.build().expect("schema"),
    );
    retail
        .ingest(&sales::generate_day(19, morning, 6))
        .expect("sales feed");
    let (sales_cube, _) = retail.close_window(false).expect("store sales");

    // ---- Cross-source morning report.
    println!("== Smart-city morning report, 2015-11-02 ==\n");
    println!(
        "bike observations stored:   {} facts, {} on disk, loaded in {:?}",
        bikes_cube.tuple_count(),
        bikes_report.size,
        bikes_report.elapsed
    );
    let bikes_total = bikes_cube.point(&vec![Selection::All; 8]);
    println!("total bikes available (sum over snapshots): {bikes_total:?}");

    let parks_morning = parks_cube.range(&[
        RangeSel::All,
        RangeSel::between("06", "08"),
        RangeSel::All,
        RangeSel::All,
    ]);
    println!("car-park free spaces, 06-08h (sum):         {parks_morning:?}");

    let mut no2 = vec![Selection::All; 5];
    no2[4] = Selection::value("NO2");
    println!(
        "NO2 readings (sum µg/m³):                   {:?}",
        air_cube.point(&no2)
    );

    let mut dublin_auctions = vec![Selection::All; 4];
    dublin_auctions[3] = Selection::value("Dublin");
    println!(
        "auction turnover in county Dublin:          {:?}",
        auction_cube.point(&dublin_auctions)
    );

    let mut bakery = vec![Selection::All; 3];
    bakery[2] = Selection::value("bakery");
    println!(
        "bakery units sold:                          {:?}",
        sales_cube.point(&bakery)
    );

    // Cross-source drill: per-area bikes vs air quality.
    println!("\n== Per-area: bikes available vs NO2 ==");
    for area in ["Dublin 1", "Dublin 2", "Dublin 7"] {
        let mut b = vec![Selection::All; 8];
        b[4] = Selection::value(area);
        let mut a = vec![Selection::All; 5];
        a[2] = Selection::value(area);
        a[4] = Selection::value("NO2");
        println!(
            "{area:>9}: bikes={:?} no2={:?}",
            bikes_cube.point(&b),
            air_cube.point(&a)
        );
    }
    println!("\nFive sources (3 XML + 2 JSON) fused through one canonical pipeline: ✓");
}
