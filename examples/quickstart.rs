//! Quickstart: the paper's Figure 1 → Figure 2 → Figure 3 story in one file.
//!
//! Builds a small DWARF cube from tuples, prints its structure (Figure 2),
//! shows the generated CQL for a cell (Figure 3), stores it in the NoSQL
//! model, queries it from the store, and rebuilds it.
//!
//! Run with: `cargo run --example quickstart`

use smartcube::core::models::{NosqlDwarfModel, SchemaModel};
use smartcube::core::transform::cell_to_cql;
use smartcube::core::{MappedDwarf, StoreBackedCube};
use smartcube::dwarf::{CubeSchema, Dwarf, Selection, TupleSet};

fn main() {
    // ---- Figure 1: input tuples (dimension_1, ..., dimension_n, measure).
    let schema = CubeSchema::new(["country", "city", "station"], "bikes");
    let mut tuples = TupleSet::new(&schema);
    tuples.push(["Ireland", "Dublin", "Fenian St"], 3);
    tuples.push(["Ireland", "Dublin", "Smithfield"], 5);
    tuples.push(["Ireland", "Cork", "Patrick St"], 2);
    tuples.push(["France", "Paris", "Bastille"], 7);

    // ---- Build the DWARF (prefix + suffix coalescing).
    let cube = Dwarf::build(schema, tuples);
    let stats = cube.stats();
    println!("== DWARF built ==");
    println!(
        "tuples: {}   nodes: {}   cells: {}   per level: {:?}",
        stats.tuple_count, stats.node_count, stats.cell_count, stats.nodes_per_level
    );

    // ---- Figure 2: render the structure (paste into Graphviz to draw it).
    println!("\n== Figure 2: the cube as Graphviz dot ==");
    println!("{}", cube.to_dot());

    // ---- Every group-by is materialized: point queries with ALLs.
    let all = Selection::All;
    let v = Selection::value;
    println!("== Materialized group-bys ==");
    println!(
        "(Ireland, Dublin, Fenian St) = {:?}",
        cube.point(&[v("Ireland"), v("Dublin"), v("Fenian St")])
    );
    println!(
        "(Ireland, ALL, ALL)          = {:?}",
        cube.point(&[v("Ireland"), all.clone(), all.clone()])
    );
    println!(
        "(ALL, ALL, ALL)              = {:?}",
        cube.point(&[all.clone(), all.clone(), all.clone()])
    );

    // ---- Figure 3: the transformation generates CQL INSERTs.
    let mapped = MappedDwarf::new(&cube);
    let fenian = mapped
        .cells
        .iter()
        .find(|c| c.key == "Fenian St")
        .expect("cell exists");
    println!("\n== Figure 3: generated CQL for the 'Fenian St' cell ==");
    println!("{};", cell_to_cql(fenian, "smartcity", 1));

    // ---- Store in the NoSQL-DWARF model (Table 1 schema).
    let mut model = NosqlDwarfModel::in_memory();
    model.create_schema().expect("create schema");
    let report = model.store(&mapped, &cube, false).expect("store cube");
    println!("\n== Stored in NoSQL-DWARF ==");
    println!(
        "schema_id: {}   node rows: {}   cell rows: {}   statements: {}   size: {}   took: {:?}",
        report.schema_id,
        report.node_rows,
        report.cell_rows,
        report.statements,
        report.size,
        report.elapsed
    );

    // ---- Query directly off the stored rows (no rebuild).
    let mut stored = StoreBackedCube::open(&mut model, report.schema_id).expect("open");
    println!("\n== Store-backed queries ==");
    println!(
        "(Ireland, ALL, ALL) from store = {:?}",
        stored
            .point(&[v("Ireland"), all.clone(), all.clone()])
            .expect("query")
    );

    // ---- And the reverse mapping: rebuild the full DWARF from the store.
    let rebuilt = model.rebuild(report.schema_id).expect("rebuild");
    assert_eq!(rebuilt.extract_tuples(), cube.extract_tuples());
    println!("\nRebuilt cube matches the original: ✓");
}
